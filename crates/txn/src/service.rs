//! The transaction service: `t*` operations, two-phase locking, commit
//! and recovery.

use crate::error::TxnError;
use crate::intentions::{Intention, LogRecord, Technique};
use crate::lock::{DataItem, LockMode};
use crate::table::{LockOutcome, StripedLockTable};
use rhodos_disk_service::{ReadSource, StablePolicy, BLOCK_SIZE};
use rhodos_file_service::{
    FileId, FileService, FileServiceError, LeaseGrant, LeaseMode, LockLevel, RecallAck, ServiceType,
};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::Arc;

/// A transaction descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TxnId(pub u64);

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "txn#{}", self.0)
    }
}

/// Group-commit policy: how aggressively commit I/O is batched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GroupCommit {
    /// Batched commit I/O: a log flush covers every record appended
    /// since the previous flush (the `Completed` marker rides in the
    /// *next* flush instead of forcing its own — redo is idempotent, so
    /// recovery is unchanged), and a commit's page intentions reach the
    /// per-spindle schedulers as elevator-ordered batches.
    #[default]
    Auto,
    /// Ablation: every log record forces its own `flush_file` and
    /// intentions apply one disk reference at a time — the
    /// pre-group-commit behaviour, kept for E18 comparisons.
    Never,
}

/// Tunables of the transaction service.
#[derive(Debug, Clone, Copy)]
pub struct TxnConfig {
    /// Lock lease period LT, virtual microseconds (§6.4).
    pub lt_us: u64,
    /// Renewals N before an uncontested holder is presumed deadlocked.
    pub max_renewals: u32,
    /// Cross-granularity conflict detection. The paper assumes "a file
    /// cannot be subjected to more than one level of locking by
    /// concurrent transactions" but notes "this constraint can be
    /// relaxed, if required, at a later stage" (§6.1) — enabling this
    /// implements the relaxation: a lock request also conflicts with
    /// overlapping locks held in the *other* granularities' tables.
    pub cross_granularity: bool,
    /// Compact the intention log automatically once it grows past this
    /// many bytes (checked at quiescent moments — everything before the
    /// tail has completed by then, so the log is pure garbage).
    pub log_compact_threshold: u64,
    /// Group-commit policy (see [`GroupCommit`]).
    pub group_commit: GroupCommit,
    /// Shards each lock table is striped over (lock-contention isolation,
    /// E20). `1` reproduces one unstriped table per granularity exactly —
    /// the E20 ablation arm.
    pub lock_shards: usize,
}

impl Default for TxnConfig {
    fn default() -> Self {
        Self {
            lt_us: 100_000,
            max_renewals: 3,
            cross_granularity: false,
            log_compact_threshold: 4 * 1024 * 1024,
            group_commit: GroupCommit::Auto,
            lock_shards: 8,
        }
    }
}

/// Shard counts for the two contention-isolation layers of E20, applied
/// to [`TxnConfig::lock_shards`] and `FileServiceConfig::cache_shards`.
/// `ShardConfig::ablation()` — both 1 — reproduces the pre-sharding
/// behaviour exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardConfig {
    /// Shards per lock table (see [`TxnConfig::lock_shards`]).
    pub lock_shards: usize,
    /// Shards of the block pool (see `FileServiceConfig::cache_shards`).
    pub cache_shards: usize,
}

impl Default for ShardConfig {
    fn default() -> Self {
        Self {
            lock_shards: TxnConfig::default().lock_shards,
            cache_shards: 8,
        }
    }
}

impl ShardConfig {
    /// The unsharded arm: one lock table per granularity, one cache
    /// segment — today's behaviour, kept as the E20 ablation.
    pub fn ablation() -> Self {
        Self {
            lock_shards: 1,
            cache_shards: 1,
        }
    }
}

/// What the shared-service read fast path needs from the brief
/// service-locked validation step (see
/// [`TransactionService::fast_read_meta`]).
#[derive(Debug, Clone)]
pub struct FastReadMeta {
    /// Requesting process id (recorded in lock records).
    pub pid: u64,
    /// Root of the transaction's family — locks are taken in its name.
    pub owner: u64,
    /// Index into [`TransactionService::lock_tables`] for the file's
    /// granularity level.
    pub table: usize,
    /// The data items covering the requested range.
    pub items: Vec<DataItem>,
}

/// Outcome of [`TransactionService::fast_read_recheck`].
#[derive(Debug, Clone, Copy)]
pub enum FastReadCheck {
    /// Still valid; read up to `size` from the cache.
    Proceed {
        /// Committed file size at recheck time.
        size: u64,
    },
    /// State changed in a way the fast path cannot serve (tentative
    /// overlay appeared, file vanished); retry via the classic path.
    UseClassic,
    /// The transaction died (timeout abort) between meta and recheck.
    Dead {
        /// Whether the family root is still active — if not, the fast
        /// path must release the shard locks it took in the root's name.
        root_active: bool,
    },
}

/// Counters of transaction-service behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TxnStats {
    /// Transactions begun.
    pub begun: u64,
    /// Transactions committed.
    pub committed: u64,
    /// Transactions aborted (all causes).
    pub aborted: u64,
    /// Aborts caused by the deadlock timeout.
    pub timeout_aborts: u64,
    /// Page intentions applied with write-ahead logging.
    pub wal_pages: u64,
    /// Page intentions applied with the shadow-page technique.
    pub shadow_pages: u64,
    /// Record intentions applied.
    pub record_intentions: u64,
    /// Operations that returned `WouldBlock`.
    pub would_blocks: u64,
    /// `flush_file` calls issued on the intention log — the durability
    /// round trips group commit exists to amortise.
    pub log_flushes: u64,
    /// Flushes that made more than one log record durable at once.
    pub group_commits: u64,
    /// Log records made durable, total (the per-flush average is
    /// [`TxnStats::records_per_flush_avg`]).
    pub records_flushed: u64,
    /// Most log records made durable by a single flush (high-water mark).
    pub records_per_flush_hwm: u64,
    /// Page intentions applied through the batched elevator path rather
    /// than one disk reference at a time.
    pub commit_batch_pages: u64,
    /// Intention-log compactions performed.
    pub log_compactions: u64,
    /// Cross-shard `Prepared` votes logged (2PC phase one).
    pub prepares: u64,
    /// Prepared transactions rolled back by presumed abort — the
    /// coordinator's decision log had no commit record for them.
    pub presumed_aborts: u64,
    /// In-doubt transactions resolved by the orphan sweep (coordinator
    /// lost, decision recovered from the master's decision log).
    pub orphan_resolutions: u64,
    /// Log flushes that made at least one `Prepared` record durable.
    pub prepare_flushes: u64,
    /// `Prepared` records made durable, total (per-flush average is
    /// [`TxnStats::records_per_prepare_flush`]).
    pub prepare_records_flushed: u64,
}

impl TxnStats {
    /// Average log records made durable per flush.
    pub fn records_per_flush_avg(&self) -> f64 {
        if self.log_flushes == 0 {
            0.0
        } else {
            self.records_flushed as f64 / self.log_flushes as f64
        }
    }

    /// Average `Prepared` records made durable per prepare-carrying flush
    /// — the 2PC analogue of [`TxnStats::records_per_flush_avg`]: above
    /// 1.0 means cross-shard prepares are riding shared log forces.
    pub fn records_per_prepare_flush(&self) -> f64 {
        if self.prepare_flushes == 0 {
            0.0
        } else {
            self.prepare_records_flushed as f64 / self.prepare_flushes as f64
        }
    }
}

#[derive(Debug, Clone)]
struct TentativePage {
    disk: u16,
    addr: u64,
    data: Vec<u8>,
}

/// Outcome of [`TransactionService::prepare_commit`].
#[derive(Debug)]
pub enum Prepared {
    /// A nested commit — merged into its parent, nothing left to do.
    Merged,
    /// A top-level commit whose `Commit` record is in the log but not
    /// necessarily durable yet: flush, then complete.
    Pending(PreparedCommit),
}

/// A top-level commit between its two halves: the `Commit` record has
/// been appended to the log ([`TransactionService::prepare_commit`]) but
/// the changes are not yet permanent. A group-commit leader collects
/// many of these, makes them all durable with one
/// [`TransactionService::flush_log`], and applies each with
/// [`TransactionService::complete_commit`].
#[derive(Debug)]
pub struct PreparedCommit {
    txn: TxnId,
    intentions: Vec<Intention>,
    sizes: Vec<(FileId, u64)>,
    has_effects: bool,
}

impl PreparedCommit {
    /// The committing transaction.
    pub fn txn(&self) -> TxnId {
        self.txn
    }
}

/// A participant's in-doubt half of a cross-shard transaction: the
/// `Prepared` record is durable, the locks are held, and only the
/// coordinator's decision (or the orphan sweep consulting the recovered
/// decision log) may resolve it — local aborts and timeouts must not.
#[derive(Debug)]
struct PreparedParticipant {
    txn: TxnId,
    intentions: Vec<Intention>,
    sizes: Vec<(FileId, u64)>,
    has_effects: bool,
}

#[derive(Debug)]
struct ActiveTxn {
    pid: u64,
    /// Parent transaction for nested transactions (§6.4 mentions nested
    /// transactions as a source of long-running work). `None` for
    /// top-level transactions.
    parent: Option<TxnId>,
    open_files: HashSet<FileId>,
    /// Files visible through an ancestor's `topen` (no own reference).
    inherited_files: HashSet<FileId>,
    tentative_pages: HashMap<(FileId, u64), TentativePage>,
    /// Record-mode tentative writes, in order.
    tentative_records: Vec<(FileId, u64, Vec<u8>)>,
    /// Tentative file sizes (writes past the current end).
    tentative_sizes: HashMap<FileId, u64>,
    /// Files created inside this transaction (deleted again on abort).
    created: Vec<FileId>,
    /// Files whose deletion is deferred to commit.
    to_delete: Vec<FileId>,
}

impl ActiveTxn {
    fn new(pid: u64) -> Self {
        Self {
            pid,
            parent: None,
            open_files: HashSet::new(),
            inherited_files: HashSet::new(),
            tentative_pages: HashMap::new(),
            tentative_records: Vec::new(),
            tentative_sizes: HashMap::new(),
            created: Vec::new(),
            to_delete: Vec::new(),
        }
    }

    fn can_use(&self, fid: FileId) -> bool {
        self.open_files.contains(&fid) || self.inherited_files.contains(&fid)
    }
}

/// Index of the lock table for each granularity.
fn table_index(level: LockLevel) -> usize {
    match level {
        LockLevel::Record => 0,
        LockLevel::Page => 1,
        LockLevel::File => 2,
    }
}

/// The RHODOS transaction service, owning the basic file service it
/// coordinates ("the file service is also responsible for coordinating
/// access to file data using the semantics of the transaction services").
///
/// See the [crate documentation](crate) for an example.
#[derive(Debug)]
pub struct TransactionService {
    fs: FileService,
    config: TxnConfig,
    /// One striped lock table per locking level (§6.5). Behind `Arc` so
    /// lock-free fast paths (see `SharedTransactionService::tread_shared`)
    /// can acquire shard locks without holding the whole-service mutex;
    /// recovery resets the shards in place to keep those handles valid.
    tables: [Arc<StripedLockTable>; 3],
    active: HashMap<TxnId, ActiveTxn>,
    /// In-doubt cross-shard participants by coordinator-assigned global
    /// transaction id. Entries survive [`Self::recover`] (rebuilt from
    /// durable `Prepared` records) and leave only via
    /// [`Self::resolve_prepared`].
    prepared: HashMap<u64, PreparedParticipant>,
    next_txn: u64,
    log_fid: FileId,
    log_tail: u64,
    /// Log records appended since the last [`Self::flush_log`].
    unflushed_records: u64,
    /// `Prepared` records among [`Self::unflushed_records`].
    unflushed_prepares: u64,
    /// Tentative WAL blocks whose commits have applied but whose
    /// `Completed` markers are not yet durable. They stay allocated until
    /// the next flush: were they freed (and reused) earlier, a crash
    /// would let redo follow the log's stale pointers into reused blocks.
    deferred_frees: Vec<(u16, u64)>,
    /// Total log bytes ever appended (monotonic across compactions —
    /// a log sequence number).
    appended_lsn: u64,
    /// `appended_lsn` at the last durable flush.
    durable_lsn: u64,
    stats: TxnStats,
}

impl TransactionService {
    /// Creates the service over `fs`, creating (or re-attaching to) the
    /// durable intention log.
    ///
    /// # Errors
    ///
    /// Fails if the log file cannot be created or opened.
    pub fn new(mut fs: FileService, config: TxnConfig) -> Result<Self, TxnError> {
        let log_fid = match fs.system_file() {
            Some(fid) => fid,
            None => {
                let fid = fs.create(ServiceType::Transaction)?;
                fs.set_system_file(fid)?;
                fid
            }
        };
        fs.open(log_fid)?;
        let log_tail = fs.get_attribute(log_fid)?.size;
        let mk = || {
            Arc::new(StripedLockTable::new(
                config.lt_us,
                config.max_renewals,
                config.lock_shards,
            ))
        };
        Ok(Self {
            fs,
            config,
            tables: [mk(), mk(), mk()],
            active: HashMap::new(),
            prepared: HashMap::new(),
            next_txn: 1,
            log_fid,
            log_tail,
            unflushed_records: 0,
            unflushed_prepares: 0,
            deferred_frees: Vec::new(),
            appended_lsn: log_tail,
            durable_lsn: log_tail,
            stats: TxnStats::default(),
        })
    }

    /// The underlying basic file service (for non-transactional traffic —
    /// the transaction service is optional).
    pub fn file_service_mut(&mut self) -> &mut FileService {
        &mut self.fs
    }

    /// The configuration in force.
    pub fn config(&self) -> TxnConfig {
        self.config
    }

    /// Read access to the statistics.
    pub fn stats(&self) -> TxnStats {
        self.stats
    }

    /// The underlying basic file service, read-only.
    pub fn file_service(&self) -> &FileService {
        &self.fs
    }

    /// Statistics of the lock table for `level`, merged across shards.
    pub fn lock_table_stats(&self, level: LockLevel) -> crate::table::LockTableStats {
        self.tables[table_index(level)].stats()
    }

    /// Per-shard statistics of the lock table for `level`.
    pub fn lock_table_shard_stats(&self, level: LockLevel) -> Vec<crate::table::LockTableStats> {
        self.tables[table_index(level)].shard_stats()
    }

    /// Handles to the three striped lock tables, indexed Record, Page,
    /// File. The handles stay valid across recovery (the shards are reset
    /// in place), so lock-free fast paths may acquire shard locks through
    /// them without holding the service lock.
    pub fn lock_tables(&self) -> [Arc<StripedLockTable>; 3] {
        [
            Arc::clone(&self.tables[0]),
            Arc::clone(&self.tables[1]),
            Arc::clone(&self.tables[2]),
        ]
    }

    /// Whether `t` is currently active.
    pub fn is_active(&self, t: TxnId) -> bool {
        self.active.contains_key(&t)
    }

    /// Currently active transactions.
    pub fn active_transactions(&self) -> Vec<TxnId> {
        let mut v: Vec<TxnId> = self.active.keys().copied().collect();
        v.sort();
        v
    }

    // ---- lifecycle -----------------------------------------------------

    /// `tbegin`: starts a transaction for process `pid` 0.
    pub fn tbegin(&mut self) -> TxnId {
        self.tbegin_for(0)
    }

    /// `tbegin` with an explicit process identifier.
    pub fn tbegin_for(&mut self, pid: u64) -> TxnId {
        let id = TxnId(self.next_txn);
        self.next_txn += 1;
        self.active.insert(id, ActiveTxn::new(pid));
        self.stats.begun += 1;
        id
    }

    /// `tbegin` for a *nested* transaction: the child sees the parent's
    /// tentative state, locks on behalf of the whole family, and merges
    /// its effects into the parent on `tend` (or discards only its own on
    /// `tabort`). Durability still happens at top-level commit.
    ///
    /// # Errors
    ///
    /// [`TxnError::NotActive`] if `parent` is not an active transaction.
    pub fn tbegin_nested(&mut self, parent: TxnId) -> Result<TxnId, TxnError> {
        let (pid, visible) = {
            let p = self.txn(parent)?;
            let mut v = p.open_files.clone();
            v.extend(p.inherited_files.iter().copied());
            (p.pid, v)
        };
        let id = TxnId(self.next_txn);
        self.next_txn += 1;
        let mut child = ActiveTxn::new(pid);
        child.parent = Some(parent);
        child.inherited_files = visible;
        self.active.insert(id, child);
        self.stats.begun += 1;
        Ok(id)
    }

    /// The chain of ancestors of `t`, root first, ending with `t`.
    fn chain(&self, t: TxnId) -> Vec<TxnId> {
        let mut chain = vec![t];
        let mut cur = t;
        while let Some(p) = self.active.get(&cur).and_then(|x| x.parent) {
            chain.push(p);
            cur = p;
        }
        chain.reverse();
        chain
    }

    /// The top-level ancestor of `t` (itself, when not nested). Locks are
    /// held in the root's name so a family never conflicts with itself.
    fn root_of(&self, t: TxnId) -> TxnId {
        *self.chain(t).first().expect("chain is never empty")
    }

    /// Direct children of `t` that are still active.
    fn children_of(&self, t: TxnId) -> Vec<TxnId> {
        let mut v: Vec<TxnId> = self
            .active
            .iter()
            .filter(|(_, x)| x.parent == Some(t))
            .map(|(id, _)| *id)
            .collect();
        v.sort();
        v
    }

    fn txn(&self, t: TxnId) -> Result<&ActiveTxn, TxnError> {
        self.active.get(&t).ok_or(TxnError::NotActive(t))
    }

    fn txn_mut(&mut self, t: TxnId) -> Result<&mut ActiveTxn, TxnError> {
        self.active.get_mut(&t).ok_or(TxnError::NotActive(t))
    }

    /// `tcreate` outside any transaction: a transaction-typed file with
    /// the given locking level.
    ///
    /// # Errors
    ///
    /// File-service failures.
    pub fn tcreate(&mut self, level: LockLevel) -> Result<FileId, TxnError> {
        let fid = self.fs.create(ServiceType::Transaction)?;
        self.fs.set_lock_level(fid, level)?;
        Ok(fid)
    }

    /// Lease acquisition whose recalled writebacks stay crash-atomic:
    /// like [`FileService::lease_acquire`], but a surrendered write
    /// delegation on a *transaction-service* file is applied as one
    /// transaction — intention-logged, group-commit flushed, batch
    /// applied — so a crash mid-recall replays all of the holder's
    /// delegated writes or none of them. Basic-service files (and the
    /// rare recall that races an in-flight transaction's locks) fall
    /// back to the direct apply-and-flush path.
    ///
    /// # Errors
    ///
    /// File-service failures; commit-pipeline failures applying a
    /// recalled writeback.
    pub fn lease_acquire(
        &mut self,
        client: u64,
        fid: FileId,
        mode: LeaseMode,
    ) -> Result<(LeaseGrant, u64), TxnError> {
        let (grant, acks) = self.fs.lease_acquire_raw(client, fid, mode)?;
        for ack in acks {
            let st = self.fs.get_attribute(fid)?.service_type;
            if st == ServiceType::Transaction && !ack.dirty.is_empty() {
                match self.apply_recall_txn(fid, &ack) {
                    Ok(()) => continue,
                    // A live transaction holds conflicting locks: the
                    // recalled bytes must not wait behind it (the
                    // grantee is blocked on us), so apply directly.
                    Err(TxnError::WouldBlock { .. }) => {}
                    Err(e) => return Err(e),
                }
            }
            self.fs.lease_apply_recalled(fid, ack)?;
        }
        let size = self.fs.get_attribute(fid)?.size;
        Ok((grant, size))
    }

    /// Applies one recalled writeback under a fresh transaction (the
    /// group-commit pipeline: intention log, flush, batched apply).
    fn apply_recall_txn(&mut self, fid: FileId, ack: &RecallAck) -> Result<(), TxnError> {
        let t = self.tbegin();
        if let Err(e) = self.apply_recall_txn_body(t, fid, ack) {
            let _ = self.tabort(t);
            return Err(e);
        }
        self.tend(t)
    }

    fn apply_recall_txn_body(
        &mut self,
        t: TxnId,
        fid: FileId,
        ack: &RecallAck,
    ) -> Result<(), TxnError> {
        self.topen(t, fid)?;
        for (idx, block) in &ack.dirty {
            let start = idx * BLOCK_SIZE as u64;
            let len = (BLOCK_SIZE as u64).min(ack.size.saturating_sub(start)) as usize;
            if len == 0 {
                continue;
            }
            self.twrite(t, fid, start, &block[..len])?;
        }
        Ok(())
    }

    /// `tcreate` inside a transaction: the file exists durably only if the
    /// transaction commits.
    ///
    /// # Errors
    ///
    /// File-service failures; [`TxnError::NotActive`] for a dead
    /// transaction.
    pub fn tcreate_in(&mut self, t: TxnId, level: LockLevel) -> Result<FileId, TxnError> {
        self.txn(t)?;
        let fid = self.tcreate(level)?;
        self.fs.open(fid)?;
        let txn = self.txn_mut(t)?;
        txn.created.push(fid);
        txn.open_files.insert(fid);
        Ok(fid)
    }

    /// `topen`: opens a file under the transaction.
    ///
    /// # Errors
    ///
    /// [`TxnError::NotActive`]; file-service failures.
    pub fn topen(&mut self, t: TxnId, fid: FileId) -> Result<(), TxnError> {
        self.txn(t)?;
        self.fs.open(fid)?;
        self.txn_mut(t)?.open_files.insert(fid);
        Ok(())
    }

    /// `tclose`: closes a file under the transaction (its locks remain
    /// held until commit/abort — two-phase locking).
    ///
    /// # Errors
    ///
    /// [`TxnError::FileNotOpen`] if `topen` was never called.
    pub fn tclose(&mut self, t: TxnId, fid: FileId) -> Result<(), TxnError> {
        let txn = self.txn_mut(t)?;
        if !txn.open_files.remove(&fid) {
            return Err(TxnError::FileNotOpen(t));
        }
        self.fs.close(fid)?;
        Ok(())
    }

    /// `tdelete`: schedules deletion of `fid` at commit (aborting keeps
    /// the file). Takes a whole-file Iwrite lock.
    ///
    /// # Errors
    ///
    /// [`TxnError::WouldBlock`] while another transaction uses the file.
    pub fn tdelete(&mut self, t: TxnId, fid: FileId) -> Result<(), TxnError> {
        self.txn(t)?;
        self.acquire(
            t,
            fid,
            DataItem::File(fid),
            LockMode::Iwrite,
            LockLevel::File,
        )?;
        self.txn_mut(t)?.to_delete.push(fid);
        Ok(())
    }

    /// `tget-attribute`: attributes with this transaction's tentative size
    /// overlaid.
    ///
    /// # Errors
    ///
    /// [`TxnError::NotActive`]; file-service failures.
    pub fn tget_attribute(
        &mut self,
        t: TxnId,
        fid: FileId,
    ) -> Result<rhodos_file_service::FileAttributes, TxnError> {
        self.txn(t)?;
        let mut attrs = self.fs.get_attribute(fid)?;
        attrs.size = self.effective_size(t, fid, attrs.size);
        Ok(attrs)
    }

    // ---- locking helpers -------------------------------------------------

    fn lock_level_of(&mut self, fid: FileId) -> Result<LockLevel, TxnError> {
        Ok(self.fs.get_attribute(fid)?.lock_level)
    }

    fn acquire(
        &mut self,
        t: TxnId,
        _fid: FileId,
        item: DataItem,
        mode: LockMode,
        level: LockLevel,
    ) -> Result<(), TxnError> {
        let pid = self.txn(t)?.pid;
        let now = self.fs.clock().now_us();
        // Nested transactions lock in the root's name: the family shares
        // its locks and never conflicts with itself.
        let owner = self.root_of(t).0;
        // Relaxed mode (§6.1): the same file may be locked at different
        // levels by concurrent transactions, so a request must also be
        // compatible with overlapping grants in the other tables.
        if self.config.cross_granularity {
            let idx = table_index(level);
            for (i, other) in self.tables.iter().enumerate() {
                if i != idx && other.would_conflict(owner, &item, mode) {
                    self.stats.would_blocks += 1;
                    return Err(TxnError::WouldBlock { txn: t, item });
                }
            }
        }
        match self.tables[table_index(level)].set_lock(pid, owner, item, mode, now) {
            LockOutcome::Granted => Ok(()),
            LockOutcome::Queued => {
                self.stats.would_blocks += 1;
                Err(TxnError::WouldBlock { txn: t, item })
            }
        }
    }

    /// The data items covering `[offset, offset+len)` at the file's lock
    /// level.
    fn items_for_range(
        &mut self,
        fid: FileId,
        offset: u64,
        len: u64,
    ) -> Result<(LockLevel, Vec<DataItem>), TxnError> {
        let level = self.lock_level_of(fid)?;
        let items = match level {
            LockLevel::File => vec![DataItem::File(fid)],
            LockLevel::Record => vec![DataItem::Record(fid, offset, offset + len.max(1))],
            LockLevel::Page => {
                let first = offset / BLOCK_SIZE as u64;
                let last = (offset + len.max(1) - 1) / BLOCK_SIZE as u64;
                (first..=last).map(|b| DataItem::Page(fid, b)).collect()
            }
        };
        Ok((level, items))
    }

    fn effective_size(&self, t: TxnId, fid: FileId, base: u64) -> u64 {
        self.chain(t)
            .iter()
            .filter_map(|id| {
                self.active
                    .get(id)
                    .and_then(|x| x.tentative_sizes.get(&fid))
                    .copied()
            })
            .fold(base, u64::max)
    }

    // ---- reads -----------------------------------------------------------

    /// `tread`/`tpread`: reads under a read-only lock ("if the data item is
    /// needed to perform some query").
    ///
    /// # Errors
    ///
    /// [`TxnError::WouldBlock`] on lock conflict; [`TxnError::BeyondEof`].
    pub fn tread(
        &mut self,
        t: TxnId,
        fid: FileId,
        offset: u64,
        len: usize,
    ) -> Result<Vec<u8>, TxnError> {
        self.tread_mode(t, fid, offset, len, LockMode::ReadOnly)
    }

    /// `tread` with intent to modify: takes an `Iread` lock so the value
    /// cannot change (or be read-locked anew) before the update.
    ///
    /// # Errors
    ///
    /// As [`Self::tread`].
    pub fn tread_for_update(
        &mut self,
        t: TxnId,
        fid: FileId,
        offset: u64,
        len: usize,
    ) -> Result<Vec<u8>, TxnError> {
        self.tread_mode(t, fid, offset, len, LockMode::Iread)
    }

    /// First half of the shared-service read fast path: under the (brief)
    /// service lock, validates the transaction and computes everything the
    /// lock-free half needs — or `None` when the read must take the
    /// classic path (cross-granularity mode, or tentative state of `fid`
    /// anywhere in the transaction's family would need overlaying).
    ///
    /// # Errors
    ///
    /// [`TxnError::NotActive`] / [`TxnError::FileNotOpen`]; file-service
    /// failures resolving the lock level.
    pub fn fast_read_meta(
        &mut self,
        t: TxnId,
        fid: FileId,
        offset: u64,
        len: usize,
    ) -> Result<Option<FastReadMeta>, TxnError> {
        let txn = self.txn(t)?;
        if !txn.can_use(fid) {
            return Err(TxnError::FileNotOpen(t));
        }
        let pid = txn.pid;
        // The relaxed §6.1 mode probes the *other* granularities' tables;
        // keep that logic in one place (the classic path).
        if self.config.cross_granularity {
            return Ok(None);
        }
        if self.chain_has_overlay(t, fid) {
            return Ok(None);
        }
        let (level, items) = self.items_for_range(fid, offset, len as u64)?;
        let owner = self.root_of(t).0;
        Ok(Some(FastReadMeta {
            pid,
            owner,
            table: table_index(level),
            items,
        }))
    }

    /// Whether any member of `t`'s family holds tentative pages, records
    /// or sizes for `fid` (in which case a read needs the overlay logic).
    fn chain_has_overlay(&self, t: TxnId, fid: FileId) -> bool {
        self.chain(t).iter().any(|id| {
            self.active.get(id).is_some_and(|x| {
                x.tentative_sizes.contains_key(&fid)
                    || x.tentative_pages.keys().any(|(f, _)| *f == fid)
                    || x.tentative_records.iter().any(|(f, _, _)| *f == fid)
            })
        })
    }

    /// Second half of the read fast path, after the shard locks are held:
    /// re-validates under the (brief) service lock. A writer may have
    /// committed — or this transaction been timeout-aborted — between
    /// [`Self::fast_read_meta`] and the shard-lock acquisition, so the
    /// base size is re-read and liveness re-checked here.
    pub fn fast_read_recheck(&mut self, t: TxnId, root: TxnId, fid: FileId) -> FastReadCheck {
        if !self.active.contains_key(&t) {
            return FastReadCheck::Dead {
                root_active: self.active.contains_key(&root),
            };
        }
        if self.chain_has_overlay(t, fid) {
            return FastReadCheck::UseClassic;
        }
        match self.fs.get_attribute(fid) {
            Ok(attrs) => FastReadCheck::Proceed { size: attrs.size },
            Err(_) => FastReadCheck::UseClassic,
        }
    }

    fn tread_mode(
        &mut self,
        t: TxnId,
        fid: FileId,
        offset: u64,
        len: usize,
        mode: LockMode,
    ) -> Result<Vec<u8>, TxnError> {
        self.txn(t)?;
        if !self.txn(t)?.can_use(fid) {
            return Err(TxnError::FileNotOpen(t));
        }
        let (level, items) = self.items_for_range(fid, offset, len as u64)?;
        for item in items {
            self.acquire(t, fid, item, mode, level)?;
        }
        let base_size = self.fs.get_attribute(fid)?.size;
        let size = self.effective_size(t, fid, base_size);
        if offset > size {
            return Err(TxnError::BeyondEof { offset, size });
        }
        let len = (len as u64).min(size - offset) as usize;
        let mut out = self.read_with_overlay(t, fid, offset, len, base_size)?;
        out.truncate(len);
        Ok(out)
    }

    /// Reads `[offset, offset+len)` of the committed file, overlaying this
    /// transaction's tentative pages and records.
    fn read_with_overlay(
        &mut self,
        t: TxnId,
        fid: FileId,
        offset: u64,
        len: usize,
        base_size: u64,
    ) -> Result<Vec<u8>, TxnError> {
        if len == 0 {
            return Ok(Vec::new());
        }
        let bs = BLOCK_SIZE as u64;
        let first = offset / bs;
        let last = (offset + len as u64 - 1) / bs;
        let base_blocks = base_size.div_ceil(bs);
        let chain = self.chain(t);
        let mut out = Vec::with_capacity(len);
        for idx in first..=last {
            // Youngest tentative copy wins (child shadows parent).
            let tentative = chain.iter().rev().find_map(|id| {
                self.active
                    .get(id)
                    .and_then(|x| x.tentative_pages.get(&(fid, idx)))
                    .map(|p| p.data.clone())
            });
            let block = match tentative {
                Some(data) => data,
                None if idx < base_blocks => self.fs.read_block(fid, idx)?.to_vec(),
                None => vec![0u8; BLOCK_SIZE],
            };
            let block_start = idx * bs;
            let lo = offset.max(block_start) - block_start;
            let hi = (offset + len as u64).min(block_start + bs) - block_start;
            out.extend_from_slice(&block[lo as usize..hi as usize]);
        }
        // Record-mode overlay: root first, then descendants, each in its
        // own write order.
        for id in &chain {
            let Some(txn) = self.active.get(id) else {
                continue;
            };
            for (rfid, roff, bytes) in &txn.tentative_records {
                if *rfid != fid {
                    continue;
                }
                let rlo = *roff;
                let rhi = roff + bytes.len() as u64;
                let wlo = offset.max(rlo);
                let whi = (offset + len as u64).min(rhi);
                if wlo < whi {
                    let dst = (wlo - offset) as usize..(whi - offset) as usize;
                    let src = (wlo - rlo) as usize..(whi - rlo) as usize;
                    out[dst].copy_from_slice(&bytes[src]);
                }
            }
        }
        Ok(out)
    }

    // ---- writes ------------------------------------------------------------

    /// `twrite`/`tpwrite`: records a tentative update under an `Iwrite`
    /// lock (converting the transaction's `Iread` when present). The data
    /// is invisible to other transactions until commit.
    ///
    /// # Errors
    ///
    /// [`TxnError::WouldBlock`] on lock conflict.
    pub fn twrite(
        &mut self,
        t: TxnId,
        fid: FileId,
        offset: u64,
        data: &[u8],
    ) -> Result<(), TxnError> {
        self.txn(t)?;
        if !self.txn(t)?.can_use(fid) {
            return Err(TxnError::FileNotOpen(t));
        }
        if data.is_empty() {
            return Ok(());
        }
        let (level, items) = self.items_for_range(fid, offset, data.len() as u64)?;
        for item in items {
            self.acquire(t, fid, item, LockMode::Iwrite, level)?;
        }
        let base_size = self.fs.get_attribute(fid)?.size;
        match level {
            LockLevel::Record => {
                let txn = self.txn_mut(t)?;
                txn.tentative_records.push((fid, offset, data.to_vec()));
            }
            LockLevel::Page | LockLevel::File => {
                self.twrite_pages(t, fid, offset, data, base_size)?;
            }
        }
        let new_size = offset + data.len() as u64;
        let txn = self.txn_mut(t)?;
        let entry = txn.tentative_sizes.entry(fid).or_insert(base_size);
        *entry = (*entry).max(new_size).max(base_size);
        Ok(())
    }

    fn twrite_pages(
        &mut self,
        t: TxnId,
        fid: FileId,
        offset: u64,
        data: &[u8],
        base_size: u64,
    ) -> Result<(), TxnError> {
        let bs = BLOCK_SIZE as u64;
        let first = offset / bs;
        let last = (offset + data.len() as u64 - 1) / bs;
        let base_blocks = base_size.div_ceil(bs);
        for idx in first..=last {
            let block_start = idx * bs;
            let lo = offset.max(block_start);
            let hi = (offset + data.len() as u64).min(block_start + bs);
            // Materialise the tentative page. A nested transaction's
            // first touch of a page copies the youngest ancestor version
            // into its own detached block (copy-on-write down the chain).
            let existing = self
                .active
                .get(&t)
                .and_then(|x| x.tentative_pages.get(&(fid, idx)))
                .cloned();
            let (disk, addr, mut page) = match existing {
                Some(p) => (p.disk, p.addr, p.data),
                None => {
                    let chain = self.chain(t);
                    let inherited = chain[..chain.len() - 1].iter().rev().find_map(|id| {
                        self.active
                            .get(id)
                            .and_then(|x| x.tentative_pages.get(&(fid, idx)))
                            .map(|p| p.data.clone())
                    });
                    let base = match inherited {
                        Some(data) => data,
                        None if idx < base_blocks => self.fs.read_block(fid, idx)?.to_vec(),
                        None => vec![0u8; BLOCK_SIZE],
                    };
                    let (d, a) = self.fs.allocate_shadow_block(fid)?;
                    (d, a, base)
                }
            };
            page[(lo - block_start) as usize..(hi - block_start) as usize]
                .copy_from_slice(&data[(lo - offset) as usize..(hi - offset) as usize]);
            // Persist the tentative page to its detached block now — this
            // is the durable copy the commit record will point at.
            self.fs
                .put_detached_block(disk, addr, &page, StablePolicy::None)?;
            self.txn_mut(t)?.tentative_pages.insert(
                (fid, idx),
                TentativePage {
                    disk,
                    addr,
                    data: page,
                },
            );
        }
        Ok(())
    }

    // ---- commit / abort ------------------------------------------------------

    /// Appends encoded record bytes to the log *without* forcing them to
    /// disk (under [`GroupCommit::Never`] the flush is immediate — the
    /// per-record ablation). Durability is [`Self::flush_log`].
    fn append_log_bytes(&mut self, bytes: &[u8]) -> Result<(), TxnError> {
        self.fs.write(self.log_fid, self.log_tail, bytes)?;
        self.log_tail += bytes.len() as u64;
        self.appended_lsn += bytes.len() as u64;
        self.unflushed_records += 1;
        if self.config.group_commit == GroupCommit::Never {
            self.flush_log()?;
        }
        Ok(())
    }

    fn append_log(&mut self, record: &LogRecord) -> Result<(), TxnError> {
        self.append_log_bytes(&record.encode())
    }

    /// Makes every log record appended since the previous flush durable
    /// with one `flush_file` — the group-commit durability point. A no-op
    /// when nothing is pending.
    ///
    /// # Errors
    ///
    /// File-service failures.
    pub fn flush_log(&mut self) -> Result<(), TxnError> {
        if self.unflushed_records > 0 {
            self.fs.flush_file(self.log_fid)?;
            self.stats.log_flushes += 1;
            self.stats.records_flushed += self.unflushed_records;
            if self.unflushed_records > 1 {
                self.stats.group_commits += 1;
            }
            self.stats.records_per_flush_hwm =
                self.stats.records_per_flush_hwm.max(self.unflushed_records);
            if self.unflushed_prepares > 0 {
                self.stats.prepare_flushes += 1;
                self.stats.prepare_records_flushed += self.unflushed_prepares;
            }
            self.durable_lsn = self.appended_lsn;
            self.unflushed_records = 0;
            self.unflushed_prepares = 0;
        }
        // Tentative blocks of applied commits become reusable only now:
        // their `Completed` markers are durable, so no redo can follow the
        // log's stale pointers into reused blocks.
        for (d, a) in std::mem::take(&mut self.deferred_frees) {
            self.fs.free_detached_block(d, a)?;
        }
        Ok(())
    }

    /// Log bytes made durable so far (monotonic across compactions).
    pub fn durable_lsn(&self) -> u64 {
        self.durable_lsn
    }

    /// `tend`: commits the transaction — writes the intentions list to the
    /// durable log, makes the changes permanent (WAL when the file's data
    /// blocks are contiguous, shadow paging otherwise), erases the
    /// intentions and releases every lock.
    ///
    /// # Errors
    ///
    /// [`TxnError::NotActive`]; file-service failures (the log record, if
    /// already durable, will be replayed by recovery).
    pub fn tend(&mut self, t: TxnId) -> Result<(), TxnError> {
        match self.prepare_commit(t)? {
            Prepared::Merged => Ok(()),
            Prepared::Pending(p) => {
                self.flush_log()?;
                let res = self.complete_commit(p);
                // Quiescent housekeeping: everything in the log has
                // completed, so reclaim it once it outgrows the threshold.
                self.maybe_compact_log()?;
                res
            }
        }
    }

    /// First half of a top-level commit: assembles the intentions list and
    /// appends the `Commit` record to the log *without* forcing it to
    /// disk. The caller makes the batch durable with [`Self::flush_log`]
    /// (one flush can cover many prepared commits) and then applies each
    /// with [`Self::complete_commit`]. The transaction stays active — and
    /// keeps its locks — until then.
    ///
    /// Nested commits merge into the parent here and are already done
    /// ([`Prepared::Merged`]).
    ///
    /// # Errors
    ///
    /// [`TxnError::NotActive`], [`TxnError::ChildrenActive`]; file-service
    /// failures writing the log.
    pub fn prepare_commit(&mut self, t: TxnId) -> Result<Prepared, TxnError> {
        self.txn(t)?;
        if self.in_doubt(t) {
            return Err(TxnError::InDoubt(t));
        }
        if !self.children_of(t).is_empty() {
            return Err(TxnError::ChildrenActive(t));
        }
        // Nested commit: merge into the parent; durability waits for the
        // top level.
        if self.txn(t)?.parent.is_some() {
            self.tend_nested(t)?;
            return Ok(Prepared::Merged);
        }
        // Assemble the intentions list.
        let txn = self.active.get(&t).expect("checked");
        let mut intentions: Vec<Intention> = Vec::new();
        let mut pages: Vec<(&(FileId, u64), &TentativePage)> = txn.tentative_pages.iter().collect();
        pages.sort_by_key(|(k, _)| **k);
        for ((fid, idx), p) in pages {
            intentions.push(Intention::Page {
                fid: *fid,
                index: *idx,
                tentative_disk: p.disk,
                tentative_addr: p.addr,
            });
        }
        for (fid, off, bytes) in &txn.tentative_records {
            intentions.push(Intention::Record {
                fid: *fid,
                offset: *off,
                data: bytes.clone(),
            });
        }
        let sizes: Vec<(FileId, u64)> = txn.tentative_sizes.iter().map(|(f, s)| (*f, *s)).collect();
        let has_effects = !intentions.is_empty() || !txn.to_delete.is_empty();
        // Durable commit record (the intention flag moves to Commit) —
        // encoded straight from the borrowed intentions, no deep copy.
        if has_effects {
            let bytes = LogRecord::encode_commit(t, &intentions, &sizes);
            self.append_log_bytes(&bytes)?;
        }
        Ok(Prepared::Pending(PreparedCommit {
            txn: t,
            intentions,
            sizes,
            has_effects,
        }))
    }

    /// Second half of a top-level commit: makes the prepared changes
    /// permanent, performs deferred deletions, appends the `Completed`
    /// marker (deferred into the *next* flush under [`GroupCommit::Auto`]
    /// — redo is idempotent) and releases the locks. The `Commit` record
    /// must already be durable ([`Self::flush_log`]).
    ///
    /// # Errors
    ///
    /// File-service failures; the transaction then stays active and its
    /// durable commit record will be replayed by recovery.
    pub fn complete_commit(&mut self, p: PreparedCommit) -> Result<(), TxnError> {
        let t = p.txn;
        if !self.active.contains_key(&t) {
            return Err(TxnError::NotActive(t));
        }
        // 1. Make the changes permanent.
        for (fid, size) in &p.sizes {
            self.fs.ensure_size(*fid, *size)?;
        }
        self.apply_intentions(&p.intentions, ReadSource::Main, false)?;
        // 2. Deferred deletions.
        let to_delete = self.active.get(&t).expect("checked").to_delete.clone();
        for fid in to_delete {
            // Close our own handle if we had one, then delete.
            if self
                .active
                .get(&t)
                .expect("checked")
                .open_files
                .contains(&fid)
            {
                let _ = self.tclose(t, fid);
            }
            self.fs.delete(fid)?;
        }
        // 3. Erase the intentions (completion marker).
        if p.has_effects {
            self.append_log(&LogRecord::Completed { txn: t })?;
        }
        self.finish(t, true);
        Ok(())
    }

    // ---- cross-shard 2PC participant ------------------------------------

    /// Whether `t` is the local half of an in-doubt cross-shard
    /// transaction (a durable `Prepared` vote awaiting its decision).
    fn in_doubt(&self, t: TxnId) -> bool {
        self.prepared.values().any(|p| p.txn == t)
    }

    /// Phase one of a cross-shard commit, participant side: assembles the
    /// intentions list exactly as [`Self::prepare_commit`] would, appends
    /// a durable `Prepared` record under the coordinator's global
    /// transaction id, and parks the transaction *in doubt* — locks stay
    /// held, timeouts no longer apply, and only
    /// [`Self::resolve_prepared`] may finish it. The record is appended
    /// unforced so a batch of prepares rides one [`Self::flush_log`]; the
    /// vote must not be reported to the coordinator before that flush.
    ///
    /// Deferred deletions (`tdelete`) are not part of the cross-shard
    /// protocol, mirroring the single-shard limitation that deletes are
    /// absent from durable records.
    ///
    /// # Errors
    ///
    /// [`TxnError::NotActive`], [`TxnError::InDoubt`],
    /// [`TxnError::ChildrenActive`] (also returned for a nested `t` —
    /// only top-level transactions prepare); file-service failures
    /// writing the log.
    pub fn prepare_participant(&mut self, t: TxnId, gtid: u64) -> Result<(), TxnError> {
        self.txn(t)?;
        if self.in_doubt(t) {
            return Err(TxnError::InDoubt(t));
        }
        if !self.children_of(t).is_empty() || self.txn(t)?.parent.is_some() {
            return Err(TxnError::ChildrenActive(t));
        }
        let txn = self.active.get(&t).expect("checked");
        let mut intentions: Vec<Intention> = Vec::new();
        let mut pages: Vec<(&(FileId, u64), &TentativePage)> = txn.tentative_pages.iter().collect();
        pages.sort_by_key(|(k, _)| **k);
        for ((fid, idx), p) in pages {
            intentions.push(Intention::Page {
                fid: *fid,
                index: *idx,
                tentative_disk: p.disk,
                tentative_addr: p.addr,
            });
        }
        for (fid, off, bytes) in &txn.tentative_records {
            intentions.push(Intention::Record {
                fid: *fid,
                offset: *off,
                data: bytes.clone(),
            });
        }
        let sizes: Vec<(FileId, u64)> = txn.tentative_sizes.iter().map(|(f, s)| (*f, *s)).collect();
        let has_effects = !intentions.is_empty();
        if has_effects {
            let bytes = LogRecord::encode_prepared(gtid, t, &intentions, &sizes);
            // Count before the append: under `GroupCommit::Never` the
            // append flushes immediately and must see this prepare.
            self.unflushed_prepares += 1;
            if let Err(e) = self.append_log_bytes(&bytes) {
                self.unflushed_prepares = self.unflushed_prepares.saturating_sub(1);
                return Err(e);
            }
        }
        self.stats.prepares += 1;
        self.prepared.insert(
            gtid,
            PreparedParticipant {
                txn: t,
                intentions,
                sizes,
                has_effects,
            },
        );
        Ok(())
    }

    /// Phase two of a cross-shard commit, participant side: applies or
    /// rolls back the in-doubt transaction under `gtid`. Idempotent —
    /// an unknown `gtid` returns `Ok(false)` so at-most-once retries and
    /// duplicate decisions are harmless. Works both crash-free (the
    /// active transaction still holds its tentative state) and after
    /// [`Self::recover`] rebuilt the in-doubt entry from the log.
    ///
    /// The `Completed`/`Aborted` marker is appended unforced: a crash
    /// before it is durable merely re-enters the in-doubt state, and the
    /// orphan sweep re-delivers the same (idempotent) decision.
    ///
    /// # Errors
    ///
    /// File-service failures applying intentions or writing the log.
    pub fn resolve_prepared(&mut self, gtid: u64, commit: bool) -> Result<bool, TxnError> {
        let Some(p) = self.prepared.remove(&gtid) else {
            return Ok(false);
        };
        let t = p.txn;
        let crash_free = self.active.contains_key(&t);
        if commit {
            for (fid, size) in &p.sizes {
                if self.fs.exists(*fid) {
                    self.fs.ensure_size(*fid, *size)?;
                }
            }
            // Post-crash resolves take the recovery-grade apply: serial,
            // tolerant of deleted files, FIT-aliasing guarded (the apply
            // may already have run before the crash ate the marker).
            self.apply_intentions(&p.intentions, ReadSource::Main, !crash_free)?;
            if p.has_effects {
                self.append_log(&LogRecord::Completed { txn: t })?;
            }
            self.finish(t, true);
        } else {
            if p.has_effects {
                self.append_log(&LogRecord::Aborted { txn: t })?;
            }
            if crash_free {
                // The prepared entry is gone, so the normal abort path —
                // which frees tentative blocks and deletes files created
                // inside the transaction — is permitted again.
                self.tabort(t)?;
            } else {
                // After a crash only the intentions name the tentative
                // blocks (re-pinned by recovery); free them directly.
                for i in &p.intentions {
                    if let Intention::Page {
                        tentative_disk,
                        tentative_addr,
                        ..
                    } = i
                    {
                        self.fs
                            .free_detached_block(*tentative_disk, *tentative_addr)?;
                    }
                }
                self.finish(t, false);
            }
        }
        Ok(true)
    }

    /// [`Self::resolve_prepared`] arriving via the orphan sweep — the
    /// participant lost its coordinator and the decision was recovered
    /// from the master's decision log (`commit == false` is a presumed
    /// abort: no durable decision record existed).
    ///
    /// # Errors
    ///
    /// As [`Self::resolve_prepared`].
    pub fn resolve_orphan(&mut self, gtid: u64, commit: bool) -> Result<bool, TxnError> {
        let resolved = self.resolve_prepared(gtid, commit)?;
        if resolved {
            self.stats.orphan_resolutions += 1;
            if !commit {
                self.stats.presumed_aborts += 1;
            }
        }
        Ok(resolved)
    }

    /// Global transaction ids of every in-doubt prepared participant,
    /// sorted — what an orphaned server reports to the recovering
    /// coordinator.
    pub fn prepared_gtids(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.prepared.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Whether any in-doubt prepared participant references `fid`.
    /// Such a file must not be migrated or deleted out from under the
    /// pending decision: the intentions name *this* replica, and after
    /// a crash the transaction no longer holds an open count to protect
    /// it.
    pub fn prepared_touches(&self, fid: FileId) -> bool {
        self.prepared.values().any(|p| {
            p.sizes.iter().any(|(f, _)| *f == fid)
                || p.intentions.iter().any(|i| match i {
                    Intention::Page { fid: f, .. } | Intention::Record { fid: f, .. } => *f == fid,
                })
        })
    }

    /// Quiescent housekeeping: when nothing is active, everything in the
    /// log has completed, so reclaim it once it outgrows the threshold.
    /// Returns whether a compaction ran.
    ///
    /// # Errors
    ///
    /// File-service failures recreating the log.
    pub fn maybe_compact_log(&mut self) -> Result<bool, TxnError> {
        if self.active.is_empty()
            && self.prepared.is_empty()
            && self.log_tail > self.config.log_compact_threshold
        {
            self.compact_log()?;
            return Ok(true);
        }
        Ok(false)
    }

    /// Applies intentions. `recovering` marks redo during
    /// [`Self::recover`]: files deleted after the original apply are
    /// tolerated (the redo of a completed-then-crashed commit must skip
    /// them, not fail) and the serial path is always used.
    fn apply_intentions(
        &mut self,
        intentions: &[Intention],
        source: ReadSource,
        recovering: bool,
    ) -> Result<(), TxnError> {
        let npages = intentions
            .iter()
            .filter(|i| matches!(i, Intention::Page { .. }))
            .count();
        if self.config.group_commit == GroupCommit::Auto && !recovering && npages > 1 {
            return self.apply_intentions_batched(intentions, source);
        }
        for intent in intentions {
            match intent {
                Intention::Page {
                    fid,
                    index,
                    tentative_disk,
                    tentative_addr,
                } => {
                    if recovering && !self.fs.exists(*fid) {
                        // The committing transaction also deleted this file
                        // (apply ran, then the crash ate the `Completed`
                        // marker): nothing to redo. Drop the repinned
                        // tentative block once the redo's `Completed` is
                        // durable.
                        self.deferred_frees.push((*tentative_disk, *tentative_addr));
                        continue;
                    }
                    // Grow first if recovery replays a size-extending write.
                    let nblocks = self
                        .fs
                        .get_attribute(*fid)?
                        .size
                        .div_ceil(BLOCK_SIZE as u64);
                    if *index >= nblocks {
                        self.fs
                            .ensure_size(*fid, (*index + 1) * BLOCK_SIZE as u64)?;
                    }
                    let fit = self.fs.fit_snapshot(*fid)?;
                    let technique = if fit.contiguity_ratio() >= 1.0 {
                        Technique::Wal
                    } else {
                        Technique::Shadow
                    };
                    // Redo aliasing guard: if a pre-crash *shadow* apply
                    // already swung the FIT to the tentative block (the
                    // crash ate only the `Completed` marker) and the
                    // technique recomputes as WAL now, the "tentative"
                    // block IS the live block — copying it onto itself and
                    // then freeing it would corrupt the file.
                    if recovering {
                        let descs = self.fs.block_descriptors(*fid)?;
                        if descs
                            .get(*index as usize)
                            .is_some_and(|d| (d.disk, d.addr) == (*tentative_disk, *tentative_addr))
                        {
                            // Already applied — an idempotent no-op redo.
                            continue;
                        }
                    }
                    let data =
                        self.fs
                            .get_detached_block(*tentative_disk, *tentative_addr, source)?;
                    match technique {
                        Technique::Wal => {
                            // In-place update preserves contiguity; the
                            // detached block was the log entry. Its free
                            // waits for the `Completed` marker to be
                            // durable (see `deferred_frees`).
                            self.fs.write_block(*fid, *index, data)?;
                            self.deferred_frees.push((*tentative_disk, *tentative_addr));
                            self.stats.wal_pages += 1;
                        }
                        Technique::Shadow => {
                            // Swing the descriptor; free the old block —
                            // unless this is a redo of an already-applied
                            // intention, in which case the descriptor
                            // already points at the tentative block and
                            // freeing "old" would free live data.
                            let (od, oa) = self.fs.replace_block_descriptor(
                                *fid,
                                *index,
                                *tentative_disk,
                                *tentative_addr,
                            )?;
                            if (od, oa) != (*tentative_disk, *tentative_addr) {
                                self.fs.free_detached_block(od, oa)?;
                            }
                            self.stats.shadow_pages += 1;
                        }
                    }
                }
                Intention::Record { fid, offset, data } => {
                    if recovering && !self.fs.exists(*fid) {
                        continue;
                    }
                    // Records always use WAL: the log record *is* the log
                    // entry; apply in place.
                    self.fs.ensure_size(*fid, offset + data.len() as u64)?;
                    let opened_here = self.fs.get_attribute(*fid)?.ref_count == 0;
                    if opened_here {
                        self.fs.open(*fid)?;
                    }
                    self.fs.write(*fid, *offset, data)?;
                    self.fs.flush_file(*fid)?;
                    if opened_here {
                        self.fs.close(*fid)?;
                    }
                    self.stats.record_intentions += 1;
                }
            }
        }
        Ok(())
    }

    /// The batched apply: every tentative page in the commit is fetched in
    /// one per-spindle elevator pass, WAL pages land as one write batch
    /// (physically adjacent blocks merge into single disk references) and
    /// record flushes coalesce per file. Data and ordering are exactly the
    /// serial path's; only the grouping of the transfers differs.
    fn apply_intentions_batched(
        &mut self,
        intentions: &[Intention],
        source: ReadSource,
    ) -> Result<(), TxnError> {
        // Pass 1: growth, in list order — growth can change a file's
        // layout, so finish all of it before snapshotting techniques.
        let mut pages: Vec<(FileId, u64, u16, u64)> = Vec::new();
        for intent in intentions {
            if let Intention::Page {
                fid,
                index,
                tentative_disk,
                tentative_addr,
            } = intent
            {
                let nblocks = self
                    .fs
                    .get_attribute(*fid)?
                    .size
                    .div_ceil(BLOCK_SIZE as u64);
                if *index >= nblocks {
                    self.fs
                        .ensure_size(*fid, (*index + 1) * BLOCK_SIZE as u64)?;
                }
                pages.push((*fid, *index, *tentative_disk, *tentative_addr));
            }
        }
        let mut technique: HashMap<FileId, Technique> = HashMap::new();
        for &(fid, ..) in &pages {
            if let std::collections::hash_map::Entry::Vacant(e) = technique.entry(fid) {
                let t = if self.fs.fit_snapshot(fid)?.contiguity_ratio() >= 1.0 {
                    Technique::Wal
                } else {
                    Technique::Shadow
                };
                e.insert(t);
            }
        }
        // Pass 2: one elevator batch reads every tentative block.
        let locs: Vec<(u16, u64)> = pages.iter().map(|&(_, _, d, a)| (d, a)).collect();
        let bufs = self.fs.get_detached_blocks(&locs, source)?;
        self.stats.commit_batch_pages += pages.len() as u64;
        // Pass 3: WAL pages become one write batch; shadow swings are FIT
        // surgery (no data transfer) and stay serial.
        let mut wal_writes: Vec<(FileId, u64, rhodos_buf::BlockBuf)> = Vec::new();
        let mut wal_frees: Vec<(u16, u64)> = Vec::new();
        for (&(fid, index, td, ta), buf) in pages.iter().zip(bufs) {
            match technique[&fid] {
                Technique::Wal => {
                    wal_writes.push((fid, index, buf));
                    wal_frees.push((td, ta));
                    self.stats.wal_pages += 1;
                }
                Technique::Shadow => {
                    let (od, oa) = self.fs.replace_block_descriptor(fid, index, td, ta)?;
                    if (od, oa) != (td, ta) {
                        self.fs.free_detached_block(od, oa)?;
                    }
                    self.stats.shadow_pages += 1;
                }
            }
        }
        self.fs.write_blocks(wal_writes)?;
        // The frees wait for the `Completed` marker (see `deferred_frees`).
        self.deferred_frees.extend(wal_frees);
        // Pass 4: record intentions, in order, flushing each touched file
        // once at the end instead of once per record.
        let mut touched: Vec<FileId> = Vec::new();
        for intent in intentions {
            if let Intention::Record { fid, offset, data } = intent {
                self.fs.ensure_size(*fid, offset + data.len() as u64)?;
                let opened_here = self.fs.get_attribute(*fid)?.ref_count == 0;
                if opened_here {
                    self.fs.open(*fid)?;
                }
                self.fs.write(*fid, *offset, data)?;
                if opened_here {
                    // Keep the file open until the coalesced flush below.
                    self.fs.flush_file(*fid)?;
                    self.fs.close(*fid)?;
                } else if !touched.contains(fid) {
                    touched.push(*fid);
                }
                self.stats.record_intentions += 1;
            }
        }
        for fid in touched {
            self.fs.flush_file(fid)?;
        }
        Ok(())
    }

    /// Merges a committed nested transaction's tentative state into its
    /// parent. The child's page versions shadow the parent's (whose
    /// superseded tentative blocks are freed); records append in order;
    /// opened files and deferred operations transfer.
    fn tend_nested(&mut self, t: TxnId) -> Result<(), TxnError> {
        let child = self.active.remove(&t).expect("caller checked");
        let parent_id = child.parent.expect("nested");
        // Free parent tentative blocks that the child's versions replace.
        let superseded: Vec<(u16, u64)> = {
            let parent = self.active.get(&parent_id).expect("parent is active");
            child
                .tentative_pages
                .keys()
                .filter_map(|k| parent.tentative_pages.get(k).map(|p| (p.disk, p.addr)))
                .collect()
        };
        for (d, a) in superseded {
            self.fs.free_detached_block(d, a)?;
        }
        let parent = self.active.get_mut(&parent_id).expect("parent is active");
        parent.tentative_pages.extend(child.tentative_pages);
        parent.tentative_records.extend(child.tentative_records);
        for (fid, sz) in child.tentative_sizes {
            let e = parent.tentative_sizes.entry(fid).or_insert(sz);
            *e = (*e).max(sz);
        }
        parent.created.extend(child.created);
        parent.to_delete.extend(child.to_delete);
        // The parent adopts the child's file references (and their fs
        // refcounts, released at top-level finish).
        for fid in child.open_files {
            if !parent.open_files.insert(fid) {
                // Parent already held its own reference: drop the extra.
                self.fs.close(fid)?;
            }
        }
        self.stats.committed += 1;
        Ok(())
    }

    /// `tabort`: discards every tentative effect and releases the locks.
    /// Nested children are aborted first; aborting a nested transaction
    /// discards only its own tentative state (the parent's survives).
    ///
    /// # Errors
    ///
    /// [`TxnError::NotActive`] if the transaction does not exist.
    pub fn tabort(&mut self, t: TxnId) -> Result<(), TxnError> {
        self.txn(t)?;
        if self.in_doubt(t) {
            return Err(TxnError::InDoubt(t));
        }
        for child in self.children_of(t) {
            self.tabort(child)?;
        }
        if self.txn(t)?.parent.is_some() {
            return self.tabort_nested(t);
        }
        let txn = self.active.get(&t).expect("checked");
        let tentative: Vec<(u16, u64)> = txn
            .tentative_pages
            .values()
            .map(|p| (p.disk, p.addr))
            .collect();
        let created = txn.created.clone();
        for (d, a) in tentative {
            self.fs.free_detached_block(d, a)?;
        }
        // Files created inside the transaction never existed.
        for fid in created {
            if self
                .active
                .get(&t)
                .expect("checked")
                .open_files
                .contains(&fid)
            {
                let _ = self.tclose(t, fid);
            }
            let _ = self.fs.delete(fid);
        }
        self.finish(t, false);
        Ok(())
    }

    /// Aborts a nested transaction: its own tentative blocks, created
    /// files and file references go; the parent's state — and the
    /// family's locks, which are held in the root's name — survive.
    fn tabort_nested(&mut self, t: TxnId) -> Result<(), TxnError> {
        let child = self.active.remove(&t).expect("caller checked");
        for p in child.tentative_pages.values() {
            self.fs.free_detached_block(p.disk, p.addr)?;
        }
        for fid in &child.created {
            if child.open_files.contains(fid) {
                let _ = self.fs.close(*fid);
            }
            let _ = self.fs.delete(*fid);
        }
        for fid in child.open_files {
            if !child.created.contains(&fid) {
                let _ = self.fs.close(fid);
            }
        }
        self.stats.aborted += 1;
        Ok(())
    }

    /// Completes a transaction: closes files, releases locks in every
    /// table, wakes waiters.
    fn finish(&mut self, t: TxnId, committed: bool) {
        if let Some(txn) = self.active.remove(&t) {
            for fid in txn.open_files {
                let _ = self.fs.close(fid);
            }
        }
        let now = self.fs.clock().now_us();
        for table in &self.tables {
            table.release_all(t.0, now);
        }
        if committed {
            self.stats.committed += 1;
        } else {
            self.stats.aborted += 1;
        }
    }

    // ---- timeouts -------------------------------------------------------------

    /// Drives the timeout machinery (§6.4): transactions whose locks
    /// expired are aborted and returned. Call periodically (experiments
    /// call it whenever simulated time advances).
    pub fn tick(&mut self) -> Vec<TxnId> {
        let now = self.fs.clock().now_us();
        let mut victims: Vec<TxnId> = Vec::new();
        for table in &self.tables {
            for v in table.tick(now) {
                let id = TxnId(v);
                if !victims.contains(&id) {
                    victims.push(id);
                }
            }
        }
        for v in &victims {
            // In-doubt participants must never be timeout-aborted: their
            // vote is durable and only the coordinator's decision (or the
            // orphan sweep) may resolve them — 2PC's inherent blocking
            // window, bounded by orphan resolution rather than by LT.
            if self.active.contains_key(v) && !self.in_doubt(*v) {
                self.stats.timeout_aborts += 1;
                let _ = self.tabort(*v);
            }
        }
        victims
    }

    // ---- recovery ---------------------------------------------------------------

    /// Crash-recovers the whole stack: file service first (directory,
    /// FITs, allocation), then the transaction log — committed-but-
    /// incomplete transactions are re-applied (redo), unfinished
    /// transactions simply never happened (their tentative blocks are
    /// reclaimed by the allocation rebuild). Returns the transactions that
    /// were redone.
    ///
    /// # Errors
    ///
    /// Fails if the log itself is unrecoverable.
    pub fn recover(&mut self) -> Result<Vec<TxnId>, TxnError> {
        self.active.clear();
        // In-doubt state is rebuilt from the durable `Prepared` records
        // below; whatever was in memory is stale.
        self.prepared.clear();
        // Pre-crash deferred frees are stale: the allocation rebuild
        // below reclaims unreferenced blocks itself.
        self.deferred_frees.clear();
        // Reset the lock tables *in place*: outstanding Arc handles (the
        // shared-service fast path) must keep seeing the live tables.
        for table in &self.tables {
            table.reset();
        }
        self.fs.recover()?;
        self.log_fid = self
            .fs
            .system_file()
            .ok_or(TxnError::File(FileServiceError::NotFound(FileId(0))))?;
        self.fs.open(self.log_fid)?;
        let size = self.fs.get_attribute(self.log_fid)?.size;
        let image = if size > 0 {
            self.fs.read(self.log_fid, 0, size as usize)?
        } else {
            Vec::new()
        };
        // Anything appended but unflushed before the crash is gone; the
        // durable horizon restarts at the recovered tail.
        self.unflushed_records = 0;
        self.unflushed_prepares = 0;
        self.durable_lsn = self.appended_lsn;
        let (records, valid_len) = LogRecord::decode_log_prefix(&image);
        // Resume appending at the end of the *valid* prefix, not the
        // recorded file size: a crash inside the deferred-`Completed`
        // window can leave the size covering a torn tail (the append grew
        // the FIT durably but its bytes never flushed), and a record
        // appended after that garbage would be unreachable — every future
        // decode stops at the tear, so the redo would repeat on each
        // recovery instead of being marked done.
        self.log_tail = valid_len as u64;
        type CommitBody = (Vec<Intention>, Vec<(FileId, u64)>);
        let mut committed: HashMap<TxnId, CommitBody> = HashMap::new();
        let mut in_doubt: Vec<(u64, TxnId, CommitBody)> = Vec::new();
        for rec in records {
            match rec {
                LogRecord::Commit {
                    txn,
                    intentions,
                    sizes,
                } => {
                    committed.insert(txn, (intentions, sizes));
                }
                LogRecord::Completed { txn } => {
                    committed.remove(&txn);
                    in_doubt.retain(|(_, t, _)| *t != txn);
                }
                LogRecord::Prepared {
                    gtid,
                    txn,
                    intentions,
                    sizes,
                } => {
                    in_doubt.push((gtid, txn, (intentions, sizes)));
                }
                LogRecord::Aborted { txn } => {
                    in_doubt.retain(|(_, t, _)| *t != txn);
                }
            }
        }
        let mut redone: Vec<TxnId> = committed.keys().copied().collect();
        redone.sort();
        // NOTE: the allocation rebuild in fs.recover() freed every block
        // not referenced by a FIT — including the tentative blocks of the
        // transactions we are about to redo. Re-pin them before applying.
        // (Simplest correct order: re-mark, apply, then the apply frees
        // them again through the normal path.)
        let mut to_apply: Vec<(TxnId, CommitBody)> = Vec::new();
        for t in &redone {
            to_apply.push((*t, committed.remove(t).expect("present")));
        }
        for (_, (intentions, _)) in &to_apply {
            self.repin_tentative_blocks(intentions)?;
        }
        for (t, (intentions, sizes)) in to_apply {
            // Replay logical sizes first, exactly as `complete_commit`
            // orders it — intentions are block-granular and alone would
            // leave a size-extending redo short.
            for (fid, size) in sizes {
                if self.fs.exists(fid) {
                    self.fs.ensure_size(fid, size)?;
                }
            }
            self.apply_intentions(&intentions, ReadSource::Main, true)?;
            self.append_log(&LogRecord::Completed { txn: t })?;
        }
        // Rebuild the in-doubt participants: their tentative blocks were
        // also reclaimed by the allocation rebuild, and their locks died
        // with the tables — re-pin and re-acquire both, so the isolation
        // the vote promised holds until the decision arrives.
        for (gtid, t, (intentions, sizes)) in in_doubt {
            self.repin_tentative_blocks(&intentions)?;
            self.reacquire_locks(t, &intentions)?;
            if self.next_txn <= t.0 {
                self.next_txn = t.0 + 1;
            }
            self.prepared.insert(
                gtid,
                PreparedParticipant {
                    txn: t,
                    intentions,
                    sizes,
                    has_effects: true,
                },
            );
        }
        // One flush covers every redo's `Completed` marker (and leaves
        // nothing deferred from before the crash).
        self.flush_log()?;
        Ok(redone)
    }

    /// Re-establishes the locks an in-doubt prepared participant held
    /// before the crash, at the granularity its files are configured
    /// for. In-doubt transactions never conflict with each other (their
    /// grants predate the crash), so grant outcomes are not checked.
    fn reacquire_locks(&mut self, t: TxnId, intentions: &[Intention]) -> Result<(), TxnError> {
        let now = self.fs.clock().now_us();
        for i in intentions {
            let fid = match i {
                Intention::Page { fid, .. } | Intention::Record { fid, .. } => *fid,
            };
            if !self.fs.exists(fid) {
                continue;
            }
            let level = self.lock_level_of(fid)?;
            let item = match (level, i) {
                (LockLevel::Page, Intention::Page { index, .. }) => DataItem::Page(fid, *index),
                (LockLevel::Record, Intention::Record { offset, data, .. }) => {
                    DataItem::Record(fid, *offset, *offset + data.len().max(1) as u64)
                }
                // File-level files, or a granularity change since the
                // prepare: the whole-file item in the level's table.
                _ => DataItem::File(fid),
            };
            self.tables[table_index(level)].set_lock(t.0, t.0, item, LockMode::Iwrite, now);
        }
        Ok(())
    }

    /// After the allocation rebuild, tentative blocks named by redo
    /// records are unallocated; reserve them again so redo can free or
    /// adopt them safely.
    fn repin_tentative_blocks(&mut self, intentions: &[Intention]) -> Result<(), TxnError> {
        use rhodos_disk_service::Extent;
        for i in intentions {
            if let Intention::Page {
                tentative_disk,
                tentative_addr,
                ..
            } = i
            {
                let disk = self.fs.disk_mut(*tentative_disk as usize);
                // The extent may already be allocated if another FIT
                // adopted it; only pin when free.
                let extent = Extent::new(*tentative_addr, rhodos_disk_service::FRAGS_PER_BLOCK);
                disk.repin_extent(extent);
            }
        }
        Ok(())
    }

    /// Compacts the intention log: everything in it has completed, so the
    /// log file is deleted and recreated empty. Call in a quiescent state
    /// (no active transactions).
    ///
    /// # Errors
    ///
    /// File-service failures.
    ///
    /// # Panics
    ///
    /// Panics if transactions are still active.
    pub fn compact_log(&mut self) -> Result<(), TxnError> {
        assert!(
            self.active.is_empty(),
            "compact_log requires a quiescent service"
        );
        assert!(
            self.prepared.is_empty(),
            "compact_log must not discard in-doubt Prepared records"
        );
        self.fs.close(self.log_fid)?;
        self.fs.delete(self.log_fid)?;
        let fid = self.fs.create(ServiceType::Transaction)?;
        self.fs.set_system_file(fid)?;
        self.fs.open(fid)?;
        self.log_fid = fid;
        self.log_tail = 0;
        // Unflushed `Completed` markers died with the old log file —
        // harmless, since the whole log they referred to is gone too, and
        // with the `Commit` records gone no redo can chase freed blocks.
        self.unflushed_records = 0;
        self.durable_lsn = self.appended_lsn;
        for (d, a) in std::mem::take(&mut self.deferred_frees) {
            self.fs.free_detached_block(d, a)?;
        }
        self.stats.log_compactions += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rhodos_file_service::FileServiceConfig;
    use rhodos_simdisk::{DiskGeometry, LatencyModel, SimClock};

    fn service() -> TransactionService {
        let fs = FileService::single_disk(
            DiskGeometry::medium(),
            LatencyModel::default(),
            SimClock::new(),
            FileServiceConfig::default(),
        )
        .unwrap();
        TransactionService::new(fs, TxnConfig::default()).unwrap()
    }

    fn setup(level: LockLevel) -> (TransactionService, FileId) {
        let mut ts = service();
        let fid = ts.tcreate(level).unwrap();
        (ts, fid)
    }

    #[test]
    fn commit_makes_writes_visible() {
        let (mut ts, fid) = setup(LockLevel::Page);
        let t = ts.tbegin();
        ts.topen(t, fid).unwrap();
        ts.twrite(t, fid, 0, b"committed!").unwrap();
        ts.tend(t).unwrap();
        let t2 = ts.tbegin();
        ts.topen(t2, fid).unwrap();
        assert_eq!(ts.tread(t2, fid, 0, 10).unwrap(), b"committed!");
        ts.tend(t2).unwrap();
        assert_eq!(ts.stats().committed, 2);
    }

    #[test]
    fn abort_discards_writes() {
        let (mut ts, fid) = setup(LockLevel::Page);
        let t = ts.tbegin();
        ts.topen(t, fid).unwrap();
        ts.twrite(t, fid, 0, b"seed").unwrap();
        ts.tend(t).unwrap();
        let t2 = ts.tbegin();
        ts.topen(t2, fid).unwrap();
        ts.twrite(t2, fid, 0, b"oops").unwrap();
        ts.tabort(t2).unwrap();
        let t3 = ts.tbegin();
        ts.topen(t3, fid).unwrap();
        assert_eq!(ts.tread(t3, fid, 0, 4).unwrap(), b"seed");
        ts.tend(t3).unwrap();
    }

    #[test]
    fn tentative_writes_invisible_to_others_but_visible_to_self() {
        let (mut ts, fid) = setup(LockLevel::Record);
        let t0 = ts.tbegin();
        ts.topen(t0, fid).unwrap();
        ts.twrite(t0, fid, 0, b"AAAA").unwrap();
        ts.tend(t0).unwrap();

        let t1 = ts.tbegin();
        ts.topen(t1, fid).unwrap();
        ts.twrite(t1, fid, 0, b"BB").unwrap();
        // Own read sees the overlay.
        assert_eq!(ts.tread(t1, fid, 0, 4).unwrap(), b"BBAA");
        // Another transaction is blocked from the overlapping range
        // (Iwrite is exclusive)...
        let t2 = ts.tbegin();
        ts.topen(t2, fid).unwrap();
        assert!(matches!(
            ts.tread(t2, fid, 0, 2),
            Err(TxnError::WouldBlock { .. })
        ));
        // ...but record locking lets it read a disjoint range and see only
        // committed data there.
        assert_eq!(ts.tread(t2, fid, 2, 2).unwrap(), b"AA");
        ts.tend(t1).unwrap();
        // After commit the waiter can read the new data.
        assert_eq!(ts.tread(t2, fid, 0, 2).unwrap(), b"BB");
        ts.tend(t2).unwrap();
    }

    #[test]
    fn file_level_locking_serialises_whole_file() {
        let (mut ts, fid) = setup(LockLevel::File);
        let t1 = ts.tbegin();
        let t2 = ts.tbegin();
        ts.topen(t1, fid).unwrap();
        ts.topen(t2, fid).unwrap();
        ts.twrite(t1, fid, 0, b"x").unwrap();
        // Even a read of a distant offset blocks under file locking.
        assert!(matches!(
            ts.tread(t2, fid, 100_000, 1),
            Err(TxnError::WouldBlock { .. })
        ));
        ts.tend(t1).unwrap();
        assert!(ts.tread(t2, fid, 0, 1).is_ok());
        ts.tend(t2).unwrap();
    }

    #[test]
    fn page_level_locking_allows_disjoint_pages() {
        let (mut ts, fid) = setup(LockLevel::Page);
        // Seed two pages.
        let t0 = ts.tbegin();
        ts.topen(t0, fid).unwrap();
        ts.twrite(t0, fid, 0, &vec![1u8; 2 * BLOCK_SIZE]).unwrap();
        ts.tend(t0).unwrap();
        let t1 = ts.tbegin();
        let t2 = ts.tbegin();
        ts.topen(t1, fid).unwrap();
        ts.topen(t2, fid).unwrap();
        ts.twrite(t1, fid, 0, b"page zero").unwrap();
        // Disjoint page: no conflict.
        ts.twrite(t2, fid, BLOCK_SIZE as u64, b"page one").unwrap();
        // Same page: conflict.
        assert!(matches!(
            ts.twrite(t2, fid, 0, b"clash"),
            Err(TxnError::WouldBlock { .. })
        ));
        ts.tend(t1).unwrap();
        ts.tend(t2).unwrap();
    }

    #[test]
    fn read_for_update_prevents_new_readers() {
        let (mut ts, fid) = setup(LockLevel::Page);
        let t0 = ts.tbegin();
        ts.topen(t0, fid).unwrap();
        ts.twrite(t0, fid, 0, b"v1").unwrap();
        ts.tend(t0).unwrap();
        let t1 = ts.tbegin();
        let t2 = ts.tbegin();
        ts.topen(t1, fid).unwrap();
        ts.topen(t2, fid).unwrap();
        assert_eq!(ts.tread_for_update(t1, fid, 0, 2).unwrap(), b"v1");
        // New read-only lock refused once the Iread is in place.
        assert!(matches!(
            ts.tread(t2, fid, 0, 2),
            Err(TxnError::WouldBlock { .. })
        ));
        // The Iread holder converts and writes.
        ts.twrite(t1, fid, 0, b"v2").unwrap();
        ts.tend(t1).unwrap();
        assert_eq!(ts.tread(t2, fid, 0, 2).unwrap(), b"v2");
        ts.tend(t2).unwrap();
    }

    #[test]
    fn readers_share_read_only_locks() {
        let (mut ts, fid) = setup(LockLevel::Page);
        let t0 = ts.tbegin();
        ts.topen(t0, fid).unwrap();
        ts.twrite(t0, fid, 0, b"shared").unwrap();
        ts.tend(t0).unwrap();
        let readers: Vec<TxnId> = (0..5).map(|_| ts.tbegin()).collect();
        for &r in &readers {
            ts.topen(r, fid).unwrap();
            assert_eq!(ts.tread(r, fid, 0, 6).unwrap(), b"shared");
        }
        for r in readers {
            ts.tend(r).unwrap();
        }
    }

    #[test]
    fn deadlock_broken_by_timeout_and_survivor_proceeds() {
        let (mut ts, fid) = setup(LockLevel::Page);
        let t0 = ts.tbegin();
        ts.topen(t0, fid).unwrap();
        ts.twrite(t0, fid, 0, &vec![0u8; 2 * BLOCK_SIZE]).unwrap();
        ts.tend(t0).unwrap();
        let t1 = ts.tbegin();
        let t2 = ts.tbegin();
        ts.topen(t1, fid).unwrap();
        ts.topen(t2, fid).unwrap();
        ts.twrite(t1, fid, 0, b"a").unwrap(); // t1 holds page 0
        ts.twrite(t2, fid, BLOCK_SIZE as u64, b"b").unwrap(); // t2 holds page 1
        assert!(ts.twrite(t1, fid, BLOCK_SIZE as u64, b"x").is_err()); // t1 waits on page 1
        assert!(ts.twrite(t2, fid, 0, b"y").is_err()); // t2 waits on page 0 — deadlock
                                                       // Advance virtual time past LT and tick.
        let clock = ts.file_service_mut().clock();
        clock.advance(TxnConfig::default().lt_us + 1);
        let victims = ts.tick();
        assert_eq!(victims.len(), 1, "exactly one victim breaks the cycle");
        let survivor = if victims[0] == t1 { t2 } else { t1 };
        // Survivor's pending write now succeeds on retry.
        let off = if survivor == t1 { BLOCK_SIZE as u64 } else { 0 };
        ts.twrite(survivor, fid, off, b"won").unwrap();
        ts.tend(survivor).unwrap();
        assert_eq!(ts.stats().timeout_aborts, 1);
    }

    #[test]
    fn contiguous_file_commits_via_wal_and_stays_contiguous() {
        let (mut ts, fid) = setup(LockLevel::Page);
        let t0 = ts.tbegin();
        ts.topen(t0, fid).unwrap();
        ts.twrite(t0, fid, 0, &vec![9u8; 8 * BLOCK_SIZE]).unwrap();
        ts.tend(t0).unwrap();
        let before = ts.file_service_mut().fit_snapshot(fid).unwrap();
        assert_eq!(before.contiguity_ratio(), 1.0);
        let t = ts.tbegin();
        ts.topen(t, fid).unwrap();
        ts.twrite(t, fid, 3 * BLOCK_SIZE as u64, b"update in place")
            .unwrap();
        ts.tend(t).unwrap();
        let after = ts.file_service_mut().fit_snapshot(fid).unwrap();
        assert_eq!(
            after.contiguity_ratio(),
            1.0,
            "WAL must preserve contiguity"
        );
        assert!(ts.stats().wal_pages > 0);
        assert_eq!(ts.stats().shadow_pages, 0);
        // And the data is there.
        let t2 = ts.tbegin();
        ts.topen(t2, fid).unwrap();
        assert_eq!(
            ts.tread(t2, fid, 3 * BLOCK_SIZE as u64, 15).unwrap(),
            b"update in place"
        );
        ts.tend(t2).unwrap();
    }

    #[test]
    fn fragmented_file_commits_via_shadow_pages() {
        let (mut ts, fid) = setup(LockLevel::Page);
        // Build a deliberately fragmented file: interleave with another
        // file's allocations.
        let other = ts.tcreate(LockLevel::Page).unwrap();
        let fs = ts.file_service_mut();
        fs.open(fid).unwrap();
        fs.open(other).unwrap();
        for i in 0..4u64 {
            fs.write(fid, i * BLOCK_SIZE as u64, vec![1u8; BLOCK_SIZE])
                .unwrap();
            fs.write(other, i * BLOCK_SIZE as u64, vec![2u8; BLOCK_SIZE])
                .unwrap();
        }
        fs.flush_all().unwrap();
        fs.close(fid).unwrap();
        fs.close(other).unwrap();
        let ratio = ts
            .file_service_mut()
            .fit_snapshot(fid)
            .unwrap()
            .contiguity_ratio();
        assert!(
            ratio < 1.0,
            "setup should fragment the file (ratio {ratio})"
        );
        let t = ts.tbegin();
        ts.topen(t, fid).unwrap();
        ts.twrite(t, fid, 0, b"shadowed").unwrap();
        ts.tend(t).unwrap();
        assert!(ts.stats().shadow_pages > 0, "shadow technique expected");
        let t2 = ts.tbegin();
        ts.topen(t2, fid).unwrap();
        assert_eq!(ts.tread(t2, fid, 0, 8).unwrap(), b"shadowed");
        ts.tend(t2).unwrap();
    }

    #[test]
    fn committed_but_incomplete_transaction_redone_after_crash() {
        let (mut ts, fid) = setup(LockLevel::Page);
        let t0 = ts.tbegin();
        ts.topen(t0, fid).unwrap();
        ts.twrite(t0, fid, 0, b"base").unwrap();
        ts.tend(t0).unwrap();
        // Forge a crash between the commit record and its application:
        // write the commit record by hand, then crash.
        let t = ts.tbegin();
        ts.topen(t, fid).unwrap();
        ts.twrite(t, fid, 0, b"redo").unwrap();
        // Extract what tend would log, write it, but skip application.
        let txn = ts.active.get(&t).unwrap();
        let intentions: Vec<Intention> = txn
            .tentative_pages
            .iter()
            .map(|((f, i), p)| Intention::Page {
                fid: *f,
                index: *i,
                tentative_disk: p.disk,
                tentative_addr: p.addr,
            })
            .collect();
        let sizes = {
            let txn = ts.active.get(&t).unwrap();
            txn.tentative_sizes.iter().map(|(f, s)| (*f, *s)).collect()
        };
        let rec = LogRecord::Commit {
            txn: t,
            intentions,
            sizes,
        };
        ts.append_log(&rec).unwrap();
        // Make the forged record durable (this also flushes t0's deferred
        // `Completed` marker, as the next group flush would).
        ts.flush_log().unwrap();
        ts.file_service_mut().simulate_crash();
        let redone = ts.recover().unwrap();
        assert_eq!(redone, vec![t]);
        // The redo applied the write.
        let t2 = ts.tbegin();
        ts.topen(t2, fid).unwrap();
        assert_eq!(ts.tread(t2, fid, 0, 4).unwrap(), b"redo");
        ts.tend(t2).unwrap();
        // Recovery is idempotent: a second crash+recover redoes nothing.
        ts.file_service_mut().simulate_crash();
        assert!(ts.recover().unwrap().is_empty());
    }

    #[test]
    fn uncommitted_transaction_vanishes_after_crash() {
        let (mut ts, fid) = setup(LockLevel::Page);
        let t0 = ts.tbegin();
        ts.topen(t0, fid).unwrap();
        ts.twrite(t0, fid, 0, b"durable").unwrap();
        ts.tend(t0).unwrap();
        let t = ts.tbegin();
        ts.topen(t, fid).unwrap();
        ts.twrite(t, fid, 0, b"ghost!!").unwrap();
        // Crash with no commit record. t0's `Completed` marker was
        // deferred into a flush that never happened, so recovery redoes
        // t0 (harmless — redo is idempotent); the uncommitted t must not
        // appear.
        ts.file_service_mut().simulate_crash();
        assert_eq!(ts.recover().unwrap(), vec![t0]);
        let t2 = ts.tbegin();
        ts.topen(t2, fid).unwrap();
        assert_eq!(ts.tread(t2, fid, 0, 7).unwrap(), b"durable");
        ts.tend(t2).unwrap();
    }

    #[test]
    fn created_file_rolled_back_on_abort() {
        let mut ts = service();
        let t = ts.tbegin();
        let fid = ts.tcreate_in(t, LockLevel::Page).unwrap();
        ts.twrite(t, fid, 0, b"temp").unwrap();
        ts.tabort(t).unwrap();
        assert!(!ts.file_service_mut().exists(fid));
    }

    #[test]
    fn tdelete_applies_only_on_commit() {
        let (mut ts, fid) = setup(LockLevel::Page);
        let t = ts.tbegin();
        ts.tdelete(t, fid).unwrap();
        assert!(ts.file_service_mut().exists(fid));
        ts.tend(t).unwrap();
        assert!(!ts.file_service_mut().exists(fid));
    }

    #[test]
    fn tdelete_aborted_keeps_file() {
        let (mut ts, fid) = setup(LockLevel::Page);
        let t = ts.tbegin();
        ts.tdelete(t, fid).unwrap();
        ts.tabort(t).unwrap();
        assert!(ts.file_service_mut().exists(fid));
    }

    #[test]
    fn operations_on_dead_transactions_rejected() {
        let (mut ts, fid) = setup(LockLevel::Page);
        let t = ts.tbegin();
        ts.topen(t, fid).unwrap();
        ts.tend(t).unwrap();
        assert!(matches!(
            ts.twrite(t, fid, 0, b"x"),
            Err(TxnError::NotActive(_))
        ));
        assert!(matches!(ts.tend(t), Err(TxnError::NotActive(_))));
        assert!(matches!(ts.tabort(t), Err(TxnError::NotActive(_))));
    }

    #[test]
    fn io_requires_topen() {
        let (mut ts, fid) = setup(LockLevel::Page);
        let t = ts.tbegin();
        assert!(matches!(
            ts.tread(t, fid, 0, 1),
            Err(TxnError::FileNotOpen(_))
        ));
        assert!(matches!(
            ts.twrite(t, fid, 0, b"x"),
            Err(TxnError::FileNotOpen(_))
        ));
        ts.tabort(t).unwrap();
    }

    #[test]
    fn tentative_size_growth_commits() {
        let (mut ts, fid) = setup(LockLevel::Page);
        let t = ts.tbegin();
        ts.topen(t, fid).unwrap();
        let far = 3 * BLOCK_SIZE as u64 + 17;
        ts.twrite(t, fid, far, b"tail").unwrap();
        assert_eq!(ts.tget_attribute(t, fid).unwrap().size, far + 4);
        ts.tend(t).unwrap();
        let t2 = ts.tbegin();
        ts.topen(t2, fid).unwrap();
        assert_eq!(ts.tread(t2, fid, far, 4).unwrap(), b"tail");
        // The gap reads as zeros.
        assert!(ts.tread(t2, fid, 10, 8).unwrap().iter().all(|&b| b == 0));
        ts.tend(t2).unwrap();
    }

    #[test]
    fn record_mode_log_carries_data_inline() {
        let (mut ts, fid) = setup(LockLevel::Record);
        let t = ts.tbegin();
        ts.topen(t, fid).unwrap();
        ts.twrite(t, fid, 5, b"record-mode payload").unwrap();
        ts.tend(t).unwrap();
        assert_eq!(ts.stats().record_intentions, 1);
        assert_eq!(ts.stats().wal_pages + ts.stats().shadow_pages, 0);
        let t2 = ts.tbegin();
        ts.topen(t2, fid).unwrap();
        assert_eq!(ts.tread(t2, fid, 5, 19).unwrap(), b"record-mode payload");
        ts.tend(t2).unwrap();
    }

    #[test]
    fn log_auto_compacts_past_threshold() {
        let fs = FileService::single_disk(
            DiskGeometry::medium(),
            LatencyModel::instant(),
            SimClock::new(),
            FileServiceConfig::default(),
        )
        .unwrap();
        let mut ts = TransactionService::new(
            fs,
            TxnConfig {
                log_compact_threshold: 2_000,
                ..Default::default()
            },
        )
        .unwrap();
        let fid = ts.tcreate(LockLevel::Page).unwrap();
        for i in 0..60u8 {
            let t = ts.tbegin();
            ts.topen(t, fid).unwrap();
            ts.twrite(t, fid, 0, &[i; 16]).unwrap();
            ts.tend(t).unwrap();
            assert!(
                ts.log_tail <= 2_000 + 200,
                "log should stay near the threshold, is {}",
                ts.log_tail
            );
        }
        // Data is still intact after all the compactions.
        let t = ts.tbegin();
        ts.topen(t, fid).unwrap();
        assert_eq!(ts.tread(t, fid, 0, 16).unwrap(), vec![59u8; 16]);
        ts.tend(t).unwrap();
    }

    #[test]
    fn compact_log_resets_tail() {
        let (mut ts, fid) = setup(LockLevel::Page);
        for _ in 0..5 {
            let t = ts.tbegin();
            ts.topen(t, fid).unwrap();
            ts.twrite(t, fid, 0, b"round").unwrap();
            ts.tend(t).unwrap();
        }
        assert!(ts.log_tail > 0);
        ts.compact_log().unwrap();
        assert_eq!(ts.log_tail, 0);
        // Service still works.
        let t = ts.tbegin();
        ts.topen(t, fid).unwrap();
        ts.twrite(t, fid, 0, b"after").unwrap();
        ts.tend(t).unwrap();
    }

    // ---- cross-shard 2PC participant ------------------------------------

    fn prepared_write(ts: &mut TransactionService, fid: FileId, gtid: u64, data: &[u8]) -> TxnId {
        let t = ts.tbegin();
        ts.topen(t, fid).unwrap();
        ts.twrite(t, fid, 0, data).unwrap();
        ts.prepare_participant(t, gtid).unwrap();
        ts.flush_log().unwrap();
        t
    }

    #[test]
    fn prepare_then_commit_applies_writes() {
        let (mut ts, fid) = setup(LockLevel::Page);
        prepared_write(&mut ts, fid, 77, b"cross");
        assert_eq!(ts.prepared_gtids(), vec![77]);
        assert!(ts.resolve_prepared(77, true).unwrap());
        assert!(ts.prepared_gtids().is_empty());
        let t2 = ts.tbegin();
        ts.topen(t2, fid).unwrap();
        assert_eq!(ts.tread(t2, fid, 0, 5).unwrap(), b"cross");
        ts.tend(t2).unwrap();
        assert_eq!(ts.stats().prepares, 1);
        assert_eq!(ts.stats().committed, 2);
    }

    #[test]
    fn prepare_then_abort_discards_writes() {
        let (mut ts, fid) = setup(LockLevel::Page);
        let t0 = ts.tbegin();
        ts.topen(t0, fid).unwrap();
        ts.twrite(t0, fid, 0, b"base").unwrap();
        ts.tend(t0).unwrap();
        prepared_write(&mut ts, fid, 5, b"gone");
        assert!(ts.resolve_prepared(5, false).unwrap());
        let t2 = ts.tbegin();
        ts.topen(t2, fid).unwrap();
        assert_eq!(ts.tread(t2, fid, 0, 4).unwrap(), b"base");
        ts.tend(t2).unwrap();
        // Unknown gtid: idempotent no-op.
        assert!(!ts.resolve_prepared(5, false).unwrap());
        assert!(!ts.resolve_prepared(999, true).unwrap());
    }

    #[test]
    fn in_doubt_blocks_tend_tabort_and_timeout() {
        let (mut ts, fid) = setup(LockLevel::Page);
        let t = prepared_write(&mut ts, fid, 9, b"held");
        assert_eq!(ts.tend(t), Err(TxnError::InDoubt(t)));
        assert_eq!(ts.tabort(t), Err(TxnError::InDoubt(t)));
        assert_eq!(ts.prepare_participant(t, 10), Err(TxnError::InDoubt(t)));
        // The deadlock timeout must never pick an in-doubt victim.
        let clock = ts.file_service_mut().clock();
        clock.advance(10 * TxnConfig::default().lt_us);
        assert!(ts.tick().is_empty());
        // The lock is genuinely still held: another writer blocks.
        let t2 = ts.tbegin();
        ts.topen(t2, fid).unwrap();
        assert!(matches!(
            ts.twrite(t2, fid, 0, b"nope"),
            Err(TxnError::WouldBlock { .. })
        ));
        ts.tabort(t2).unwrap();
        assert!(ts.resolve_prepared(9, true).unwrap());
    }

    #[test]
    fn prepared_state_survives_crash_and_commits() {
        let (mut ts, fid) = setup(LockLevel::Page);
        prepared_write(&mut ts, fid, 41, b"vote");
        ts.file_service_mut().simulate_crash();
        assert!(ts.recover().unwrap().is_empty());
        // Still in doubt, and still isolated: the re-acquired lock blocks
        // a new writer.
        assert_eq!(ts.prepared_gtids(), vec![41]);
        let t2 = ts.tbegin();
        ts.topen(t2, fid).unwrap();
        assert!(matches!(
            ts.twrite(t2, fid, 0, b"nope"),
            Err(TxnError::WouldBlock { .. })
        ));
        ts.tabort(t2).unwrap();
        // Late decision commits byte-identically.
        assert!(ts.resolve_prepared(41, true).unwrap());
        let t3 = ts.tbegin();
        ts.topen(t3, fid).unwrap();
        assert_eq!(ts.tread(t3, fid, 0, 4).unwrap(), b"vote");
        ts.tend(t3).unwrap();
    }

    #[test]
    fn prepared_state_survives_crash_and_aborts() {
        let (mut ts, fid) = setup(LockLevel::Page);
        let t0 = ts.tbegin();
        ts.topen(t0, fid).unwrap();
        ts.twrite(t0, fid, 0, b"keep").unwrap();
        ts.tend(t0).unwrap();
        prepared_write(&mut ts, fid, 42, b"lose");
        ts.file_service_mut().simulate_crash();
        ts.recover().unwrap();
        assert_eq!(ts.prepared_gtids(), vec![42]);
        assert!(ts.resolve_orphan(42, false).unwrap());
        assert_eq!(ts.stats().orphan_resolutions, 1);
        assert_eq!(ts.stats().presumed_aborts, 1);
        let t2 = ts.tbegin();
        ts.topen(t2, fid).unwrap();
        assert_eq!(ts.tread(t2, fid, 0, 4).unwrap(), b"keep");
        ts.tend(t2).unwrap();
        // A second crash+recover finds nothing in doubt (the `Aborted`
        // marker, flushed by resolve's next group flush, erased it) —
        // or, if the marker was still unflushed, the prepare re-surfaces
        // and the same presumed abort re-applies idempotently.
        ts.flush_log().unwrap();
        ts.file_service_mut().simulate_crash();
        ts.recover().unwrap();
        assert!(ts.prepared_gtids().is_empty());
    }

    #[test]
    fn resolve_after_crash_is_idempotent_when_marker_was_torn() {
        // Crash-after-apply-but-before-durable-marker: the decision is
        // re-delivered and must not double-apply or corrupt.
        let (mut ts, fid) = setup(LockLevel::Page);
        prepared_write(&mut ts, fid, 8, b"once");
        assert!(ts.resolve_prepared(8, true).unwrap());
        // The `Completed` marker is unforced — crash before any flush.
        ts.file_service_mut().simulate_crash();
        ts.recover().unwrap();
        // The prepare record is durable but the completion is gone: the
        // participant is in doubt again.
        assert_eq!(ts.prepared_gtids(), vec![8]);
        assert!(ts.resolve_prepared(8, true).unwrap());
        let t2 = ts.tbegin();
        ts.topen(t2, fid).unwrap();
        assert_eq!(ts.tread(t2, fid, 0, 4).unwrap(), b"once");
        ts.tend(t2).unwrap();
    }

    #[test]
    fn prepare_flush_accounting_batches() {
        let (mut ts, fa) = setup(LockLevel::Page);
        let fb = ts.tcreate(LockLevel::Page).unwrap();
        let t1 = ts.tbegin();
        ts.topen(t1, fa).unwrap();
        ts.twrite(t1, fa, 0, b"one").unwrap();
        let t2 = ts.tbegin();
        ts.topen(t2, fb).unwrap();
        ts.twrite(t2, fb, 0, b"two").unwrap();
        ts.prepare_participant(t1, 1).unwrap();
        ts.prepare_participant(t2, 2).unwrap();
        ts.flush_log().unwrap();
        assert_eq!(ts.stats().prepare_flushes, 1);
        assert_eq!(ts.stats().prepare_records_flushed, 2);
        assert!((ts.stats().records_per_prepare_flush() - 2.0).abs() < f64::EPSILON);
        ts.resolve_prepared(1, true).unwrap();
        ts.resolve_prepared(2, true).unwrap();
    }
}

#[cfg(test)]
mod cross_granularity_tests {
    use super::*;
    use rhodos_file_service::FileServiceConfig;
    use rhodos_simdisk::{DiskGeometry, LatencyModel, SimClock};

    fn service(cross: bool) -> TransactionService {
        let fs = FileService::single_disk(
            DiskGeometry::medium(),
            LatencyModel::instant(),
            SimClock::new(),
            FileServiceConfig::default(),
        )
        .unwrap();
        TransactionService::new(
            fs,
            TxnConfig {
                cross_granularity: cross,
                ..Default::default()
            },
        )
        .unwrap()
    }

    /// Two transactions lock the same file at different levels. Without
    /// the relaxation the conflict is invisible (the paper's assumed
    /// constraint must hold by convention); with it, it is detected.
    fn mixed_level_conflict(cross: bool) -> Result<(), TxnError> {
        let mut ts = service(cross);
        let fid = ts.tcreate(LockLevel::Page).unwrap();
        let t0 = ts.tbegin();
        ts.topen(t0, fid).unwrap();
        ts.twrite(t0, fid, 0, &vec![0u8; 8192]).unwrap();
        ts.tend(t0).unwrap();
        // T1 locks page 0 (page table).
        let t1 = ts.tbegin();
        ts.topen(t1, fid).unwrap();
        ts.twrite(t1, fid, 0, b"page-level hold").unwrap();
        // T2 arrives via file-level locking on the SAME file.
        ts.file_service_mut()
            .set_lock_level(fid, LockLevel::File)
            .unwrap();
        let t2 = ts.tbegin();
        ts.topen(t2, fid).unwrap();
        let r = ts.twrite(t2, fid, 0, b"file-level write");
        ts.tabort(t1).unwrap();
        let _ = ts.tabort(t2);
        r
    }

    #[test]
    fn relaxation_detects_mixed_level_conflicts() {
        assert!(matches!(
            mixed_level_conflict(true),
            Err(TxnError::WouldBlock { .. })
        ));
    }

    #[test]
    fn default_mode_trusts_the_papers_assumption() {
        // Without the relaxation the write is (unsafely but by the
        // paper's stated assumption) granted — the tables are disjoint.
        assert!(mixed_level_conflict(false).is_ok());
    }

    #[test]
    fn relaxed_mode_still_allows_disjoint_items() {
        let mut ts = service(true);
        let fid = ts.tcreate(LockLevel::Page).unwrap();
        let t0 = ts.tbegin();
        ts.topen(t0, fid).unwrap();
        ts.twrite(t0, fid, 0, &vec![0u8; 2 * 8192]).unwrap();
        ts.tend(t0).unwrap();
        let t1 = ts.tbegin();
        let t2 = ts.tbegin();
        ts.topen(t1, fid).unwrap();
        ts.topen(t2, fid).unwrap();
        ts.twrite(t1, fid, 0, b"p0").unwrap();
        // Different page: no conflict even with cross checks on.
        ts.twrite(t2, fid, 8192, b"p1").unwrap();
        ts.tend(t1).unwrap();
        ts.tend(t2).unwrap();
    }

    #[test]
    fn relaxed_mode_unblocks_after_commit() {
        let mut ts = service(true);
        let fid = ts.tcreate(LockLevel::Page).unwrap();
        let t0 = ts.tbegin();
        ts.topen(t0, fid).unwrap();
        ts.twrite(t0, fid, 0, &vec![1u8; 8192]).unwrap();
        // File-level reader must wait while the page write is pending...
        ts.file_service_mut()
            .set_lock_level(fid, LockLevel::File)
            .unwrap();
        let t2 = ts.tbegin();
        ts.topen(t2, fid).unwrap();
        assert!(ts.tread(t2, fid, 0, 4).is_err());
        // ...and proceed once it commits.
        ts.file_service_mut()
            .set_lock_level(fid, LockLevel::Page)
            .unwrap();
        ts.tend(t0).unwrap();
        ts.file_service_mut()
            .set_lock_level(fid, LockLevel::File)
            .unwrap();
        assert_eq!(ts.tread(t2, fid, 0, 4).unwrap(), vec![1u8; 4]);
        ts.tend(t2).unwrap();
    }
}

#[cfg(test)]
mod nested_tests {
    use super::*;
    use rhodos_file_service::FileServiceConfig;
    use rhodos_simdisk::{DiskGeometry, LatencyModel, SimClock};

    fn setup() -> (TransactionService, FileId) {
        let fs = FileService::single_disk(
            DiskGeometry::medium(),
            LatencyModel::instant(),
            SimClock::new(),
            FileServiceConfig::default(),
        )
        .unwrap();
        let mut ts = TransactionService::new(fs, TxnConfig::default()).unwrap();
        let fid = ts.tcreate(LockLevel::Page).unwrap();
        let t = ts.tbegin();
        ts.topen(t, fid).unwrap();
        ts.twrite(t, fid, 0, b"base state").unwrap();
        ts.tend(t).unwrap();
        (ts, fid)
    }

    #[test]
    fn child_commit_merges_into_parent() {
        let (mut ts, fid) = setup();
        let parent = ts.tbegin();
        ts.topen(parent, fid).unwrap();
        ts.twrite(parent, fid, 0, b"parent").unwrap();
        let child = ts.tbegin_nested(parent).unwrap();
        // Child sees parent's tentative state without topen.
        assert_eq!(ts.tread(child, fid, 0, 6).unwrap(), b"parent");
        ts.twrite(child, fid, 0, b"child!").unwrap();
        // Parent does not see it yet? (Flat model: parent read shows its
        // own page version, not the child's.)
        assert_eq!(ts.tread(parent, fid, 0, 6).unwrap(), b"parent");
        ts.tend(child).unwrap();
        // After the merge, the parent sees the child's update.
        assert_eq!(ts.tread(parent, fid, 0, 6).unwrap(), b"child!");
        ts.tend(parent).unwrap();
        // And after top-level commit it is durable.
        let t = ts.tbegin();
        ts.topen(t, fid).unwrap();
        assert_eq!(ts.tread(t, fid, 0, 6).unwrap(), b"child!");
        ts.tend(t).unwrap();
    }

    #[test]
    fn nested_commit_counted_exactly_once() {
        // Regression: the child's commit is tallied in `tend_nested` (via
        // the `Prepared::Merged` fast path) and the root's in `finish` —
        // the prepare/complete split must not double-count either.
        let (mut ts, fid) = setup();
        let before = ts.stats();
        let parent = ts.tbegin();
        ts.topen(parent, fid).unwrap();
        let child = ts.tbegin_nested(parent).unwrap();
        ts.twrite(child, fid, 0, b"once").unwrap();
        ts.tend(child).unwrap();
        ts.tend(parent).unwrap();
        let after = ts.stats();
        assert_eq!(after.begun - before.begun, 2, "root + child begun");
        assert_eq!(
            after.committed - before.committed,
            2,
            "child counted at merge, root at finish — each exactly once"
        );
        assert_eq!(after.aborted, before.aborted);
    }

    #[test]
    fn child_abort_discards_only_child_state() {
        let (mut ts, fid) = setup();
        let parent = ts.tbegin();
        ts.topen(parent, fid).unwrap();
        ts.twrite(parent, fid, 0, b"parent").unwrap();
        let child = ts.tbegin_nested(parent).unwrap();
        ts.twrite(child, fid, 0, b"doomed").unwrap();
        ts.tabort(child).unwrap();
        assert_eq!(ts.tread(parent, fid, 0, 6).unwrap(), b"parent");
        ts.tend(parent).unwrap();
        let t = ts.tbegin();
        ts.topen(t, fid).unwrap();
        assert_eq!(ts.tread(t, fid, 0, 6).unwrap(), b"parent");
        ts.tend(t).unwrap();
    }

    #[test]
    fn parent_abort_discards_committed_children_too() {
        let (mut ts, fid) = setup();
        let parent = ts.tbegin();
        ts.topen(parent, fid).unwrap();
        let child = ts.tbegin_nested(parent).unwrap();
        ts.twrite(child, fid, 0, b"merged").unwrap();
        ts.tend(child).unwrap(); // merged into parent
        ts.tabort(parent).unwrap(); // discards everything
        let t = ts.tbegin();
        ts.topen(t, fid).unwrap();
        assert_eq!(ts.tread(t, fid, 0, 10).unwrap(), b"base state");
        ts.tend(t).unwrap();
    }

    #[test]
    fn family_shares_locks_but_outsiders_conflict() {
        let (mut ts, fid) = setup();
        let parent = ts.tbegin();
        ts.topen(parent, fid).unwrap();
        ts.twrite(parent, fid, 0, b"held").unwrap();
        let child = ts.tbegin_nested(parent).unwrap();
        // Child writes the same page: no self-conflict.
        ts.twrite(child, fid, 0, b"fine").unwrap();
        // An outsider conflicts with the family's lock.
        let outsider = ts.tbegin();
        ts.topen(outsider, fid).unwrap();
        assert!(matches!(
            ts.twrite(outsider, fid, 0, b"nope"),
            Err(TxnError::WouldBlock { .. })
        ));
        ts.tend(child).unwrap();
        // Still held: locks release only at top-level commit (strict 2PL).
        assert!(ts.twrite(outsider, fid, 0, b"nope").is_err());
        ts.tend(parent).unwrap();
        ts.twrite(outsider, fid, 0, b"mine").unwrap();
        ts.tend(outsider).unwrap();
    }

    #[test]
    fn tend_with_active_children_is_refused() {
        let (mut ts, fid) = setup();
        let parent = ts.tbegin();
        ts.topen(parent, fid).unwrap();
        let child = ts.tbegin_nested(parent).unwrap();
        assert!(matches!(ts.tend(parent), Err(TxnError::ChildrenActive(_))));
        ts.tabort(child).unwrap();
        ts.tend(parent).unwrap();
    }

    #[test]
    fn parent_abort_aborts_running_children_recursively() {
        let (mut ts, fid) = setup();
        let parent = ts.tbegin();
        ts.topen(parent, fid).unwrap();
        let child = ts.tbegin_nested(parent).unwrap();
        let grandchild = ts.tbegin_nested(child).unwrap();
        ts.twrite(grandchild, fid, 0, b"deep").unwrap();
        ts.tabort(parent).unwrap();
        assert!(ts.active_transactions().is_empty());
        assert!(matches!(ts.tend(child), Err(TxnError::NotActive(_))));
        assert!(matches!(ts.tend(grandchild), Err(TxnError::NotActive(_))));
    }

    #[test]
    fn nested_file_creation_follows_the_family_outcome() {
        let (mut ts, _fid) = setup();
        let parent = ts.tbegin();
        let child = ts.tbegin_nested(parent).unwrap();
        let created = ts.tcreate_in(child, LockLevel::Page).unwrap();
        ts.twrite(child, created, 0, b"new file").unwrap();
        ts.tend(child).unwrap();
        assert!(ts.file_service_mut().exists(created));
        // Parent abort undoes the child's creation.
        ts.tabort(parent).unwrap();
        assert!(!ts.file_service_mut().exists(created));
    }

    #[test]
    fn grandchild_sees_chain_overlay() {
        let (mut ts, fid) = setup();
        let parent = ts.tbegin();
        ts.topen(parent, fid).unwrap();
        ts.twrite(parent, fid, 0, b"p----").unwrap();
        let child = ts.tbegin_nested(parent).unwrap();
        ts.twrite(child, fid, 1, b"c").unwrap();
        let grandchild = ts.tbegin_nested(child).unwrap();
        ts.twrite(grandchild, fid, 2, b"g").unwrap();
        assert_eq!(ts.tread(grandchild, fid, 0, 5).unwrap(), b"pcg--");
        ts.tend(grandchild).unwrap();
        ts.tend(child).unwrap();
        assert_eq!(ts.tread(parent, fid, 0, 5).unwrap(), b"pcg--");
        ts.tend(parent).unwrap();
    }
}
