//! A thread-safe transaction runner over the shared service.
//!
//! The deterministic core ([`TransactionService`]) returns
//! [`TxnError::WouldBlock`] instead of parking a thread, which is ideal
//! for reproducible experiments but leaves real multi-threaded clients —
//! the paper's workstations all banging on one file server — to someone
//! else. This module is that someone: [`SharedTransactionService`] wraps
//! the service in a lock and provides [`run_txn`], a whole-transaction
//! retry loop. The service lock is taken **per operation**, not per
//! transaction, so concurrent transactions genuinely interleave: they
//! conflict on data items, queue, deadlock and get broken by the §6.4
//! timeouts, exactly like the paper's concurrent clients.
//!
//! [`run_txn`]: SharedTransactionService::run_txn

use crate::error::TxnError;
use crate::service::{GroupCommit, Prepared, TransactionService, TxnId};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};

/// Shared state of the group-commit pipeline.
#[derive(Debug, Default)]
struct PipeState {
    /// Transactions waiting to be committed by the current leader.
    queue: Vec<TxnId>,
    /// Whether some thread is currently acting as the leader.
    leader_active: bool,
    /// Commit outcomes published by the leader, keyed by transaction.
    outcomes: HashMap<TxnId, Result<(), TxnError>>,
}

/// The leader/follower group-commit pipeline (§6.6: "several intention
/// lists may be written to the log in a single disk operation").
///
/// Committers enqueue their transaction; the first arrival becomes the
/// *leader*, drains the queue under the service lock, prepares every
/// commit (appending each intentions-list record to the in-memory log
/// tail), forces the log **once**, applies all the batched intentions,
/// and finally publishes each transaction's outcome and wakes the
/// followers, which were parked on the condvar the whole time.
#[derive(Debug, Default)]
struct CommitPipeline {
    state: StdMutex<PipeState>,
    cv: Condvar,
}

impl CommitPipeline {
    /// Locks the pipeline state; a panicking leader must not poison
    /// commit outcomes for everyone else.
    fn state(&self) -> StdMutexGuard<'_, PipeState> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }
}

/// A cloneable, thread-safe handle to one transaction service.
///
/// # Example
///
/// ```
/// use rhodos_file_service::{FileService, FileServiceConfig, LockLevel};
/// use rhodos_simdisk::{DiskGeometry, LatencyModel, SimClock};
/// use rhodos_txn::{SharedTransactionService, TransactionService, TxnConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let fs = FileService::single_disk(
///     DiskGeometry::medium(), LatencyModel::instant(), SimClock::new(),
///     FileServiceConfig::default(),
/// )?;
/// let shared = SharedTransactionService::new(TransactionService::new(fs, TxnConfig::default())?);
/// let fid = shared.lock().tcreate(LockLevel::Page)?;
/// shared.run_txn(|s, t| {
///     s.lock().topen(t, fid)?;
///     s.lock().twrite(t, fid, 0, b"thread safe")
/// })?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SharedTransactionService {
    inner: Arc<Mutex<TransactionService>>,
    pipeline: Arc<CommitPipeline>,
    /// Cached `config().group_commit` — fixed at service construction.
    mode: GroupCommit,
}

impl SharedTransactionService {
    /// Wraps a service for shared use.
    pub fn new(service: TransactionService) -> Self {
        let mode = service.config().group_commit;
        Self {
            inner: Arc::new(Mutex::new(service)),
            pipeline: Arc::new(CommitPipeline::default()),
            mode,
        }
    }

    /// Wraps an existing shared handle (e.g. the one agents hold).
    ///
    /// Note: handles built with `from_arc` over the same service get their
    /// own pipeline; commits still serialise on the service lock, they just
    /// don't batch *across* independently-constructed handles. Clone one
    /// handle instead to share its pipeline.
    pub fn from_arc(inner: Arc<Mutex<TransactionService>>) -> Self {
        let mode = inner.lock().config().group_commit;
        Self {
            inner,
            pipeline: Arc::new(CommitPipeline::default()),
            mode,
        }
    }

    /// Locks the underlying service for one operation (or for
    /// non-transactional administration: `tcreate`, statistics, recovery).
    /// Do **not** hold the guard across blocking work.
    pub fn lock(&self) -> parking_lot::MutexGuard<'_, TransactionService> {
        self.inner.lock()
    }

    /// The shared handle, for interoperating with the agents.
    pub fn as_arc(&self) -> Arc<Mutex<TransactionService>> {
        self.inner.clone()
    }

    /// Runs `body` as one transaction, retrying the *whole transaction*
    /// when it conflicts. The body receives this handle and the fresh
    /// transaction id and locks the service per operation, so other
    /// threads' transactions interleave with it. On
    /// [`TxnError::WouldBlock`] the attempt is aborted, the virtual clock
    /// advances (letting the §6.4 timeout machinery break deadlocks),
    /// waiters are promoted via `tick`, and the body re-executes under a
    /// fresh transaction. Commits on success.
    ///
    /// The body must be idempotent up to its transaction — exactly the
    /// property transactions exist to give it.
    ///
    /// # Errors
    ///
    /// Propagates non-conflict failures from the body or commit;
    /// [`TxnError::Aborted`] after 10 000 fruitless attempts
    /// (pathological starvation).
    pub fn run_txn<R>(
        &self,
        body: impl Fn(&Self, TxnId) -> Result<R, TxnError>,
    ) -> Result<R, TxnError> {
        const MAX_ATTEMPTS: u32 = 10_000;
        for attempt in 0..MAX_ATTEMPTS {
            let t = self.inner.lock().tbegin();
            match body(self, t) {
                Ok(value) => {
                    let commit = self.commit(t);
                    match commit {
                        Ok(()) => return Ok(value),
                        Err(TxnError::WouldBlock { .. }) | Err(TxnError::NotActive(_)) => {
                            self.backoff(t, attempt);
                        }
                        Err(e) => {
                            let _ = self.inner.lock().tabort(t);
                            return Err(e);
                        }
                    }
                }
                Err(TxnError::WouldBlock { .. })
                | Err(TxnError::Aborted(_))
                | Err(TxnError::NotActive(_)) => {
                    // NotActive: a timeout abort from another thread's tick
                    // already killed us — just retry.
                    self.backoff(t, attempt);
                }
                Err(e) => {
                    let _ = self.inner.lock().tabort(t);
                    return Err(e);
                }
            }
        }
        Err(TxnError::Aborted(TxnId(0)))
    }

    /// Commits transaction `t` through the group-commit pipeline.
    ///
    /// Under [`GroupCommit::Auto`] concurrent committers share log
    /// flushes: whichever thread finds the pipeline idle becomes the
    /// leader and commits everyone queued behind it with a single
    /// `flush_file`; the rest park on a condvar until their outcome is
    /// published. Under [`GroupCommit::Never`] this is exactly
    /// `self.lock().tend(t)` — the serial ablation.
    ///
    /// # Errors
    ///
    /// Whatever the underlying commit reports for `t` — conflicts
    /// ([`TxnError::WouldBlock`]), timeouts, I/O failures. Each queued
    /// transaction gets its own verdict; one aborting does not poison
    /// its batch-mates.
    pub fn commit(&self, t: TxnId) -> Result<(), TxnError> {
        if self.mode == GroupCommit::Never {
            return self.inner.lock().tend(t);
        }
        {
            let mut st = self.pipeline.state();
            st.queue.push(t);
            if st.leader_active {
                // Follower: the leader will commit us and publish.
                loop {
                    if let Some(res) = st.outcomes.remove(&t) {
                        return res;
                    }
                    st = self.pipeline.cv.wait(st).unwrap_or_else(|p| p.into_inner());
                }
            }
            st.leader_active = true;
        }
        self.lead_commits();
        self.pipeline
            .state()
            .outcomes
            .remove(&t)
            .expect("leader drained the queue, so its own outcome is published")
    }

    /// Leader loop: drain the queue, commit the batch with one log
    /// flush, publish outcomes, repeat until the queue stays empty.
    fn lead_commits(&self) {
        loop {
            // Give concurrently-arriving committers a scheduling slice to
            // pile into the queue before we seal the batch.
            std::thread::yield_now();
            let batch: Vec<TxnId> = {
                let mut st = self.pipeline.state();
                if st.queue.is_empty() {
                    st.leader_active = false;
                    self.pipeline.cv.notify_all();
                    return;
                }
                std::mem::take(&mut st.queue)
            };
            let mut results: Vec<(TxnId, Result<(), TxnError>)> = Vec::with_capacity(batch.len());
            {
                let mut svc = self.inner.lock();
                let mut pending = Vec::new();
                for &t in &batch {
                    match svc.prepare_commit(t) {
                        Ok(Prepared::Merged) => results.push((t, Ok(()))),
                        Ok(Prepared::Pending(p)) => pending.push(p),
                        Err(e) => results.push((t, Err(e))),
                    }
                }
                // One force covers every record the batch appended.
                match svc.flush_log() {
                    Ok(()) => {
                        for p in pending {
                            let t = p.txn();
                            results.push((t, svc.complete_commit(p)));
                        }
                        // §6.6 log compaction: the batch may have left the
                        // log over threshold with no transaction active.
                        if let Err(e) = svc.maybe_compact_log() {
                            if let Some((_, first)) = results.iter_mut().find(|(_, r)| r.is_ok()) {
                                *first = Err(e);
                            }
                        }
                    }
                    Err(e) => {
                        for p in pending {
                            results.push((p.txn(), Err(e.clone())));
                        }
                    }
                }
            }
            let mut st = self.pipeline.state();
            for (t, r) in results {
                st.outcomes.insert(t, r);
            }
            self.pipeline.cv.notify_all();
        }
    }

    /// Abandons attempt `t`, nudges virtual time forward so a genuinely
    /// stuck holder's lease eventually expires, drives the timeouts and
    /// gives other threads real time to make progress. The nudge is a
    /// small fraction of LT: healthy holders finish many scheduling
    /// slices before their lease can be broken, while a deadlocked pair
    /// is still collapsed within ~50 backoffs.
    fn backoff(&self, t: TxnId, attempt: u32) {
        let mut ts = self.inner.lock();
        if ts.active_transactions().contains(&t) {
            let _ = ts.tabort(t);
        }
        let lt = ts.config().lt_us;
        let clock = ts.file_service_mut().clock();
        clock.advance(lt / 50 + 1);
        let _ = ts.tick();
        drop(ts);
        // Truncated exponential backoff with deterministic per-transaction
        // jitter. A constant sleep lets contending threads retry in
        // lockstep and re-create the same conflict forever — on a
        // single-CPU host that livelocks a deadlock-heavy workload all the
        // way to the attempt cap. The transaction id is fresh each
        // attempt, so hashing it desynchronises the herd without needing
        // a randomness source.
        let base = 50u64 << attempt.min(6);
        let jitter = t.0.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        let sleep_us = base + jitter % (base / 2 + 1);
        std::thread::sleep(std::time::Duration::from_micros(sleep_us));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{TxnConfig, TxnStats};
    use rhodos_file_service::{FileService, FileServiceConfig, LockLevel};
    use rhodos_simdisk::{DiskGeometry, LatencyModel, SimClock};

    fn shared(level: LockLevel) -> (SharedTransactionService, rhodos_file_service::FileId) {
        let fs = FileService::single_disk(
            DiskGeometry::medium(),
            LatencyModel::instant(),
            SimClock::new(),
            FileServiceConfig::default(),
        )
        .unwrap();
        let ts = TransactionService::new(
            fs,
            TxnConfig {
                lt_us: 5_000,
                max_renewals: 0,
                ..Default::default()
            },
        )
        .unwrap();
        let s = SharedTransactionService::new(ts);
        let fid = s.lock().tcreate(level).unwrap();
        s.run_txn(|s, t| {
            s.lock().topen(t, fid)?;
            s.lock().twrite(t, fid, 0, &0u64.to_le_bytes())
        })
        .unwrap();
        (s, fid)
    }

    #[test]
    fn threads_increment_without_lost_updates() {
        for level in [LockLevel::Record, LockLevel::Page, LockLevel::File] {
            let (s, fid) = shared(level);
            const THREADS: usize = 8;
            const PER_THREAD: u64 = 25;
            std::thread::scope(|scope| {
                for _ in 0..THREADS {
                    let s = s.clone();
                    scope.spawn(move || {
                        for _ in 0..PER_THREAD {
                            s.run_txn(|s, t| {
                                s.lock().topen(t, fid)?;
                                let raw = s.lock().tread_for_update(t, fid, 0, 8)?;
                                let v = u64::from_le_bytes(raw.try_into().expect("8 bytes"));
                                s.lock().twrite(t, fid, 0, &(v + 1).to_le_bytes())
                            })
                            .expect("transaction eventually succeeds");
                        }
                    });
                }
            });
            let total = s
                .run_txn(|s, t| {
                    s.lock().topen(t, fid)?;
                    s.lock().tread(t, fid, 0, 8)
                })
                .unwrap();
            assert_eq!(
                u64::from_le_bytes(total.try_into().unwrap()),
                (THREADS as u64) * PER_THREAD,
                "{level:?}: lost updates under real threads"
            );
        }
    }

    #[test]
    fn interleaving_produces_and_survives_real_conflicts() {
        // Two-page swaps in opposite orders from many threads: a classic
        // deadlock recipe. The runner + timeouts must keep everyone live,
        // and at least some conflicts must actually occur (the lock is
        // per-operation, so transactions interleave).
        let (s, fid) = shared(LockLevel::Page);
        s.run_txn(|s, t| {
            s.lock().topen(t, fid)?;
            s.lock().twrite(t, fid, 0, &vec![0u8; 2 * 8192])
        })
        .unwrap();
        std::thread::scope(|scope| {
            for w in 0..12usize {
                let s = s.clone();
                scope.spawn(move || {
                    for i in 0..20usize {
                        let (first, second) = if (w + i) % 2 == 0 {
                            (0u64, 1u64)
                        } else {
                            (1, 0)
                        };
                        s.run_txn(|s, t| {
                            s.lock().topen(t, fid)?;
                            s.lock().twrite(t, fid, first * 8192, &[w as u8; 8])?;
                            // Hold the first page across a scheduling point
                            // so other transactions interleave.
                            std::thread::yield_now();
                            s.lock().twrite(t, fid, second * 8192, &[w as u8; 8])
                        })
                        .expect("stays live under deadlock pressure");
                    }
                });
            }
        });
        let stats = s.lock().stats();
        assert_eq!(stats.begun - 2, stats.committed - 2 + stats.aborted);
        assert!(
            stats.would_blocks > 0,
            "per-operation locking must produce real interleaving conflicts"
        );
    }

    fn shared_mode(mode: GroupCommit) -> SharedTransactionService {
        let fs = FileService::single_disk(
            DiskGeometry::medium(),
            LatencyModel::instant(),
            SimClock::new(),
            FileServiceConfig::default(),
        )
        .unwrap();
        let ts = TransactionService::new(
            fs,
            TxnConfig {
                lt_us: 5_000,
                max_renewals: 0,
                group_commit: mode,
                ..Default::default()
            },
        )
        .unwrap();
        SharedTransactionService::new(ts)
    }

    /// Disjoint workload (one file per thread) so every commit succeeds
    /// first try; returns the service for stats inspection.
    fn disjoint_commits(mode: GroupCommit, threads: usize, per_thread: u64) -> TxnStats {
        let s = shared_mode(mode);
        let fids: Vec<_> = (0..threads)
            .map(|_| s.lock().tcreate(LockLevel::Page).unwrap())
            .collect();
        std::thread::scope(|scope| {
            for fid in fids.clone() {
                let s = s.clone();
                scope.spawn(move || {
                    for i in 0..per_thread {
                        s.run_txn(|s, t| {
                            s.lock().topen(t, fid)?;
                            s.lock().twrite(t, fid, 0, &i.to_le_bytes())
                        })
                        .expect("disjoint transactions commit");
                    }
                });
            }
        });
        for (w, fid) in fids.iter().enumerate() {
            let raw = s
                .run_txn(|s, t| {
                    s.lock().topen(t, *fid)?;
                    s.lock().tread(t, *fid, 0, 8)
                })
                .unwrap();
            assert_eq!(
                u64::from_le_bytes(raw.try_into().unwrap()),
                per_thread - 1,
                "thread {w} lost its final write"
            );
        }
        let guard = s.lock();
        guard.stats()
    }

    #[test]
    fn group_commit_amortises_log_flushes() {
        let stats = disjoint_commits(GroupCommit::Auto, 8, 25);
        assert!(stats.committed >= 8 * 25);
        assert!(
            stats.log_flushes < stats.committed,
            "leader must batch: {} flushes for {} commits",
            stats.log_flushes,
            stats.committed
        );
        assert!(stats.group_commits > 0, "no flush ever covered a batch");
        assert!(stats.records_per_flush_hwm >= 2);
    }

    #[test]
    fn never_mode_flushes_per_commit() {
        let stats = disjoint_commits(GroupCommit::Never, 4, 10);
        assert!(stats.committed >= 4 * 10);
        assert!(
            stats.log_flushes >= stats.committed,
            "the ablation must force the log for every commit: {} flushes, {} commits",
            stats.log_flushes,
            stats.committed
        );
        assert_eq!(stats.group_commits, 0, "Never must not batch");
    }

    #[test]
    fn group_commit_under_conflicts_stays_correct() {
        // Same contended counter as threads_increment_without_lost_updates,
        // but run through the pipeline's leader/follower path with aborts
        // and retries mixed into the batches.
        let (s, fid) = shared(LockLevel::Page);
        const THREADS: usize = 6;
        const PER_THREAD: u64 = 15;
        std::thread::scope(|scope| {
            for _ in 0..THREADS {
                let s = s.clone();
                scope.spawn(move || {
                    for _ in 0..PER_THREAD {
                        s.run_txn(|s, t| {
                            s.lock().topen(t, fid)?;
                            let raw = s.lock().tread_for_update(t, fid, 0, 8)?;
                            let v = u64::from_le_bytes(raw.try_into().expect("8 bytes"));
                            s.lock().twrite(t, fid, 0, &(v + 1).to_le_bytes())
                        })
                        .expect("transaction eventually succeeds");
                    }
                });
            }
        });
        let total = s
            .run_txn(|s, t| {
                s.lock().topen(t, fid)?;
                s.lock().tread(t, fid, 0, 8)
            })
            .unwrap();
        assert_eq!(
            u64::from_le_bytes(total.try_into().unwrap()),
            (THREADS as u64) * PER_THREAD
        );
        let stats = s.lock().stats();
        assert_eq!(stats.begun, stats.committed + stats.aborted);
    }

    #[test]
    fn handle_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SharedTransactionService>();
    }

    #[test]
    fn non_conflict_errors_propagate() {
        let (s, _) = shared(LockLevel::Page);
        let missing = rhodos_file_service::FileId(999);
        let err = s.run_txn(|s, t| s.lock().topen(t, missing)).unwrap_err();
        assert!(matches!(err, TxnError::File(_)), "{err}");
    }
}
