//! A thread-safe transaction runner over the shared service.
//!
//! The deterministic core ([`TransactionService`]) returns
//! [`TxnError::WouldBlock`] instead of parking a thread, which is ideal
//! for reproducible experiments but leaves real multi-threaded clients —
//! the paper's workstations all banging on one file server — to someone
//! else. This module is that someone: [`SharedTransactionService`] wraps
//! the service in a lock and provides [`run_txn`], a whole-transaction
//! retry loop. The service lock is taken **per operation**, not per
//! transaction, so concurrent transactions genuinely interleave: they
//! conflict on data items, queue, deadlock and get broken by the §6.4
//! timeouts, exactly like the paper's concurrent clients.
//!
//! [`run_txn`]: SharedTransactionService::run_txn

use crate::error::TxnError;
use crate::lock::LockMode;
use crate::service::{FastReadCheck, GroupCommit, Prepared, TransactionService, TxnId};
use crate::table::{LockOutcome, StripedLockTable};
use parking_lot::Mutex;
use rhodos_disk_service::BLOCK_SIZE;
use rhodos_file_service::{FileId, ShardedBlockCache};
use rhodos_simdisk::SimClock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};

/// One request queued on the group-commit pipeline: a local commit, or
/// the prepare half of a cross-shard commit (whose durable `Prepared`
/// vote rides the same shared log force as everyone else's records).
#[derive(Debug, Clone, Copy)]
enum PipeReq {
    Commit(TxnId),
    Prepare(TxnId, u64),
}

impl PipeReq {
    fn txn(self) -> TxnId {
        match self {
            PipeReq::Commit(t) | PipeReq::Prepare(t, _) => t,
        }
    }
}

/// Shared state of the group-commit pipeline.
#[derive(Debug, Default)]
struct PipeState {
    /// Requests waiting to be serviced by the current leader.
    queue: Vec<PipeReq>,
    /// Whether some thread is currently acting as the leader.
    leader_active: bool,
    /// Outcomes published by the leader, keyed by transaction.
    outcomes: HashMap<TxnId, Result<(), TxnError>>,
}

/// The leader/follower group-commit pipeline (§6.6: "several intention
/// lists may be written to the log in a single disk operation").
///
/// Committers enqueue their transaction; the first arrival becomes the
/// *leader*, drains the queue under the service lock, prepares every
/// commit (appending each intentions-list record to the in-memory log
/// tail), forces the log **once**, applies all the batched intentions,
/// and finally publishes each transaction's outcome and wakes the
/// followers, which were parked on the condvar the whole time.
#[derive(Debug, Default)]
struct CommitPipeline {
    state: StdMutex<PipeState>,
    cv: Condvar,
}

impl CommitPipeline {
    /// Locks the pipeline state; a panicking leader must not poison
    /// commit outcomes for everyone else.
    fn state(&self) -> StdMutexGuard<'_, PipeState> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }
}

/// Counters of the shared-service read fast path (see
/// [`SharedTransactionService::tread_shared`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FastPathStats {
    /// Reads served entirely from the sharded block pool, never holding
    /// the whole-service lock across the data access.
    pub full_hits: u64,
    /// Reads that fell back to the classic service-locked path (overlay
    /// present, cross-granularity mode, cache miss, or state change
    /// between validate and recheck).
    pub fallbacks: u64,
    /// Reads rejected with `WouldBlock` by a shard lock conflict.
    pub conflicts: u64,
}

#[derive(Debug, Default)]
struct FastPathCounters {
    full_hits: AtomicU64,
    fallbacks: AtomicU64,
    conflicts: AtomicU64,
}

/// The lock-free half of the read path: handles to the striped lock
/// tables and the sharded block pool, valid for the service's lifetime
/// (both are reset in place on recovery, never replaced).
#[derive(Debug)]
struct FastPath {
    tables: [Arc<StripedLockTable>; 3],
    cache: Arc<ShardedBlockCache>,
    clock: SimClock,
    counters: FastPathCounters,
}

impl FastPath {
    /// Builds the fast path if the configuration warrants it: at least
    /// one layer actually sharded (the `ShardConfig::ablation()` arm
    /// keeps the classic path exclusively, reproducing pre-E20 behaviour
    /// exactly) and server-side caching enabled.
    fn build(service: &mut TransactionService) -> Option<Arc<FastPath>> {
        let lock_shards = service.config().lock_shards;
        let cache_shards = service.file_service().config().cache_shards;
        if lock_shards <= 1 && cache_shards <= 1 {
            return None;
        }
        let cache = service.file_service_mut().cache_handle()?;
        Some(Arc::new(FastPath {
            tables: service.lock_tables(),
            cache,
            clock: service.file_service().clock(),
            counters: FastPathCounters::default(),
        }))
    }
}

/// A cloneable, thread-safe handle to one transaction service.
///
/// # Example
///
/// ```
/// use rhodos_file_service::{FileService, FileServiceConfig, LockLevel};
/// use rhodos_simdisk::{DiskGeometry, LatencyModel, SimClock};
/// use rhodos_txn::{SharedTransactionService, TransactionService, TxnConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let fs = FileService::single_disk(
///     DiskGeometry::medium(), LatencyModel::instant(), SimClock::new(),
///     FileServiceConfig::default(),
/// )?;
/// let shared = SharedTransactionService::new(TransactionService::new(fs, TxnConfig::default())?);
/// let fid = shared.lock().tcreate(LockLevel::Page)?;
/// shared.run_txn(|s, t| {
///     s.lock().topen(t, fid)?;
///     s.lock().twrite(t, fid, 0, b"thread safe")
/// })?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SharedTransactionService {
    inner: Arc<Mutex<TransactionService>>,
    pipeline: Arc<CommitPipeline>,
    /// Cached `config().group_commit` — fixed at service construction.
    mode: GroupCommit,
    /// Lock-free read fast path; `None` when the ablation configuration
    /// (`lock_shards = cache_shards = 1`) or a cacheless service makes it
    /// pointless.
    fast: Option<Arc<FastPath>>,
}

impl SharedTransactionService {
    /// Wraps a service for shared use.
    pub fn new(mut service: TransactionService) -> Self {
        let mode = service.config().group_commit;
        let fast = FastPath::build(&mut service);
        Self {
            inner: Arc::new(Mutex::new(service)),
            pipeline: Arc::new(CommitPipeline::default()),
            mode,
            fast,
        }
    }

    /// Wraps an existing shared handle (e.g. the one agents hold).
    ///
    /// Note: handles built with `from_arc` over the same service get their
    /// own pipeline; commits still serialise on the service lock, they just
    /// don't batch *across* independently-constructed handles. Clone one
    /// handle instead to share its pipeline.
    pub fn from_arc(inner: Arc<Mutex<TransactionService>>) -> Self {
        let (mode, fast) = {
            let mut svc = inner.lock();
            (svc.config().group_commit, FastPath::build(&mut svc))
        };
        Self {
            inner,
            pipeline: Arc::new(CommitPipeline::default()),
            mode,
            fast,
        }
    }

    /// Locks the underlying service for one operation (or for
    /// non-transactional administration: `tcreate`, statistics, recovery).
    /// Do **not** hold the guard across blocking work.
    pub fn lock(&self) -> parking_lot::MutexGuard<'_, TransactionService> {
        self.inner.lock()
    }

    /// The shared handle, for interoperating with the agents.
    pub fn as_arc(&self) -> Arc<Mutex<TransactionService>> {
        self.inner.clone()
    }

    /// Whether the lock-free read fast path is active (at least one layer
    /// sharded and server-side caching enabled).
    pub fn fast_path_enabled(&self) -> bool {
        self.fast.is_some()
    }

    /// Snapshot of the fast-path counters (all zero when the fast path is
    /// disabled).
    pub fn fast_stats(&self) -> FastPathStats {
        match &self.fast {
            None => FastPathStats::default(),
            Some(f) => FastPathStats {
                full_hits: f.counters.full_hits.load(Ordering::Relaxed),
                fallbacks: f.counters.fallbacks.load(Ordering::Relaxed),
                conflicts: f.counters.conflicts.load(Ordering::Relaxed),
            },
        }
    }

    /// `tread` that shrinks the global critical section: when the read
    /// needs no tentative overlay, the service lock is held only for two
    /// brief validation steps — the read-only locks are acquired on the
    /// striped lock-table shards and the data served from the sharded
    /// block pool, so concurrent readers of unrelated items touch no
    /// common lock word (E20). Any condition the fast path cannot serve
    /// (cross-granularity mode, tentative state, a cache miss, a state
    /// change between validate and recheck) falls back to the classic
    /// service-locked [`TransactionService::tread`], which is always
    /// correct; with the fast path disabled this *is* the classic path.
    ///
    /// Coherence: a committed overlapping write requires an `Iwrite` on
    /// an item of the same granularity table, which the `ReadOnly` shard
    /// locks held here exclude; tentative (uncommitted) data never enters
    /// the block pool; and the pool is invalidated under `Iwrite` cover
    /// (delete, descriptor replacement) or with the file closed.
    ///
    /// # Errors
    ///
    /// As [`TransactionService::tread`]. Shard-lock conflicts surface as
    /// [`TxnError::WouldBlock`] (counted in [`FastPathStats::conflicts`],
    /// not in `TxnStats::would_blocks`); the queued waiter record is
    /// cleaned up by the retry loop's abort, exactly like a classic
    /// queued request.
    pub fn tread_shared(
        &self,
        t: TxnId,
        fid: FileId,
        offset: u64,
        len: usize,
    ) -> Result<Vec<u8>, TxnError> {
        let Some(fast) = &self.fast else {
            return self.inner.lock().tread(t, fid, offset, len);
        };
        // Step 1 — validate and plan under a brief service lock.
        let meta = {
            let mut svc = self.inner.lock();
            match svc.fast_read_meta(t, fid, offset, len)? {
                Some(meta) => meta,
                None => {
                    fast.counters.fallbacks.fetch_add(1, Ordering::Relaxed);
                    return svc.tread(t, fid, offset, len);
                }
            }
        };
        // Step 2 — acquire read-only locks on the striped shards, without
        // the service lock. Each item touches exactly one shard mutex.
        let table = &fast.tables[meta.table];
        let now = fast.clock.now_us();
        for item in &meta.items {
            match table.set_lock(meta.pid, meta.owner, *item, LockMode::ReadOnly, now) {
                LockOutcome::Granted => {}
                LockOutcome::Queued => {
                    fast.counters.conflicts.fetch_add(1, Ordering::Relaxed);
                    return Err(TxnError::WouldBlock {
                        txn: t,
                        item: *item,
                    });
                }
            }
        }
        // Step 3 — recheck under a brief service lock: a writer may have
        // committed (or this transaction been timeout-aborted) between
        // steps 1 and 2; the locks held since step 2 freeze things now.
        let size = {
            let mut svc = self.inner.lock();
            match svc.fast_read_recheck(t, TxnId(meta.owner), fid) {
                FastReadCheck::Proceed { size } => size,
                FastReadCheck::UseClassic => {
                    fast.counters.fallbacks.fetch_add(1, Ordering::Relaxed);
                    return svc.tread(t, fid, offset, len);
                }
                FastReadCheck::Dead { root_active } => {
                    drop(svc);
                    if !root_active {
                        // The family is gone; its `finish` ran before our
                        // step-2 acquisitions, so release the strays we
                        // registered in the dead root's name. (Ids are
                        // never reused, so this cannot hit a live txn.)
                        for table in &fast.tables {
                            table.release_all(meta.owner, fast.clock.now_us());
                        }
                    }
                    return Err(TxnError::NotActive(t));
                }
            }
        };
        if offset > size {
            return Err(TxnError::BeyondEof { offset, size });
        }
        let len = (len as u64).min(size - offset) as usize;
        if len == 0 {
            return Ok(Vec::new());
        }
        // Step 4 — serve from the sharded pool. Any miss falls back to
        // the classic path (re-acquiring the same locks is idempotent).
        let bs = BLOCK_SIZE as u64;
        let first = offset / bs;
        let last = (offset + len as u64 - 1) / bs;
        let mut out = Vec::with_capacity(len);
        for idx in first..=last {
            let Some(block) = fast.cache.get(&(fid, idx)) else {
                fast.counters.fallbacks.fetch_add(1, Ordering::Relaxed);
                return self.inner.lock().tread(t, fid, offset, len);
            };
            let block_start = idx * bs;
            let lo = offset.max(block_start) - block_start;
            let hi = (offset + len as u64).min(block_start + bs) - block_start;
            out.extend_from_slice(&block[lo as usize..hi as usize]);
        }
        fast.counters.full_hits.fetch_add(1, Ordering::Relaxed);
        Ok(out)
    }

    /// Runs `body` as one transaction, retrying the *whole transaction*
    /// when it conflicts. The body receives this handle and the fresh
    /// transaction id and locks the service per operation, so other
    /// threads' transactions interleave with it. On
    /// [`TxnError::WouldBlock`] the attempt is aborted, the virtual clock
    /// advances (letting the §6.4 timeout machinery break deadlocks),
    /// waiters are promoted via `tick`, and the body re-executes under a
    /// fresh transaction. Commits on success.
    ///
    /// The body must be idempotent up to its transaction — exactly the
    /// property transactions exist to give it.
    ///
    /// # Errors
    ///
    /// Propagates non-conflict failures from the body or commit;
    /// [`TxnError::Aborted`] after 10 000 fruitless attempts
    /// (pathological starvation).
    pub fn run_txn<R>(
        &self,
        body: impl Fn(&Self, TxnId) -> Result<R, TxnError>,
    ) -> Result<R, TxnError> {
        const MAX_ATTEMPTS: u32 = 10_000;
        for attempt in 0..MAX_ATTEMPTS {
            let t = self.inner.lock().tbegin();
            match body(self, t) {
                Ok(value) => {
                    let commit = self.commit(t);
                    match commit {
                        Ok(()) => return Ok(value),
                        Err(TxnError::WouldBlock { .. }) | Err(TxnError::NotActive(_)) => {
                            self.backoff(t, attempt);
                        }
                        Err(e) => {
                            let _ = self.inner.lock().tabort(t);
                            return Err(e);
                        }
                    }
                }
                Err(TxnError::WouldBlock { .. })
                | Err(TxnError::Aborted(_))
                | Err(TxnError::NotActive(_)) => {
                    // NotActive: a timeout abort from another thread's tick
                    // already killed us — just retry.
                    self.backoff(t, attempt);
                }
                Err(e) => {
                    let _ = self.inner.lock().tabort(t);
                    return Err(e);
                }
            }
        }
        Err(TxnError::Aborted(TxnId(0)))
    }

    /// Commits transaction `t` through the group-commit pipeline.
    ///
    /// Under [`GroupCommit::Auto`] concurrent committers share log
    /// flushes: whichever thread finds the pipeline idle becomes the
    /// leader and commits everyone queued behind it with a single
    /// `flush_file`; the rest park on a condvar until their outcome is
    /// published. Under [`GroupCommit::Never`] this is exactly
    /// `self.lock().tend(t)` — the serial ablation.
    ///
    /// # Errors
    ///
    /// Whatever the underlying commit reports for `t` — conflicts
    /// ([`TxnError::WouldBlock`]), timeouts, I/O failures. Each queued
    /// transaction gets its own verdict; one aborting does not poison
    /// its batch-mates.
    pub fn commit(&self, t: TxnId) -> Result<(), TxnError> {
        if self.mode == GroupCommit::Never {
            return self.inner.lock().tend(t);
        }
        self.submit(PipeReq::Commit(t))
    }

    /// Prepares `t` as a cross-shard 2PC participant under global id
    /// `gtid`, riding the group-commit pipeline: the durable `Prepared`
    /// vote shares the leader's single log force with every other record
    /// in the batch, so cross-shard prepares amortise exactly like local
    /// commits. Returns once the vote is durable — only then may it be
    /// reported to the coordinator. Under [`GroupCommit::Never`] the
    /// prepare forces the log immediately (the serial ablation).
    ///
    /// # Errors
    ///
    /// As [`TransactionService::prepare_participant`], plus log-flush
    /// failures.
    pub fn prepare_cross_shard(&self, t: TxnId, gtid: u64) -> Result<(), TxnError> {
        if self.mode == GroupCommit::Never {
            let mut svc = self.inner.lock();
            svc.prepare_participant(t, gtid)?;
            return svc.flush_log();
        }
        self.submit(PipeReq::Prepare(t, gtid))
    }

    /// Queues `req` on the pipeline; the first arrival leads, everyone
    /// else parks on the condvar until the leader publishes its outcome.
    fn submit(&self, req: PipeReq) -> Result<(), TxnError> {
        let t = req.txn();
        {
            let mut st = self.pipeline.state();
            st.queue.push(req);
            if st.leader_active {
                // Follower: the leader will service us and publish.
                loop {
                    if let Some(res) = st.outcomes.remove(&t) {
                        return res;
                    }
                    st = self.pipeline.cv.wait(st).unwrap_or_else(|p| p.into_inner());
                }
            }
            st.leader_active = true;
        }
        self.lead_commits();
        self.pipeline
            .state()
            .outcomes
            .remove(&t)
            .expect("leader drained the queue, so its own outcome is published")
    }

    /// Leader loop: drain the queue, commit the batch with one log
    /// flush, publish outcomes, repeat until the queue stays empty.
    fn lead_commits(&self) {
        loop {
            // Give concurrently-arriving committers a scheduling slice to
            // pile into the queue before we seal the batch.
            std::thread::yield_now();
            let batch: Vec<PipeReq> = {
                let mut st = self.pipeline.state();
                if st.queue.is_empty() {
                    st.leader_active = false;
                    self.pipeline.cv.notify_all();
                    return;
                }
                std::mem::take(&mut st.queue)
            };
            let mut results: Vec<(TxnId, Result<(), TxnError>)> = Vec::with_capacity(batch.len());
            {
                let mut svc = self.inner.lock();
                let mut pending = Vec::new();
                // Cross-shard prepares whose vote awaits the shared force.
                let mut voted: Vec<TxnId> = Vec::new();
                for &req in &batch {
                    match req {
                        PipeReq::Commit(t) => match svc.prepare_commit(t) {
                            Ok(Prepared::Merged) => results.push((t, Ok(()))),
                            Ok(Prepared::Pending(p)) => pending.push(p),
                            Err(e) => results.push((t, Err(e))),
                        },
                        PipeReq::Prepare(t, gtid) => match svc.prepare_participant(t, gtid) {
                            Ok(()) => voted.push(t),
                            Err(e) => results.push((t, Err(e))),
                        },
                    }
                }
                // One force covers every record the batch appended.
                match svc.flush_log() {
                    Ok(()) => {
                        for t in voted {
                            results.push((t, Ok(())));
                        }
                        for p in pending {
                            let t = p.txn();
                            results.push((t, svc.complete_commit(p)));
                        }
                        // §6.6 log compaction: the batch may have left the
                        // log over threshold with no transaction active.
                        if let Err(e) = svc.maybe_compact_log() {
                            if let Some((_, first)) = results.iter_mut().find(|(_, r)| r.is_ok()) {
                                *first = Err(e);
                            }
                        }
                    }
                    Err(e) => {
                        for t in voted {
                            results.push((t, Err(e.clone())));
                        }
                        for p in pending {
                            results.push((p.txn(), Err(e.clone())));
                        }
                    }
                }
            }
            let mut st = self.pipeline.state();
            for (t, r) in results {
                st.outcomes.insert(t, r);
            }
            self.pipeline.cv.notify_all();
        }
    }

    /// Abandons attempt `t`, nudges virtual time forward so a genuinely
    /// stuck holder's lease eventually expires, drives the timeouts and
    /// gives other threads real time to make progress. The nudge is a
    /// small fraction of LT: healthy holders finish many scheduling
    /// slices before their lease can be broken, while a deadlocked pair
    /// is still collapsed within ~50 backoffs.
    fn backoff(&self, t: TxnId, attempt: u32) {
        let mut ts = self.inner.lock();
        if ts.active_transactions().contains(&t) {
            let _ = ts.tabort(t);
        }
        let lt = ts.config().lt_us;
        let clock = ts.file_service_mut().clock();
        clock.advance(lt / 50 + 1);
        let _ = ts.tick();
        drop(ts);
        // Truncated exponential backoff with deterministic per-transaction
        // jitter. A constant sleep lets contending threads retry in
        // lockstep and re-create the same conflict forever — on a
        // single-CPU host that livelocks a deadlock-heavy workload all the
        // way to the attempt cap. The transaction id is fresh each
        // attempt, so hashing it desynchronises the herd without needing
        // a randomness source.
        let base = 50u64 << attempt.min(6);
        let jitter = t.0.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        let sleep_us = base + jitter % (base / 2 + 1);
        std::thread::sleep(std::time::Duration::from_micros(sleep_us));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{TxnConfig, TxnStats};
    use rhodos_file_service::{FileService, FileServiceConfig, LockLevel};
    use rhodos_simdisk::{DiskGeometry, LatencyModel, SimClock};

    fn shared(level: LockLevel) -> (SharedTransactionService, rhodos_file_service::FileId) {
        let fs = FileService::single_disk(
            DiskGeometry::medium(),
            LatencyModel::instant(),
            SimClock::new(),
            FileServiceConfig::default(),
        )
        .unwrap();
        let ts = TransactionService::new(
            fs,
            TxnConfig {
                lt_us: 5_000,
                max_renewals: 0,
                ..Default::default()
            },
        )
        .unwrap();
        let s = SharedTransactionService::new(ts);
        let fid = s.lock().tcreate(level).unwrap();
        s.run_txn(|s, t| {
            s.lock().topen(t, fid)?;
            s.lock().twrite(t, fid, 0, &0u64.to_le_bytes())
        })
        .unwrap();
        (s, fid)
    }

    #[test]
    fn threads_increment_without_lost_updates() {
        for level in [LockLevel::Record, LockLevel::Page, LockLevel::File] {
            let (s, fid) = shared(level);
            const THREADS: usize = 8;
            const PER_THREAD: u64 = 25;
            std::thread::scope(|scope| {
                for _ in 0..THREADS {
                    let s = s.clone();
                    scope.spawn(move || {
                        for _ in 0..PER_THREAD {
                            s.run_txn(|s, t| {
                                s.lock().topen(t, fid)?;
                                let raw = s.lock().tread_for_update(t, fid, 0, 8)?;
                                let v = u64::from_le_bytes(raw.try_into().expect("8 bytes"));
                                s.lock().twrite(t, fid, 0, &(v + 1).to_le_bytes())
                            })
                            .expect("transaction eventually succeeds");
                        }
                    });
                }
            });
            let total = s
                .run_txn(|s, t| {
                    s.lock().topen(t, fid)?;
                    s.lock().tread(t, fid, 0, 8)
                })
                .unwrap();
            assert_eq!(
                u64::from_le_bytes(total.try_into().unwrap()),
                (THREADS as u64) * PER_THREAD,
                "{level:?}: lost updates under real threads"
            );
        }
    }

    #[test]
    fn interleaving_produces_and_survives_real_conflicts() {
        // Two-page swaps in opposite orders from many threads: a classic
        // deadlock recipe. The runner + timeouts must keep everyone live,
        // and at least some conflicts must actually occur (the lock is
        // per-operation, so transactions interleave).
        let (s, fid) = shared(LockLevel::Page);
        s.run_txn(|s, t| {
            s.lock().topen(t, fid)?;
            s.lock().twrite(t, fid, 0, &vec![0u8; 2 * 8192])
        })
        .unwrap();
        std::thread::scope(|scope| {
            for w in 0..12usize {
                let s = s.clone();
                scope.spawn(move || {
                    for i in 0..20usize {
                        let (first, second) = if (w + i) % 2 == 0 {
                            (0u64, 1u64)
                        } else {
                            (1, 0)
                        };
                        s.run_txn(|s, t| {
                            s.lock().topen(t, fid)?;
                            s.lock().twrite(t, fid, first * 8192, &[w as u8; 8])?;
                            // Hold the first page across a scheduling point
                            // so other transactions interleave.
                            std::thread::yield_now();
                            s.lock().twrite(t, fid, second * 8192, &[w as u8; 8])
                        })
                        .expect("stays live under deadlock pressure");
                    }
                });
            }
        });
        let stats = s.lock().stats();
        assert_eq!(stats.begun - 2, stats.committed - 2 + stats.aborted);
        assert!(
            stats.would_blocks > 0,
            "per-operation locking must produce real interleaving conflicts"
        );
    }

    fn shared_mode(mode: GroupCommit) -> SharedTransactionService {
        let fs = FileService::single_disk(
            DiskGeometry::medium(),
            LatencyModel::instant(),
            SimClock::new(),
            FileServiceConfig::default(),
        )
        .unwrap();
        let ts = TransactionService::new(
            fs,
            TxnConfig {
                lt_us: 5_000,
                max_renewals: 0,
                group_commit: mode,
                ..Default::default()
            },
        )
        .unwrap();
        SharedTransactionService::new(ts)
    }

    /// Disjoint workload (one file per thread) so every commit succeeds
    /// first try; returns the service for stats inspection.
    fn disjoint_commits(mode: GroupCommit, threads: usize, per_thread: u64) -> TxnStats {
        let s = shared_mode(mode);
        let fids: Vec<_> = (0..threads)
            .map(|_| s.lock().tcreate(LockLevel::Page).unwrap())
            .collect();
        std::thread::scope(|scope| {
            for fid in fids.clone() {
                let s = s.clone();
                scope.spawn(move || {
                    for i in 0..per_thread {
                        s.run_txn(|s, t| {
                            s.lock().topen(t, fid)?;
                            s.lock().twrite(t, fid, 0, &i.to_le_bytes())
                        })
                        .expect("disjoint transactions commit");
                    }
                });
            }
        });
        for (w, fid) in fids.iter().enumerate() {
            let raw = s
                .run_txn(|s, t| {
                    s.lock().topen(t, *fid)?;
                    s.lock().tread(t, *fid, 0, 8)
                })
                .unwrap();
            assert_eq!(
                u64::from_le_bytes(raw.try_into().unwrap()),
                per_thread - 1,
                "thread {w} lost its final write"
            );
        }
        let guard = s.lock();
        guard.stats()
    }

    #[test]
    fn group_commit_amortises_log_flushes() {
        let stats = disjoint_commits(GroupCommit::Auto, 8, 25);
        assert!(stats.committed >= 8 * 25);
        assert!(
            stats.log_flushes < stats.committed,
            "leader must batch: {} flushes for {} commits",
            stats.log_flushes,
            stats.committed
        );
        assert!(stats.group_commits > 0, "no flush ever covered a batch");
        assert!(stats.records_per_flush_hwm >= 2);
    }

    #[test]
    fn never_mode_flushes_per_commit() {
        let stats = disjoint_commits(GroupCommit::Never, 4, 10);
        assert!(stats.committed >= 4 * 10);
        assert!(
            stats.log_flushes >= stats.committed,
            "the ablation must force the log for every commit: {} flushes, {} commits",
            stats.log_flushes,
            stats.committed
        );
        assert_eq!(stats.group_commits, 0, "Never must not batch");
    }

    #[test]
    fn group_commit_under_conflicts_stays_correct() {
        // Same contended counter as threads_increment_without_lost_updates,
        // but run through the pipeline's leader/follower path with aborts
        // and retries mixed into the batches.
        let (s, fid) = shared(LockLevel::Page);
        const THREADS: usize = 6;
        const PER_THREAD: u64 = 15;
        std::thread::scope(|scope| {
            for _ in 0..THREADS {
                let s = s.clone();
                scope.spawn(move || {
                    for _ in 0..PER_THREAD {
                        s.run_txn(|s, t| {
                            s.lock().topen(t, fid)?;
                            let raw = s.lock().tread_for_update(t, fid, 0, 8)?;
                            let v = u64::from_le_bytes(raw.try_into().expect("8 bytes"));
                            s.lock().twrite(t, fid, 0, &(v + 1).to_le_bytes())
                        })
                        .expect("transaction eventually succeeds");
                    }
                });
            }
        });
        let total = s
            .run_txn(|s, t| {
                s.lock().topen(t, fid)?;
                s.lock().tread(t, fid, 0, 8)
            })
            .unwrap();
        assert_eq!(
            u64::from_le_bytes(total.try_into().unwrap()),
            (THREADS as u64) * PER_THREAD
        );
        let stats = s.lock().stats();
        assert_eq!(stats.begun, stats.committed + stats.aborted);
    }

    #[test]
    fn cross_shard_prepares_ride_the_pipeline() {
        // Concurrent preparers on disjoint files: every vote must be
        // durable before `prepare_cross_shard` returns, and the prepares
        // should share leader flushes like ordinary commits do.
        let s = shared_mode(GroupCommit::Auto);
        const THREADS: usize = 4;
        const PER_THREAD: u64 = 10;
        let fids: Vec<_> = (0..THREADS)
            .map(|_| s.lock().tcreate(LockLevel::Page).unwrap())
            .collect();
        std::thread::scope(|scope| {
            for (w, fid) in fids.clone().into_iter().enumerate() {
                let s = s.clone();
                scope.spawn(move || {
                    for i in 0..PER_THREAD {
                        let gtid = (w as u64) * PER_THREAD + i + 1;
                        let t = s.lock().tbegin();
                        s.lock().topen(t, fid).unwrap();
                        s.lock().twrite(t, fid, 0, &gtid.to_le_bytes()).unwrap();
                        s.prepare_cross_shard(t, gtid).unwrap();
                        // Coordinator decides commit; resolution applies.
                        assert!(s.lock().resolve_prepared(gtid, true).unwrap());
                    }
                });
            }
        });
        let stats = s.lock().stats();
        assert_eq!(stats.prepares, (THREADS as u64) * PER_THREAD);
        assert_eq!(stats.prepare_records_flushed, stats.prepares);
        assert!(
            stats.prepare_flushes < stats.prepares,
            "prepares must batch: {} flushes for {} prepares",
            stats.prepare_flushes,
            stats.prepares
        );
        for (w, fid) in fids.iter().enumerate() {
            let raw = s
                .run_txn(|s, t| {
                    s.lock().topen(t, *fid)?;
                    s.lock().tread(t, *fid, 0, 8)
                })
                .unwrap();
            let got = u64::from_le_bytes(raw.try_into().unwrap());
            assert_eq!(got, (w as u64) * PER_THREAD + PER_THREAD);
        }
    }

    #[test]
    fn handle_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SharedTransactionService>();
    }

    #[test]
    fn non_conflict_errors_propagate() {
        let (s, _) = shared(LockLevel::Page);
        let missing = rhodos_file_service::FileId(999);
        let err = s.run_txn(|s, t| s.lock().topen(t, missing)).unwrap_err();
        assert!(matches!(err, TxnError::File(_)), "{err}");
    }

    #[test]
    fn fast_path_serves_cached_reads_and_matches_classic() {
        let (s, fid) = shared(LockLevel::Page);
        assert!(s.fast_path_enabled(), "default config shards both layers");
        // Write two pages of known data, committed.
        s.run_txn(|s, t| {
            s.lock().topen(t, fid)?;
            s.lock().twrite(t, fid, 0, &vec![7u8; 8192])?;
            s.lock().twrite(t, fid, 8192, &vec![9u8; 4096])
        })
        .unwrap();
        // A classic read warms the pool (shadow-page commits invalidate
        // the written blocks); the fast read then serves from it.
        let (via_fast, via_classic) = s
            .run_txn(|s, t| {
                s.lock().topen(t, fid)?;
                let classic = s.lock().tread(t, fid, 4096, 8192)?;
                let fast = s.tread_shared(t, fid, 4096, 8192)?;
                Ok((fast, classic))
            })
            .unwrap();
        assert_eq!(via_fast, via_classic);
        assert_eq!(&via_fast[..4096], &[7u8; 4096][..]);
        assert_eq!(&via_fast[4096..], &[9u8; 4096][..]);
        let fp = s.fast_stats();
        assert_eq!(fp.full_hits, 1, "{fp:?}");
        assert_eq!(fp.conflicts, 0);
    }

    #[test]
    fn fast_path_falls_back_on_own_tentative_writes() {
        let (s, fid) = shared(LockLevel::Page);
        s.run_txn(|s, t| {
            s.lock().topen(t, fid)?;
            s.lock().twrite(t, fid, 0, &[1u8; 16])?;
            // Uncommitted write ⇒ the fast path must overlay via the
            // classic path and still see the tentative bytes.
            let read = s.tread_shared(t, fid, 0, 16)?;
            assert_eq!(read, [1u8; 16]);
            Ok(())
        })
        .unwrap();
        let fp = s.fast_stats();
        assert!(fp.fallbacks >= 1, "{fp:?}");
    }

    #[test]
    fn fast_path_disabled_in_ablation_config() {
        let fs = FileService::single_disk(
            DiskGeometry::medium(),
            LatencyModel::instant(),
            SimClock::new(),
            FileServiceConfig {
                cache_shards: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let ts = TransactionService::new(
            fs,
            TxnConfig {
                lock_shards: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let s = SharedTransactionService::new(ts);
        assert!(!s.fast_path_enabled());
        let fid = s.lock().tcreate(LockLevel::Page).unwrap();
        s.run_txn(|s, t| {
            s.lock().topen(t, fid)?;
            s.lock().twrite(t, fid, 0, &[5u8; 8])
        })
        .unwrap();
        // tread_shared still works — it *is* the classic path here.
        let read = s
            .run_txn(|s, t| {
                s.lock().topen(t, fid)?;
                s.tread_shared(t, fid, 0, 8)
            })
            .unwrap();
        assert_eq!(read, [5u8; 8]);
        assert_eq!(s.fast_stats(), FastPathStats::default());
    }

    #[test]
    fn fast_reads_are_untorn_under_concurrent_writers() {
        // Writers rewrite a whole 8 KiB page with a uniform byte through
        // committed transactions while readers pull it through the fast
        // path. Every successful read must be a uniform page — a torn
        // read (mix of two writers' bytes) means the RO shard lock failed
        // to exclude a committing Iwrite.
        let (s, fid) = shared(LockLevel::Page);
        s.run_txn(|s, t| {
            s.lock().topen(t, fid)?;
            s.lock().twrite(t, fid, 0, &vec![0u8; 8192])
        })
        .unwrap();
        std::thread::scope(|scope| {
            for w in 1..=4u8 {
                let s = s.clone();
                scope.spawn(move || {
                    for _ in 0..15 {
                        s.run_txn(|s, t| {
                            s.lock().topen(t, fid)?;
                            s.lock().twrite(t, fid, 0, &vec![w; 8192])
                        })
                        .expect("writer stays live");
                    }
                });
            }
            for _ in 0..4 {
                let s = s.clone();
                scope.spawn(move || {
                    for _ in 0..40 {
                        let page = s
                            .run_txn(|s, t| {
                                s.lock().topen(t, fid)?;
                                s.tread_shared(t, fid, 0, 8192)
                            })
                            .expect("reader stays live");
                        assert_eq!(page.len(), 8192);
                        let first = page[0];
                        assert!(
                            page.iter().all(|b| *b == first),
                            "torn fast read: page mixes {first} with other bytes"
                        );
                    }
                });
            }
        });
        let stats = s.lock().stats();
        assert_eq!(stats.begun, stats.committed + stats.aborted);
    }
}
