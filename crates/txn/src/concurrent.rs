//! A thread-safe transaction runner over the shared service.
//!
//! The deterministic core ([`TransactionService`]) returns
//! [`TxnError::WouldBlock`] instead of parking a thread, which is ideal
//! for reproducible experiments but leaves real multi-threaded clients —
//! the paper's workstations all banging on one file server — to someone
//! else. This module is that someone: [`SharedTransactionService`] wraps
//! the service in a lock and provides [`run_txn`], a whole-transaction
//! retry loop. The service lock is taken **per operation**, not per
//! transaction, so concurrent transactions genuinely interleave: they
//! conflict on data items, queue, deadlock and get broken by the §6.4
//! timeouts, exactly like the paper's concurrent clients.
//!
//! [`run_txn`]: SharedTransactionService::run_txn

use crate::error::TxnError;
use crate::service::{TransactionService, TxnId};
use parking_lot::Mutex;
use std::sync::Arc;

/// A cloneable, thread-safe handle to one transaction service.
///
/// # Example
///
/// ```
/// use rhodos_file_service::{FileService, FileServiceConfig, LockLevel};
/// use rhodos_simdisk::{DiskGeometry, LatencyModel, SimClock};
/// use rhodos_txn::{SharedTransactionService, TransactionService, TxnConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let fs = FileService::single_disk(
///     DiskGeometry::medium(), LatencyModel::instant(), SimClock::new(),
///     FileServiceConfig::default(),
/// )?;
/// let shared = SharedTransactionService::new(TransactionService::new(fs, TxnConfig::default())?);
/// let fid = shared.lock().tcreate(LockLevel::Page)?;
/// shared.run_txn(|s, t| {
///     s.lock().topen(t, fid)?;
///     s.lock().twrite(t, fid, 0, b"thread safe")
/// })?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SharedTransactionService {
    inner: Arc<Mutex<TransactionService>>,
}

impl SharedTransactionService {
    /// Wraps a service for shared use.
    pub fn new(service: TransactionService) -> Self {
        Self {
            inner: Arc::new(Mutex::new(service)),
        }
    }

    /// Wraps an existing shared handle (e.g. the one agents hold).
    pub fn from_arc(inner: Arc<Mutex<TransactionService>>) -> Self {
        Self { inner }
    }

    /// Locks the underlying service for one operation (or for
    /// non-transactional administration: `tcreate`, statistics, recovery).
    /// Do **not** hold the guard across blocking work.
    pub fn lock(&self) -> parking_lot::MutexGuard<'_, TransactionService> {
        self.inner.lock()
    }

    /// The shared handle, for interoperating with the agents.
    pub fn as_arc(&self) -> Arc<Mutex<TransactionService>> {
        self.inner.clone()
    }

    /// Runs `body` as one transaction, retrying the *whole transaction*
    /// when it conflicts. The body receives this handle and the fresh
    /// transaction id and locks the service per operation, so other
    /// threads' transactions interleave with it. On
    /// [`TxnError::WouldBlock`] the attempt is aborted, the virtual clock
    /// advances (letting the §6.4 timeout machinery break deadlocks),
    /// waiters are promoted via `tick`, and the body re-executes under a
    /// fresh transaction. Commits on success.
    ///
    /// The body must be idempotent up to its transaction — exactly the
    /// property transactions exist to give it.
    ///
    /// # Errors
    ///
    /// Propagates non-conflict failures from the body or commit;
    /// [`TxnError::Aborted`] after 10 000 fruitless attempts
    /// (pathological starvation).
    pub fn run_txn<R>(
        &self,
        body: impl Fn(&Self, TxnId) -> Result<R, TxnError>,
    ) -> Result<R, TxnError> {
        const MAX_ATTEMPTS: u32 = 10_000;
        for _ in 0..MAX_ATTEMPTS {
            let t = self.inner.lock().tbegin();
            match body(self, t) {
                Ok(value) => {
                    let commit = self.inner.lock().tend(t);
                    match commit {
                        Ok(()) => return Ok(value),
                        Err(TxnError::WouldBlock { .. }) | Err(TxnError::NotActive(_)) => {
                            self.backoff(t);
                        }
                        Err(e) => {
                            let _ = self.inner.lock().tabort(t);
                            return Err(e);
                        }
                    }
                }
                Err(TxnError::WouldBlock { .. })
                | Err(TxnError::Aborted(_))
                | Err(TxnError::NotActive(_)) => {
                    // NotActive: a timeout abort from another thread's tick
                    // already killed us — just retry.
                    self.backoff(t);
                }
                Err(e) => {
                    let _ = self.inner.lock().tabort(t);
                    return Err(e);
                }
            }
        }
        Err(TxnError::Aborted(TxnId(0)))
    }

    /// Abandons attempt `t`, nudges virtual time forward so a genuinely
    /// stuck holder's lease eventually expires, drives the timeouts and
    /// gives other threads real time to make progress. The nudge is a
    /// small fraction of LT: healthy holders finish many scheduling
    /// slices before their lease can be broken, while a deadlocked pair
    /// is still collapsed within ~50 backoffs.
    fn backoff(&self, t: TxnId) {
        let mut ts = self.inner.lock();
        if ts.active_transactions().contains(&t) {
            let _ = ts.tabort(t);
        }
        let lt = ts.config().lt_us;
        let clock = ts.file_service_mut().clock();
        clock.advance(lt / 50 + 1);
        let _ = ts.tick();
        drop(ts);
        std::thread::sleep(std::time::Duration::from_micros(50));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::TxnConfig;
    use rhodos_file_service::{FileService, FileServiceConfig, LockLevel};
    use rhodos_simdisk::{DiskGeometry, LatencyModel, SimClock};

    fn shared(level: LockLevel) -> (SharedTransactionService, rhodos_file_service::FileId) {
        let fs = FileService::single_disk(
            DiskGeometry::medium(),
            LatencyModel::instant(),
            SimClock::new(),
            FileServiceConfig::default(),
        )
        .unwrap();
        let ts = TransactionService::new(
            fs,
            TxnConfig {
                lt_us: 5_000,
                max_renewals: 0,
                ..Default::default()
            },
        )
        .unwrap();
        let s = SharedTransactionService::new(ts);
        let fid = s.lock().tcreate(level).unwrap();
        s.run_txn(|s, t| {
            s.lock().topen(t, fid)?;
            s.lock().twrite(t, fid, 0, &0u64.to_le_bytes())
        })
        .unwrap();
        (s, fid)
    }

    #[test]
    fn threads_increment_without_lost_updates() {
        for level in [LockLevel::Record, LockLevel::Page, LockLevel::File] {
            let (s, fid) = shared(level);
            const THREADS: usize = 8;
            const PER_THREAD: u64 = 25;
            std::thread::scope(|scope| {
                for _ in 0..THREADS {
                    let s = s.clone();
                    scope.spawn(move || {
                        for _ in 0..PER_THREAD {
                            s.run_txn(|s, t| {
                                s.lock().topen(t, fid)?;
                                let raw = s.lock().tread_for_update(t, fid, 0, 8)?;
                                let v = u64::from_le_bytes(raw.try_into().expect("8 bytes"));
                                s.lock().twrite(t, fid, 0, &(v + 1).to_le_bytes())
                            })
                            .expect("transaction eventually succeeds");
                        }
                    });
                }
            });
            let total = s
                .run_txn(|s, t| {
                    s.lock().topen(t, fid)?;
                    s.lock().tread(t, fid, 0, 8)
                })
                .unwrap();
            assert_eq!(
                u64::from_le_bytes(total.try_into().unwrap()),
                (THREADS as u64) * PER_THREAD,
                "{level:?}: lost updates under real threads"
            );
        }
    }

    #[test]
    fn interleaving_produces_and_survives_real_conflicts() {
        // Two-page swaps in opposite orders from many threads: a classic
        // deadlock recipe. The runner + timeouts must keep everyone live,
        // and at least some conflicts must actually occur (the lock is
        // per-operation, so transactions interleave).
        let (s, fid) = shared(LockLevel::Page);
        s.run_txn(|s, t| {
            s.lock().topen(t, fid)?;
            s.lock().twrite(t, fid, 0, &vec![0u8; 2 * 8192])
        })
        .unwrap();
        std::thread::scope(|scope| {
            for w in 0..12usize {
                let s = s.clone();
                scope.spawn(move || {
                    for i in 0..20usize {
                        let (first, second) = if (w + i) % 2 == 0 {
                            (0u64, 1u64)
                        } else {
                            (1, 0)
                        };
                        s.run_txn(|s, t| {
                            s.lock().topen(t, fid)?;
                            s.lock().twrite(t, fid, first * 8192, &[w as u8; 8])?;
                            // Hold the first page across a scheduling point
                            // so other transactions interleave.
                            std::thread::yield_now();
                            s.lock().twrite(t, fid, second * 8192, &[w as u8; 8])
                        })
                        .expect("stays live under deadlock pressure");
                    }
                });
            }
        });
        let stats = s.lock().stats();
        assert_eq!(stats.begun - 2, stats.committed - 2 + stats.aborted);
        assert!(
            stats.would_blocks > 0,
            "per-operation locking must produce real interleaving conflicts"
        );
    }

    #[test]
    fn handle_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SharedTransactionService>();
    }

    #[test]
    fn non_conflict_errors_propagate() {
        let (s, _) = shared(LockLevel::Page);
        let missing = rhodos_file_service::FileId(999);
        let err = s.run_txn(|s, t| s.lock().topen(t, missing)).unwrap_err();
        assert!(matches!(err, TxnError::File(_)), "{err}");
    }
}
