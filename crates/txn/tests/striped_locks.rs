//! Striped lock-table properties (E20).
//!
//! Two families of properties:
//!
//! 1. **Cross-shard deadlock resolution**: two transactions locking the
//!    same pair of pages in opposite orders deadlock; whether the pages
//!    map to one shard or two, the timeout tick must abort *exactly one*
//!    of them and the survivor must be able to take both locks afterwards.
//!    Exercised over arbitrary page pairs (the interesting cases — pages
//!    hashing to different shards — occur constantly at 8 shards), both
//!    acquisition orders.
//! 2. **Single-shard equivalence**: `StripedLockTable::new(lt, n, 1)`
//!    must behave identically to a plain `LockTable` for any request
//!    trace — same outcomes, same promotions in the same order, same tick
//!    victims, same stats. This is the E20 ablation arm's guarantee.
//!
//! Cases are deterministic under the shimmed proptest runner; CI pins
//! `PROPTEST_BASE_SEED` over the {1, 7, 42} matrix for the `--ignored`
//! full sweeps.

use proptest::prelude::*;
use rhodos_file_service::FileId;
use rhodos_txn::{DataItem, LockMode, LockOutcome, LockTable, StripedLockTable};

const LT: u64 = 1_000;

fn page(p: u64) -> DataItem {
    DataItem::Page(FileId(1), p)
}

/// Builds the classic two-transaction deadlock over `(pa, pb)` —
/// `order` flips which transaction starts with which page — then checks
/// exactly-one-victim and survivor progress.
fn check_deadlock_case(shards: usize, pa: u64, pb: u64, order: bool) -> Result<(), TestCaseError> {
    prop_assume!(pa != pb);
    let t = StripedLockTable::new(LT, 3, shards);
    let (first, second) = if order { (pa, pb) } else { (pb, pa) };
    // T10 holds `first`, T20 holds `second`; each then wants the other.
    prop_assert_eq!(
        t.set_lock(1, 10, page(first), LockMode::Iwrite, 0),
        LockOutcome::Granted
    );
    prop_assert_eq!(
        t.set_lock(2, 20, page(second), LockMode::Iwrite, 0),
        LockOutcome::Granted
    );
    prop_assert_eq!(
        t.set_lock(1, 10, page(second), LockMode::Iwrite, 0),
        LockOutcome::Queued
    );
    prop_assert_eq!(
        t.set_lock(2, 20, page(first), LockMode::Iwrite, 0),
        LockOutcome::Queued
    );
    let aborted = t.tick(LT);
    prop_assert_eq!(
        aborted.len(),
        1,
        "exactly one victim (shards={}, pa={}, pb={}, cross-shard={}): {:?}",
        shards,
        pa,
        pb,
        t.shard_of(&page(pa)) != t.shard_of(&page(pb)),
        aborted
    );
    let victim = aborted[0];
    let survivor = if victim == 10 { 20 } else { 10 };
    t.release_all(victim, LT + 1);
    // The survivor's queued request was promoted by the release…
    let granted = t.granted_items(survivor);
    prop_assert!(
        granted.iter().all(|(_, m)| *m == LockMode::Iwrite),
        "survivor holds only Iwrite: {granted:?}"
    );
    prop_assert_eq!(granted.len(), 2, "survivor holds both pages: {:?}", granted);
    // …and re-requesting both is idempotent.
    prop_assert_eq!(
        t.set_lock(1, survivor, page(pa), LockMode::Iwrite, LT + 2),
        LockOutcome::Granted
    );
    prop_assert_eq!(
        t.set_lock(1, survivor, page(pb), LockMode::Iwrite, LT + 2),
        LockOutcome::Granted
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    /// Fast subset: runs in the default CI test pass.
    #[test]
    fn cross_shard_deadlock_one_victim_fast(
        shards in prop_oneof![Just(1usize), Just(4), Just(8), Just(16)],
        pa in 0u64..64,
        pb in 0u64..64,
        order: bool,
    ) {
        check_deadlock_case(shards, pa, pb, order)?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]
    /// Full sweep: CI runs this `--ignored` under the pinned
    /// `PROPTEST_BASE_SEED` matrix.
    #[test]
    #[ignore = "long sweep; exercised by the CI seed matrix"]
    fn cross_shard_deadlock_one_victim_full(
        shards in prop_oneof![Just(1usize), Just(2), Just(4), Just(8), Just(16), Just(32)],
        pa in 0u64..256,
        pb in 0u64..256,
        order: bool,
    ) {
        check_deadlock_case(shards, pa, pb, order)?;
    }
}

/// One request-trace step against both tables.
#[derive(Debug, Clone)]
enum Op {
    /// (txn, page, mode) at the next timestamp.
    SetLock(u64, u64, LockMode),
    /// Release everything a transaction holds.
    ReleaseAll(u64),
    /// Advance the timeout machinery by LT.
    Tick,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let txn = 10u64..16;
    let pg = 0u64..6;
    let mode = prop_oneof![
        Just(LockMode::ReadOnly),
        Just(LockMode::Iread),
        Just(LockMode::Iwrite),
    ];
    prop_oneof![
        6 => (txn.clone(), pg, mode).prop_map(|(t, p, m)| Op::SetLock(t, p, m)),
        2 => txn.prop_map(Op::ReleaseAll),
        1 => Just(Op::Tick),
    ]
}

/// Replays one trace against a plain table and a one-shard striped table,
/// requiring identical observable behaviour at every step.
fn check_equivalence(ops: &[Op]) -> Result<(), TestCaseError> {
    let mut plain = LockTable::new(LT, 3);
    let striped = StripedLockTable::new(LT, 3, 1);
    let mut now = 0u64;
    for (n, op) in ops.iter().enumerate() {
        match *op {
            Op::SetLock(txn, p, mode) => {
                now += 1;
                let a = plain.set_lock(txn, txn, page(p), mode, now);
                let b = striped.set_lock(txn, txn, page(p), mode, now);
                prop_assert_eq!(a, b, "op {}: outcome diverged", n);
            }
            Op::ReleaseAll(txn) => {
                now += 1;
                let a = plain.release_all(txn, now);
                let b = striped.release_all(txn, now);
                prop_assert_eq!(a, b, "op {}: promotions diverged", n);
            }
            Op::Tick => {
                now += LT;
                let a = plain.tick(now);
                let b = striped.tick(now);
                prop_assert_eq!(a, b, "op {}: tick victims diverged", n);
            }
        }
        prop_assert_eq!(plain.stats(), striped.stats(), "op {}: stats diverged", n);
        prop_assert_eq!(
            plain.len(),
            striped.len(),
            "op {}: record counts diverged",
            n
        );
        for txn in 10u64..16 {
            let mut a = plain.granted_items(txn);
            let mut b = striped.granted_items(txn);
            a.sort_by_key(|(i, m)| (format!("{i}"), *m));
            b.sort_by_key(|(i, m)| (format!("{i}"), *m));
            prop_assert_eq!(a, b, "op {}: granted items diverged for {}", n, txn);
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    /// Fast subset: runs in the default CI test pass.
    #[test]
    fn single_shard_matches_plain_table_fast(
        ops in proptest::collection::vec(op_strategy(), 1..60),
    ) {
        check_equivalence(&ops)?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]
    /// Full sweep: CI runs this `--ignored` under the pinned
    /// `PROPTEST_BASE_SEED` matrix.
    #[test]
    #[ignore = "long sweep; exercised by the CI seed matrix"]
    fn single_shard_matches_plain_table_full(
        ops in proptest::collection::vec(op_strategy(), 1..200),
    ) {
        check_equivalence(&ops)?;
    }
}

/// Deterministic companion: FIFO ordering within one item is preserved
/// through the striped API regardless of shard count.
#[test]
fn fifo_preserved_per_item_across_shard_counts() {
    for shards in [1usize, 4, 8] {
        let t = StripedLockTable::new(LT, 3, shards);
        t.set_lock(1, 10, page(0), LockMode::Iwrite, 0);
        t.set_lock(2, 20, page(0), LockMode::Iwrite, 0);
        t.set_lock(3, 30, page(0), LockMode::Iwrite, 0);
        assert_eq!(t.release_all(10, 1), vec![20], "shards={shards}");
        assert_eq!(t.release_all(20, 2), vec![30], "shards={shards}");
    }
}
