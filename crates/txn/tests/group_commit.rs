//! Crash equivalence for the group-commit pipeline (§6.6–6.7).
//!
//! Property: for any workload, crashing a [`GroupCommit::Auto`] service —
//! including mid-batch, with `Completed` markers and a prepared-but-
//! unflushed commit record pending — and recovering must yield exactly
//! the state of the transactions that were *acknowledged* committed,
//! byte-for-byte identical to the [`GroupCommit::Never`] serial ablation
//! crashed at the same point. An unacknowledged in-flight transaction may
//! be redone or lost (either mode may legitimately differ here), but it
//! must be all-or-nothing.
//!
//! Cases are deterministic under the shimmed proptest runner; CI pins
//! `PROPTEST_BASE_SEED` over a small matrix. `crash_equivalence_full` is
//! the `#[ignore]`d long sweep.

use proptest::prelude::*;
use rhodos_file_service::{FileId, FileService, FileServiceConfig, LockLevel};
use rhodos_simdisk::{DiskGeometry, LatencyModel, SimClock};
use rhodos_txn::{GroupCommit, TransactionService, TxnConfig, TxnError};

/// One single-write transaction in the generated workload.
type Op = (usize, u64, u8, usize); // (file, raw offset, fill byte, length)

const NFILES: usize = 3;

fn service(mode: GroupCommit) -> TransactionService {
    let fs = FileService::single_disk(
        DiskGeometry::medium(),
        LatencyModel::instant(),
        SimClock::new(),
        FileServiceConfig::default(),
    )
    .unwrap();
    TransactionService::new(
        fs,
        TxnConfig {
            group_commit: mode,
            ..Default::default()
        },
    )
    .unwrap()
}

/// Creates the working files and commits one durable init byte in each,
/// mirroring the same init applied to `models`.
fn setup(ts: &mut TransactionService, models: &mut [Vec<u8>]) -> Vec<FileId> {
    let fids: Vec<FileId> = (0..NFILES)
        .map(|_| ts.tcreate(LockLevel::Page).unwrap())
        .collect();
    for (fid, model) in fids.iter().zip(models.iter_mut()) {
        let t = ts.tbegin();
        ts.topen(t, *fid).unwrap();
        ts.twrite(t, *fid, 0, &[7u8]).unwrap();
        ts.tend(t).unwrap();
        *model = vec![7u8];
    }
    fids
}

/// Applies one committed transaction to the service; the caller mirrors
/// it into the model with [`apply_to_model`].
fn run_op(ts: &mut TransactionService, fids: &[FileId], op: &Op, models: &[Vec<u8>]) {
    let (f, raw_off, byte, len) = *op;
    let file = f % NFILES;
    // Clamp the offset into the current extent so files grow without holes.
    let off = raw_off % (models[file].len() as u64 + 1);
    let t = ts.tbegin();
    ts.topen(t, fids[file]).unwrap();
    ts.twrite(t, fids[file], off, &vec![byte; len]).unwrap();
    ts.tend(t).unwrap();
}

fn apply_to_model(models: &mut [Vec<u8>], op: &Op) {
    let (f, raw_off, byte, len) = *op;
    let file = f % NFILES;
    let off = (raw_off % (models[file].len() as u64 + 1)) as usize;
    if models[file].len() < off + len {
        models[file].resize(off + len, 0);
    }
    models[file][off..off + len].fill(byte);
}

/// Whether `fid`'s contents are exactly `model` (prefix *and* length).
fn matches_model(ts: &mut TransactionService, fid: FileId, model: &[u8]) -> bool {
    let t = ts.tbegin();
    if ts.topen(t, fid).is_err() {
        return false;
    }
    let got = ts.tread(t, fid, 0, model.len());
    // At exactly EOF a read clamps to empty; anything non-empty (or an
    // offset error) means the file is a different length than the model.
    let over = ts.tread(t, fid, model.len() as u64, 1);
    let _ = ts.tend(t);
    matches!(got, Ok(d) if d == model) && matches!(over, Ok(d) if d.is_empty())
}

/// The property body shared by the fast subset and the full sweep.
fn check_case(ops: &[Op], crash_after: usize, inflight: bool) -> Result<(), TestCaseError> {
    let crash_after = crash_after.min(ops.len());
    let mut models: Vec<Vec<u8>> = vec![Vec::new(); NFILES];
    let mut auto = service(GroupCommit::Auto);
    let mut never = service(GroupCommit::Never);
    let auto_fids = setup(&mut auto, &mut models);
    let mut never_models: Vec<Vec<u8>> = vec![Vec::new(); NFILES];
    let never_fids = setup(&mut never, &mut never_models);

    // Acknowledged prefix of the workload, identically on both services.
    for op in &ops[..crash_after] {
        run_op(&mut auto, &auto_fids, op, &models);
        run_op(&mut never, &never_fids, op, &models);
        apply_to_model(&mut models, op);
    }

    // Optionally leave one transaction *inside* the batch: its commit
    // record is appended (and under Never, already forced) but the
    // pipeline never acknowledged it — commit()/flush_log never returned.
    let mut with_inflight = models.clone();
    if inflight {
        let marker = with_inflight[0][0] ^ 0xA5; // differs from current byte 0
        with_inflight[0][0] = marker;
        for (ts, fid) in [(&mut auto, auto_fids[0]), (&mut never, never_fids[0])] {
            let t = ts.tbegin();
            ts.topen(t, fid).unwrap();
            ts.twrite(t, fid, 0, &[marker]).unwrap();
            match ts.prepare_commit(t) {
                Ok(rhodos_txn::Prepared::Pending(_)) => {} // record appended, never flushed/applied
                other => panic!("in-flight prepare should pend: {other:?}"),
            }
        }
    }

    // Crash both mid-pipeline: deferred Completed markers (Auto) and any
    // unforced commit record die with the delayed-write cache.
    auto.file_service_mut().simulate_crash();
    never.file_service_mut().simulate_crash();
    auto.recover()
        .map_err(|e| TestCaseError::fail(format!("auto recovery failed: {e}")))?;
    never
        .recover()
        .map_err(|e| TestCaseError::fail(format!("never recovery failed: {e}")))?;

    // Recovery must be idempotent under repeated crashes: the first
    // pass's own `Completed` markers are appended over any torn tail (at
    // the valid log prefix) and forced, so a second crash straight after
    // leaves nothing to redo.
    auto.file_service_mut().simulate_crash();
    never.file_service_mut().simulate_crash();
    let auto_redone2 = auto
        .recover()
        .map_err(|e| TestCaseError::fail(format!("auto re-recovery failed: {e}")))?;
    let never_redone2 = never
        .recover()
        .map_err(|e| TestCaseError::fail(format!("never re-recovery failed: {e}")))?;
    prop_assert!(
        auto_redone2.is_empty(),
        "auto: second recovery re-redid {auto_redone2:?}"
    );
    prop_assert!(
        never_redone2.is_empty(),
        "never: second recovery re-redid {never_redone2:?}"
    );

    for f in 0..NFILES {
        let auto_ok = matches_model(&mut auto, auto_fids[f], &models[f]);
        let never_ok = matches_model(&mut never, never_fids[f], &models[f]);
        if inflight && f == 0 {
            // Atomicity, not equality: the unacknowledged transaction may
            // be redone (record durable) or lost (record torn) — but
            // nothing in between.
            let auto_with = matches_model(&mut auto, auto_fids[f], &with_inflight[f]);
            let never_with = matches_model(&mut never, never_fids[f], &with_inflight[f]);
            prop_assert!(
                auto_ok || auto_with,
                "auto file {f}: recovered state is neither with nor without the in-flight txn"
            );
            prop_assert!(
                never_ok || never_with,
                "never file {f}: recovered state is neither with nor without the in-flight txn"
            );
        } else {
            prop_assert!(
                auto_ok,
                "auto file {f}: recovered bytes differ from acknowledged-commit model"
            );
            prop_assert!(
                never_ok,
                "never file {f}: recovered bytes differ from acknowledged-commit model"
            );
        }
    }

    // Both recovered services must remain fully operational and converge
    // when the rest of the workload is replayed.
    if !inflight {
        for op in &ops[crash_after..] {
            run_op(&mut auto, &auto_fids, op, &models);
            run_op(&mut never, &never_fids, op, &models);
            apply_to_model(&mut models, op);
        }
        for f in 0..NFILES {
            prop_assert!(
                matches_model(&mut auto, auto_fids[f], &models[f]),
                "auto file {f}: post-recovery replay diverged"
            );
            prop_assert!(
                matches_model(&mut never, never_fids[f], &models[f]),
                "never file {f}: post-recovery replay diverged"
            );
        }
    }
    Ok(())
}

fn op_strategy() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        (
            0usize..NFILES,
            0u64..40_000,
            any::<u8>(),
            // Mix sub-page records with multi-page writes so the batched
            // elevator apply path (npages > 1) is exercised.
            prop_oneof![1usize..1500, 7_000usize..18_000],
        ),
        1..=10,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    /// Fast subset: runs in the default CI test pass.
    #[test]
    fn crash_equivalence_fast(
        ops in op_strategy(),
        crash_after in 0usize..=10,
        inflight: bool,
    ) {
        check_case(&ops, crash_after, inflight)?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]
    /// Full sweep: CI runs this `--ignored` under the pinned
    /// `PROPTEST_BASE_SEED` matrix alongside the replication chaos suite.
    #[test]
    #[ignore = "long sweep; exercised by the CI seed matrix"]
    fn crash_equivalence_full(
        ops in op_strategy(),
        crash_after in 0usize..=10,
        inflight: bool,
    ) {
        check_case(&ops, crash_after, inflight)?;
    }
}

/// A torn crash point *between* prepare and flush under Auto must lose
/// the transaction; the same point under Never (where append forces) must
/// redo it — both all-or-nothing. Deterministic companion to the
/// proptest, pinning the one asymmetric crash window.
#[test]
fn inflight_prepare_is_all_or_nothing() {
    for mode in [GroupCommit::Auto, GroupCommit::Never] {
        let mut ts = service(mode);
        let mut models = vec![Vec::new(); NFILES];
        let fids = setup(&mut ts, &mut models);
        let t = ts.tbegin();
        ts.topen(t, fids[0]).unwrap();
        ts.twrite(t, fids[0], 0, b"torn").unwrap();
        match ts.prepare_commit(t).unwrap() {
            rhodos_txn::Prepared::Pending(_) => {}
            other => panic!("expected pending, got {other:?}"),
        }
        ts.file_service_mut().simulate_crash();
        let redone = ts.recover().unwrap();
        match mode {
            // Record never forced: the transaction vanishes wholesale.
            // (The last init txn's *deferred* Completed marker also died,
            // so that one is benignly redone — idempotent.)
            GroupCommit::Auto => {
                assert!(!redone.contains(&t), "unforced record must not redo");
                assert!(matches_model(&mut ts, fids[0], &[7u8]));
            }
            // Never forces on append: recovery must redo it wholesale.
            GroupCommit::Never => {
                assert_eq!(redone, vec![t]);
                assert!(matches_model(&mut ts, fids[0], b"torn"));
            }
        }
    }
}

/// Regression: a crash inside the deferred-`Completed` window leaves the
/// log's recorded size covering a torn tail (the marker's append grew the
/// FIT durably but its bytes never flushed). Recovery must append its own
/// markers at the *valid prefix* — writing them after the tear would make
/// them unreachable (decode stops at the tear) and every subsequent
/// recovery would redo the same commit again.
#[test]
fn repeated_crashes_converge_after_deferred_marker() {
    let mut ts = service(GroupCommit::Auto);
    let fid = ts.tcreate(LockLevel::Page).unwrap();
    let t = ts.tbegin();
    ts.topen(t, fid).unwrap();
    ts.twrite(t, fid, 0, b"durable").unwrap();
    ts.tend(t).unwrap();
    ts.file_service_mut().simulate_crash();
    assert_eq!(ts.recover().unwrap(), vec![t], "unmarked commit redone");
    ts.file_service_mut().simulate_crash();
    assert!(
        ts.recover().unwrap().is_empty(),
        "first recovery's marker must be durable and reachable"
    );
    let t2 = ts.tbegin();
    ts.topen(t2, fid).unwrap();
    assert_eq!(ts.tread(t2, fid, 0, 7).unwrap(), b"durable");
    ts.tend(t2).unwrap();
}

/// Nested commits through the group-commit split are tallied exactly once
/// for the child (at merge) and once for the root (at finish), even when
/// the root commits through prepare/complete with a deferred flush.
#[test]
fn nested_commit_accounting_survives_group_commit() {
    let mut ts = service(GroupCommit::Auto);
    let mut models = vec![Vec::new(); NFILES];
    let fids = setup(&mut ts, &mut models);
    let before = ts.stats();
    let root = ts.tbegin();
    ts.topen(root, fids[0]).unwrap();
    let child = ts.tbegin_nested(root).unwrap();
    ts.twrite(child, fids[0], 0, b"nest").unwrap();
    ts.tend(child).unwrap();
    // Commit the root through the split path the pipeline leader uses.
    match ts.prepare_commit(root).unwrap() {
        rhodos_txn::Prepared::Pending(p) => {
            ts.flush_log().unwrap();
            ts.complete_commit(p).unwrap();
        }
        rhodos_txn::Prepared::Merged => panic!("root is top-level"),
    }
    let after = ts.stats();
    assert_eq!(after.begun - before.begun, 2);
    assert_eq!(after.committed - before.committed, 2);
    assert_eq!(after.aborted, before.aborted);
    // A double finish must fail, not double-count.
    assert!(matches!(ts.tend(root), Err(TxnError::NotActive(_))));
    assert_eq!(ts.stats().committed - before.committed, 2);
}
