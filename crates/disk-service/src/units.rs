//! Storage units: fragments, blocks and extents.

/// Size of a fragment in bytes (2 KiB, §4). Fragments store small
/// structural information — "for the storage of structural information of
/// fairly small size the use of fragments can substantially reduce
/// communication overheads".
pub const FRAGMENT_SIZE: usize = rhodos_simdisk::SECTOR_SIZE;

/// Size of a block in bytes (8 KiB, §4). Blocks store file data: "a large
/// block reduces the effect of latency".
pub const BLOCK_SIZE: usize = 4 * FRAGMENT_SIZE;

/// Fragments per block: "four contiguous fragments makes one block".
pub const FRAGS_PER_BLOCK: u64 = (BLOCK_SIZE / FRAGMENT_SIZE) as u64;

/// Address of a fragment on a disk. Fragments map 1:1 onto simulator
/// sectors, so this is also a sector address.
pub type FragmentAddr = u64;

/// A run of contiguous fragments on one disk.
///
/// Extents are the unit of the disk service's API: "any operation on a set
/// of contiguous blocks/fragments can be accomplished in one single
/// reference to the disk" (§4).
///
/// # Example
///
/// ```
/// use rhodos_disk_service::Extent;
///
/// let e = Extent::new(8, 4); // one block starting at fragment 8
/// assert_eq!(e.len_bytes(), rhodos_disk_service::BLOCK_SIZE);
/// assert!(e.contains(11));
/// assert!(!e.contains(12));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Extent {
    /// First fragment of the run.
    pub start: FragmentAddr,
    /// Number of fragments in the run.
    pub len: u64,
}

impl Extent {
    /// Creates an extent of `len` fragments starting at `start`.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn new(start: FragmentAddr, len: u64) -> Self {
        assert!(len > 0, "extent must contain at least one fragment");
        Self { start, len }
    }

    /// One fragment past the end of the run.
    pub fn end(&self) -> FragmentAddr {
        self.start + self.len
    }

    /// Length in bytes.
    pub fn len_bytes(&self) -> usize {
        self.len as usize * FRAGMENT_SIZE
    }

    /// Whether `addr` falls inside this extent.
    pub fn contains(&self, addr: FragmentAddr) -> bool {
        addr >= self.start && addr < self.end()
    }

    /// Whether this extent overlaps `other`.
    pub fn overlaps(&self, other: &Extent) -> bool {
        self.start < other.end() && other.start < self.end()
    }

    /// Whether `other` begins exactly where this extent ends.
    pub fn adjoins(&self, other: &Extent) -> bool {
        self.end() == other.start || other.end() == self.start
    }

    /// Splits off the first `n` fragments, returning `(head, rest)`.
    /// `rest` is `None` when `n == self.len`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or exceeds the extent length.
    pub fn split_at(&self, n: u64) -> (Extent, Option<Extent>) {
        assert!(n > 0 && n <= self.len, "split point out of range");
        let head = Extent::new(self.start, n);
        let rest = if n == self.len {
            None
        } else {
            Some(Extent::new(self.start + n, self.len - n))
        };
        (head, rest)
    }
}

impl std::fmt::Display for Extent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}..{})", self.start, self.end())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_constants_agree_with_paper() {
        assert_eq!(FRAGMENT_SIZE, 2048);
        assert_eq!(BLOCK_SIZE, 8192);
        assert_eq!(FRAGS_PER_BLOCK, 4);
    }

    #[test]
    fn overlap_and_adjoin() {
        let a = Extent::new(0, 4);
        let b = Extent::new(4, 4);
        let c = Extent::new(3, 2);
        assert!(!a.overlaps(&b));
        assert!(a.adjoins(&b));
        assert!(a.overlaps(&c));
        assert!(c.overlaps(&b));
    }

    #[test]
    fn split() {
        let e = Extent::new(10, 6);
        let (head, rest) = e.split_at(2);
        assert_eq!(head, Extent::new(10, 2));
        assert_eq!(rest, Some(Extent::new(12, 4)));
        let (all, none) = e.split_at(6);
        assert_eq!(all, e);
        assert!(none.is_none());
    }

    #[test]
    #[should_panic(expected = "at least one fragment")]
    fn zero_length_extent_rejected() {
        Extent::new(0, 0);
    }
}
