//! Per-spindle request scheduling: C-SCAN elevator ordering and
//! adjacent-request merging.
//!
//! A batch of extents submitted to one disk server is sorted into elevator
//! order — ascending from the current head position, wrapping once to the
//! lowest outstanding address, like a C-SCAN sweep — and physically
//! adjacent requests are merged so the whole run moves in **one** disk
//! reference. The paper's contiguity rule ("any operation on a set of
//! contiguous blocks/fragments can be accomplished in one single reference
//! to the disk", §4) thus applies across request boundaries, not just
//! within one.

use crate::units::Extent;

/// Observability for one disk server's scheduler.
#[derive(Debug, Clone, Copy, Default)]
pub struct SchedulerStats {
    /// Largest batch ever queued on this spindle.
    pub queue_depth_hwm: u64,
    /// Requests absorbed into a neighbour by adjacent merging (a batch of
    /// `n` requests collapsing to one run counts `n - 1`).
    pub merged_requests: u64,
    /// C-SCAN wrap-arounds: the elevator finished its upward sweep and
    /// jumped back to the lowest outstanding address.
    pub direction_switches: u64,
    /// Batches submitted.
    pub batches: u64,
}

impl SchedulerStats {
    /// Accumulates another stats block into this one.
    pub fn merge(&mut self, other: &SchedulerStats) {
        self.queue_depth_hwm = self.queue_depth_hwm.max(other.queue_depth_hwm);
        self.merged_requests += other.merged_requests;
        self.direction_switches += other.direction_switches;
        self.batches += other.batches;
    }
}

/// One elevator-ordered, merged run, with back-references into the
/// submitted batch.
#[derive(Debug)]
pub struct MergedRun {
    /// The merged extent: one disk reference.
    pub extent: Extent,
    /// `(input index, byte offset of that request inside the run)` for
    /// every original request the run absorbed, in address order.
    pub parts: Vec<(usize, usize)>,
}

/// Orders a batch of per-request extents into a C-SCAN sweep starting at
/// `head` and merges physically adjacent requests into single runs.
///
/// Requests must be pairwise non-overlapping (they may be duplicates of
/// whole extents only if disjoint — overlapping extents are a caller bug
/// and are left unmerged, each becoming its own run).
pub fn order_and_merge(
    head: u64,
    requests: &[Extent],
    stats: &mut SchedulerStats,
) -> Vec<MergedRun> {
    stats.batches += 1;
    stats.queue_depth_hwm = stats.queue_depth_hwm.max(requests.len() as u64);
    let mut order: Vec<usize> = (0..requests.len()).collect();
    order.sort_by_key(|&i| requests[i].start);
    // C-SCAN: serve addresses at or above the head first (ascending), then
    // wrap once to the lowest outstanding address and sweep up again.
    let pivot = order.partition_point(|&i| requests[i].start < head);
    if pivot > 0 && pivot < order.len() {
        stats.direction_switches += 1;
    }
    order.rotate_left(pivot);

    let mut runs: Vec<MergedRun> = Vec::new();
    for &i in &order {
        let req = requests[i];
        if let Some(last) = runs.last_mut() {
            if last.extent.end() == req.start {
                last.parts.push((i, last.extent.len_bytes()));
                last.extent.len += req.len;
                stats.merged_requests += 1;
                continue;
            }
        }
        runs.push(MergedRun {
            extent: req,
            parts: vec![(i, 0)],
        });
    }
    runs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(start: u64, len: u64) -> Extent {
        Extent::new(start, len)
    }

    #[test]
    fn adjacent_requests_merge_into_one_run() {
        let mut stats = SchedulerStats::default();
        let runs = order_and_merge(0, &[e(4, 4), e(0, 4), e(8, 4)], &mut stats);
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].extent, e(0, 12));
        assert_eq!(runs[0].parts, vec![(1, 0), (0, 4 * 2048), (2, 8 * 2048)]);
        assert_eq!(stats.merged_requests, 2);
        assert_eq!(stats.queue_depth_hwm, 3);
    }

    #[test]
    fn cscan_serves_ahead_of_head_first_then_wraps() {
        let mut stats = SchedulerStats::default();
        let runs = order_and_merge(100, &[e(10, 2), e(200, 2), e(150, 2)], &mut stats);
        let starts: Vec<u64> = runs.iter().map(|r| r.extent.start).collect();
        assert_eq!(starts, vec![150, 200, 10]);
        assert_eq!(stats.direction_switches, 1);
    }

    #[test]
    fn no_wrap_when_all_requests_ahead() {
        let mut stats = SchedulerStats::default();
        let runs = order_and_merge(0, &[e(50, 2), e(10, 2)], &mut stats);
        let starts: Vec<u64> = runs.iter().map(|r| r.extent.start).collect();
        assert_eq!(starts, vec![10, 50]);
        assert_eq!(stats.direction_switches, 0);
    }

    #[test]
    fn non_adjacent_requests_stay_separate() {
        let mut stats = SchedulerStats::default();
        let runs = order_and_merge(0, &[e(0, 4), e(8, 4)], &mut stats);
        assert_eq!(runs.len(), 2);
        assert_eq!(stats.merged_requests, 0);
    }

    #[test]
    fn wrap_merge_does_not_cross_the_seam() {
        // Requests [8,12) and [0,8) are adjacent in address space but the
        // sweep starts at head 6, so [8,12) is served first and the wrapped
        // [0,8) must not merge backwards into it.
        let mut stats = SchedulerStats::default();
        let runs = order_and_merge(6, &[e(8, 4), e(0, 8)], &mut stats);
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].extent, e(8, 4));
        assert_eq!(runs[1].extent, e(0, 8));
    }
}
