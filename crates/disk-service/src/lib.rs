//! # rhodos-disk-service — the RHODOS disk service (§4 of the paper)
//!
//! One [`DiskService`] ("disk server") runs per disk. It implements the
//! paper's storage-unit scheme and service functions:
//!
//! * **Blocks and fragments** — logical units of 8 KiB and 2 KiB
//!   respectively; "four contiguous fragments makes one block". Blocks
//!   store file data; fragments store small structural information such as
//!   file index tables.
//! * **Free-space management** — a bitmap of the disk plus a 64 × 64
//!   [`FreeExtentArray`]: row *r* references runs of *r + 1* contiguous
//!   free fragments (row 63 holds longer runs), so a request for *n*
//!   contiguous fragments is answered without scanning the bitmap.
//! * **Track read-ahead cache** — after serving a read, the service caches
//!   the rest of the same track to satisfy subsequent requests to nearby
//!   fragments.
//! * **Stable storage** — `put` can direct data exclusively to stable
//!   storage (shadow pages) or to its original location *and* stable
//!   storage (the file index table), returning before or after the stable
//!   write completes.
//! * **Single-reference transfers** — any operation on a set of contiguous
//!   fragments is accomplished in one reference to the disk.
//!
//! # Example
//!
//! ```
//! use rhodos_disk_service::{DiskService, DiskServiceConfig, StablePolicy};
//! use rhodos_simdisk::{DiskGeometry, LatencyModel, SimClock};
//!
//! # fn main() -> Result<(), rhodos_disk_service::DiskServiceError> {
//! let mut svc = DiskService::with_stable(
//!     DiskGeometry::small(),
//!     LatencyModel::default(),
//!     SimClock::new(),
//!     DiskServiceConfig::default(),
//! );
//! // Allocate one block (4 contiguous fragments) and write it.
//! let extent = svc.allocate_contiguous(4)?;
//! let block = vec![0x5A; rhodos_disk_service::BLOCK_SIZE];
//! svc.put(extent, &block, StablePolicy::None)?;
//! assert_eq!(svc.get(extent)?, block);
//! svc.free(extent)?;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitmap;
pub mod codec;
mod error;
mod extent_index;
mod scheduler;
mod service;
mod track_cache;
mod units;

pub use bitmap::Bitmap;
pub use error::DiskServiceError;
pub use extent_index::FreeExtentArray;
pub use rhodos_buf::BlockBuf;
pub use rhodos_simdisk::{SectorFault, SectorFaultKind};
pub use scheduler::SchedulerStats;
pub use service::{DiskService, DiskServiceConfig, DiskServiceStats, ReadSource, StablePolicy};
pub use track_cache::TrackCache;
pub use units::{Extent, FragmentAddr, BLOCK_SIZE, FRAGMENT_SIZE, FRAGS_PER_BLOCK};
