//! Tiny little-endian codec for on-disk structures.
//!
//! The file index table, intentions list and naming records are persisted
//! into fragments and stable-storage slots. A small hand-rolled codec keeps
//! the on-disk format explicit and dependency-free.

/// Append-only encoder over a byte buffer.
///
/// # Example
///
/// ```
/// use rhodos_disk_service::codec::{Decoder, Encoder};
///
/// let mut e = Encoder::new();
/// e.u32(7).u64(99).bytes(b"abc");
/// let buf = e.finish();
/// let mut d = Decoder::new(&buf);
/// assert_eq!(d.u32().unwrap(), 7);
/// assert_eq!(d.u64().unwrap(), 99);
/// assert_eq!(d.bytes().unwrap(), b"abc");
/// assert!(d.is_empty());
/// ```
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a `u8`.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Appends a `u16` little-endian.
    pub fn u16(&mut self, v: u16) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a `u32` little-endian.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a `u64` little-endian.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a length-prefixed byte string (`u32` length).
    pub fn bytes(&mut self, v: &[u8]) -> &mut Self {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
        self
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) -> &mut Self {
        self.bytes(v.as_bytes())
    }

    /// Current encoded length.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been encoded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the encoder, returning the buffer.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Error produced when a decode runs past the end of the buffer or finds a
/// malformed field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError;

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "truncated or malformed on-disk record")
    }
}

impl std::error::Error for DecodeError {}

/// Sequential decoder over a byte slice.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
}

impl<'a> Decoder<'a> {
    /// Creates a decoder over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.buf.len() < n {
            return Err(DecodeError);
        }
        let (head, rest) = self.buf.split_at(n);
        self.buf = rest;
        Ok(head)
    }

    /// Reads a `u8`.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u16`.
    pub fn u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a `u32`.
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a `u64`.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8], DecodeError> {
        let len = self.u32()? as usize;
        self.take(len)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, DecodeError> {
        std::str::from_utf8(self.bytes()?).map_err(|_| DecodeError)
    }

    /// Whether the whole buffer has been consumed.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Remaining bytes.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_types() {
        let mut e = Encoder::new();
        e.u8(1).u16(2).u32(3).u64(4).str("five").bytes(&[6, 7]);
        let buf = e.finish();
        let mut d = Decoder::new(&buf);
        assert_eq!(d.u8().unwrap(), 1);
        assert_eq!(d.u16().unwrap(), 2);
        assert_eq!(d.u32().unwrap(), 3);
        assert_eq!(d.u64().unwrap(), 4);
        assert_eq!(d.str().unwrap(), "five");
        assert_eq!(d.bytes().unwrap(), &[6, 7]);
        assert!(d.is_empty());
    }

    #[test]
    fn truncation_detected() {
        let mut e = Encoder::new();
        e.u64(42);
        let buf = e.finish();
        let mut d = Decoder::new(&buf[..4]);
        assert_eq!(d.u64(), Err(DecodeError));
    }

    #[test]
    fn bogus_length_prefix_detected() {
        let mut e = Encoder::new();
        e.u32(1_000_000); // claims a million bytes follow
        let buf = e.finish();
        let mut d = Decoder::new(&buf);
        assert_eq!(d.bytes(), Err(DecodeError));
    }

    #[test]
    fn invalid_utf8_detected() {
        let mut e = Encoder::new();
        e.bytes(&[0xFF, 0xFE]);
        let buf = e.finish();
        let mut d = Decoder::new(&buf);
        assert_eq!(d.str(), Err(DecodeError));
    }
}
