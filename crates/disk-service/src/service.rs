//! The disk server: allocation, transfer and stable-storage functions.
//!
//! The paper's disk service provides `allocate-block`, `free-block`,
//! `flush-block`, `get-block` and `put-block` (§4), with semantics
//! "designed in such a way that any operation on a set of contiguous
//! blocks/fragments can be accomplished in one single reference to the
//! disk". This module implements those functions over one [`SimDisk`] plus
//! an optional mirrored stable store.

use crate::bitmap::Bitmap;
use crate::error::DiskServiceError;
use crate::extent_index::{ExtentIndexStats, FreeExtentArray};
use crate::scheduler::{order_and_merge, SchedulerStats};
use crate::track_cache::{TrackCache, TrackCacheStats};
use crate::units::{Extent, FragmentAddr, FRAGMENT_SIZE, FRAGS_PER_BLOCK};
use rhodos_buf::BlockBuf;
use rhodos_simdisk::{
    DiskGeometry, DiskStats, LatencyModel, SectorFault, SimClock, SimDisk, StableStore,
    StableWriteMode,
};

/// Where `put` directs the data (§4's `put-block` stable-storage options).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StablePolicy {
    /// Ordinary write: original location only.
    None,
    /// Exclusively to stable storage — "as in the case of a shadow page".
    StableOnly(StableWriteMode),
    /// To the original location *and* stable storage — "as in the case of
    /// the file index table".
    OriginalAndStable(StableWriteMode),
}

/// Where `get_from` reads the data (§4's `get-block` source option).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadSource {
    /// Main storage (the default).
    Main,
    /// Stable storage.
    Stable,
}

/// Tunables for one disk server.
#[derive(Debug, Clone, Copy)]
pub struct DiskServiceConfig {
    /// Whether to cache the remainder of a track after serving a read.
    pub track_readahead: bool,
    /// Capacity of the track cache, in tracks. Zero disables caching
    /// entirely (the "Bullet server" baseline of experiment E8).
    pub cache_tracks: usize,
}

impl Default for DiskServiceConfig {
    fn default() -> Self {
        Self {
            track_readahead: true,
            cache_tracks: 16,
        }
    }
}

/// Aggregated observability for one disk server.
#[derive(Debug, Clone, Copy, Default)]
pub struct DiskServiceStats {
    /// Counters of the main disk.
    pub disk: DiskStats,
    /// Combined counters of the stable-storage mirrors (zero if absent).
    pub stable: DiskStats,
    /// Track-cache hits/misses.
    pub cache: TrackCacheStats,
    /// Free-extent-index behaviour.
    pub index: ExtentIndexStats,
    /// Batch scheduler behaviour (elevator ordering, merging).
    pub scheduler: SchedulerStats,
    /// Fragments currently free.
    pub free_fragments: u64,
    /// Total fragments on the disk.
    pub total_fragments: u64,
}

/// One disk server: "there is one disk server corresponding to each disk
/// in the RHODOS system" (§4).
///
/// See the [crate documentation](crate) for an example.
#[derive(Debug)]
pub struct DiskService {
    disk: SimDisk,
    stable: Option<StableStore>,
    bitmap: Bitmap,
    index: FreeExtentArray,
    cache: Option<TrackCache>,
    config: DiskServiceConfig,
    scheduler: SchedulerStats,
}

impl DiskService {
    /// Creates a disk server without stable storage.
    pub fn new(
        geometry: DiskGeometry,
        model: LatencyModel,
        clock: SimClock,
        config: DiskServiceConfig,
    ) -> Self {
        let disk = SimDisk::new(geometry, model, clock);
        Self::from_disk(disk, None, config)
    }

    /// Creates a disk server with a mirrored stable store of matching
    /// capacity (two additional simulated disks).
    pub fn with_stable(
        geometry: DiskGeometry,
        model: LatencyModel,
        clock: SimClock,
        config: DiskServiceConfig,
    ) -> Self {
        let disk = SimDisk::new(geometry, model, clock.clone());
        // Two stable slots per fragment (a fragment's 2048 bytes split
        // across two records, each of which reserves header space).
        let stable_geom = DiskGeometry::new(geometry.tracks(), geometry.sectors_per_track() * 2);
        let a = SimDisk::new(stable_geom, model, clock.clone());
        let b = SimDisk::new(stable_geom, model, clock);
        Self::from_disk(disk, Some(StableStore::new(a, b)), config)
    }

    /// Builds a server over an existing disk (lets tests pre-fault it).
    pub fn from_disk(
        disk: SimDisk,
        stable: Option<StableStore>,
        config: DiskServiceConfig,
    ) -> Self {
        let total = disk.geometry().total_sectors();
        let bitmap = Bitmap::new_all_free(total);
        let mut index = FreeExtentArray::new();
        index.rebuild_from(&bitmap);
        let cache = (config.cache_tracks > 0)
            .then(|| TrackCache::new(config.cache_tracks, disk.geometry().sectors_per_track()));
        Self {
            disk,
            stable,
            bitmap,
            index,
            cache,
            config,
            scheduler: SchedulerStats::default(),
        }
    }

    /// The disk geometry.
    pub fn geometry(&self) -> DiskGeometry {
        self.disk.geometry()
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> SimClock {
        self.disk.clock().clone()
    }

    /// Mutable access to the underlying disk (fault injection).
    pub fn disk_mut(&mut self) -> &mut SimDisk {
        &mut self.disk
    }

    /// Mutable access to the stable store, if configured.
    pub fn stable_mut(&mut self) -> Option<&mut StableStore> {
        self.stable.as_mut()
    }

    /// Whether stable storage is configured.
    pub fn has_stable(&self) -> bool {
        self.stable.is_some()
    }

    /// Snapshot of all statistics.
    pub fn stats(&self) -> DiskServiceStats {
        DiskServiceStats {
            disk: self.disk.stats(),
            stable: self.stable.as_ref().map(|s| s.stats()).unwrap_or_default(),
            cache: self.cache.as_ref().map(|c| c.stats()).unwrap_or_default(),
            index: self.index.stats(),
            scheduler: self.scheduler,
            free_fragments: self.bitmap.free_fragments(),
            total_fragments: self.bitmap.total_fragments(),
        }
    }

    /// Fragments currently free.
    pub fn free_fragments(&self) -> u64 {
        self.bitmap.free_fragments()
    }

    /// Largest contiguous free run, in fragments.
    pub fn largest_free_run(&self) -> u64 {
        self.bitmap.largest_free_run()
    }

    // ---- allocation --------------------------------------------------

    /// Allocates `len` *contiguous* fragments (`allocate-block` for
    /// `len = 4·n`).
    ///
    /// # Errors
    ///
    /// Returns [`DiskServiceError::NoSpace`] when no contiguous run of
    /// `len` fragments exists.
    pub fn allocate_contiguous(&mut self, len: u64) -> Result<Extent, DiskServiceError> {
        self.index
            .allocate(&mut self.bitmap, len)
            .ok_or(DiskServiceError::NoSpace {
                requested: len,
                largest_free: self.bitmap.largest_free_run(),
                total_free: self.bitmap.free_fragments(),
            })
    }

    /// Allocates one block (four contiguous fragments).
    ///
    /// # Errors
    ///
    /// See [`Self::allocate_contiguous`].
    pub fn allocate_block(&mut self) -> Result<Extent, DiskServiceError> {
        self.allocate_contiguous(FRAGS_PER_BLOCK)
    }

    /// Allocates `len` contiguous fragments from the top of the disk —
    /// placement for shadow pages and other transient metadata, keeping
    /// the low region unfragmented for contiguous file growth.
    ///
    /// # Errors
    ///
    /// Returns [`DiskServiceError::NoSpace`] when no contiguous run of
    /// `len` fragments exists.
    pub fn allocate_contiguous_top(&mut self, len: u64) -> Result<Extent, DiskServiceError> {
        self.index
            .allocate_top(&mut self.bitmap, len)
            .ok_or(DiskServiceError::NoSpace {
                requested: len,
                largest_free: self.bitmap.largest_free_run(),
                total_free: self.bitmap.free_fragments(),
            })
    }

    /// Allocates `len` fragments, contiguously if possible, otherwise as
    /// several extents (largest-first). Used when a file's blocks "may or
    /// may not be contiguous on a storage medium" (§5).
    ///
    /// # Errors
    ///
    /// Returns [`DiskServiceError::NoSpace`] when fewer than `len`
    /// fragments are free in total.
    pub fn allocate_scattered(&mut self, len: u64) -> Result<Vec<Extent>, DiskServiceError> {
        if len > self.bitmap.free_fragments() {
            return Err(DiskServiceError::NoSpace {
                requested: len,
                largest_free: self.bitmap.largest_free_run(),
                total_free: self.bitmap.free_fragments(),
            });
        }
        let mut remaining = len;
        let mut extents = Vec::new();
        while remaining > 0 {
            let chunk = remaining.min(self.bitmap.largest_free_run());
            debug_assert!(chunk > 0);
            match self.index.allocate(&mut self.bitmap, chunk) {
                Some(e) => {
                    remaining -= e.len;
                    extents.push(e);
                }
                None => {
                    // Roll back partial allocation before reporting.
                    for e in extents {
                        self.index.free(&mut self.bitmap, e);
                    }
                    return Err(DiskServiceError::NoSpace {
                        requested: len,
                        largest_free: self.bitmap.largest_free_run(),
                        total_free: self.bitmap.free_fragments(),
                    });
                }
            }
        }
        Ok(extents)
    }

    /// Frees an extent (`free-block`). Invalidate any cached copies.
    ///
    /// # Errors
    ///
    /// Returns [`DiskServiceError::BadExtent`] if the extent exceeds the
    /// disk.
    ///
    /// # Panics
    ///
    /// Panics on double free — always a bug in the caller.
    pub fn free(&mut self, extent: Extent) -> Result<(), DiskServiceError> {
        if extent.end() > self.bitmap.total_fragments() {
            return Err(DiskServiceError::BadExtent);
        }
        self.index.free(&mut self.bitmap, extent);
        if let Some(cache) = &mut self.cache {
            let geom = self.disk.geometry();
            for f in extent.start..extent.end() {
                cache.invalidate_fragment(geom.track_of(f), geom.sector_in_track(f));
            }
        }
        Ok(())
    }

    // ---- transfer ----------------------------------------------------

    fn check_extent(&self, extent: Extent) -> Result<(), DiskServiceError> {
        if extent.end() > self.bitmap.total_fragments() {
            return Err(DiskServiceError::BadExtent);
        }
        Ok(())
    }

    /// Reads an extent from main storage (`get-block` with the default
    /// source): one disk reference for the whole contiguous run, or zero
    /// if fully cached.
    ///
    /// The result is a [`BlockBuf`]: a fully-cached extent whose fragments
    /// share one allocation (the common case after a run transfer or
    /// read-ahead) is served as a zero-copy view of the cache.
    ///
    /// # Errors
    ///
    /// Propagates device failures; see [`DiskServiceError`].
    pub fn get(&mut self, extent: Extent) -> Result<BlockBuf, DiskServiceError> {
        self.get_from(extent, ReadSource::Main)
    }

    /// Reads an extent into the caller's buffer with exactly one copy
    /// (cache/transfer buffer → `out`).
    ///
    /// # Errors
    ///
    /// [`DiskServiceError::SizeMismatch`] if `out` does not exactly fit
    /// the extent; otherwise as [`Self::get`].
    pub fn get_into(&mut self, extent: Extent, out: &mut [u8]) -> Result<(), DiskServiceError> {
        if out.len() != extent.len_bytes() {
            return Err(DiskServiceError::SizeMismatch {
                expected: extent.len_bytes(),
                got: out.len(),
            });
        }
        let data = self.get(extent)?;
        data.copy_to(out);
        Ok(())
    }

    /// Reads an extent from the chosen source (`get-block` with its
    /// stable-storage option).
    ///
    /// # Errors
    ///
    /// [`DiskServiceError::NoStableStorage`] if `source` is `Stable` and no
    /// stable store is configured; otherwise device failures.
    pub fn get_from(
        &mut self,
        extent: Extent,
        source: ReadSource,
    ) -> Result<BlockBuf, DiskServiceError> {
        self.check_extent(extent)?;
        match source {
            ReadSource::Main => self.get_main(extent),
            ReadSource::Stable => self.get_stable(extent),
        }
    }

    fn get_main(&mut self, extent: Extent) -> Result<BlockBuf, DiskServiceError> {
        let geom = self.disk.geometry();
        // Serve fully from cache when possible.
        if let Some(cache) = &mut self.cache {
            let all_resident = (extent.start..extent.end())
                .all(|f| cache.peek_fragment(geom.track_of(f), geom.sector_in_track(f)));
            if all_resident {
                let mut parts = Vec::with_capacity(extent.len as usize);
                for f in extent.start..extent.end() {
                    let frag = cache
                        .lookup_fragment(geom.track_of(f), geom.sector_in_track(f))
                        .expect("peeked fragment must be resident");
                    parts.push(frag);
                }
                // Fragments cached from one run transfer share an
                // allocation and reassemble without copying.
                if let Some(joined) = BlockBuf::try_concat(&parts) {
                    return Ok(joined);
                }
                // Mixed provenance: gather-copy into one buffer.
                let mut out = Vec::with_capacity(extent.len_bytes());
                for p in &parts {
                    out.extend_from_slice(p);
                }
                cache.note_copied(out.len() as u64);
                return Ok(BlockBuf::from(out));
            }
            // Record misses for the fragments we must fetch.
            for f in extent.start..extent.end() {
                if !cache.peek_fragment(geom.track_of(f), geom.sector_in_track(f)) {
                    let _ = cache.lookup_fragment(geom.track_of(f), geom.sector_in_track(f));
                }
            }
        }
        // One reference for the whole contiguous run.
        let data = self.disk.read_sectors(extent.start, extent.len)?;
        if let Some(cache) = &mut self.cache {
            for (i, f) in (extent.start..extent.end()).enumerate() {
                let a = i * FRAGMENT_SIZE;
                // Each cached fragment is a view of the one transfer
                // allocation — filling the cache copies nothing.
                cache.fill_fragment(
                    geom.track_of(f),
                    geom.sector_in_track(f),
                    data.slice(a..a + FRAGMENT_SIZE),
                );
            }
            if self.config.track_readahead {
                // Read-ahead is opportunistic: a media fault elsewhere on
                // the track must not fail the demand read that succeeded.
                let _ = self.read_ahead_track(geom.track_of(extent.start));
            }
        }
        Ok(data)
    }

    /// Caches the not-yet-resident remainder of `track` ("the disk service
    /// caches the rest of the data from the same track", §4).
    fn read_ahead_track(&mut self, track: u64) -> Result<(), DiskServiceError> {
        let geom = self.disk.geometry();
        let cache = self.cache.as_mut().expect("read-ahead requires a cache");
        let start = geom.track_start(track);
        let spt = geom.sectors_per_track();
        let missing: Vec<u64> = (0..spt)
            .filter(|&s| !cache.peek_fragment(track, s))
            .collect();
        if missing.is_empty() {
            return Ok(());
        }
        // One sequential reference covering the span of missing sectors.
        let lo = *missing.first().expect("nonempty");
        let hi = *missing.last().expect("nonempty");
        let data = self.disk.read_sectors(start + lo, hi - lo + 1)?;
        for s in &missing {
            let a = (s - lo) as usize * FRAGMENT_SIZE;
            // Every read-ahead fragment is a view of the one track transfer.
            cache.fill_fragment(track, *s, data.slice(a..a + FRAGMENT_SIZE));
        }
        Ok(())
    }

    fn get_stable(&mut self, extent: Extent) -> Result<BlockBuf, DiskServiceError> {
        let stable = self
            .stable
            .as_mut()
            .ok_or(DiskServiceError::NoStableStorage)?;
        let mut out = Vec::with_capacity(extent.len_bytes());
        for f in extent.start..extent.end() {
            let p0 = stable.read(2 * f)?.ok_or(DiskServiceError::Disk(
                rhodos_simdisk::DiskError::StableLost(2 * f),
            ))?;
            let p1 = stable.read(2 * f + 1)?.ok_or(DiskServiceError::Disk(
                rhodos_simdisk::DiskError::StableLost(2 * f + 1),
            ))?;
            out.extend_from_slice(&p0);
            out.extend_from_slice(&p1);
        }
        if out.len() != extent.len_bytes() {
            return Err(DiskServiceError::SizeMismatch {
                expected: extent.len_bytes(),
                got: out.len(),
            });
        }
        // Stable records are decoded piecewise; the assembled buffer is
        // fresh, so wrapping it is free.
        Ok(BlockBuf::from(out))
    }

    /// Writes `data` to `extent` (`put-block`). `policy` selects the
    /// paper's stable-storage options; the main-location write is one disk
    /// reference for the whole contiguous run.
    ///
    /// # Errors
    ///
    /// [`DiskServiceError::SizeMismatch`] if `data` does not exactly fill
    /// the extent; [`DiskServiceError::NoStableStorage`] if a stable policy
    /// is requested without stable storage; otherwise device failures.
    pub fn put(
        &mut self,
        extent: Extent,
        data: &[u8],
        policy: StablePolicy,
    ) -> Result<(), DiskServiceError> {
        self.check_extent(extent)?;
        if data.len() != extent.len_bytes() {
            return Err(DiskServiceError::SizeMismatch {
                expected: extent.len_bytes(),
                got: data.len(),
            });
        }
        let write_main = !matches!(policy, StablePolicy::StableOnly(_));
        if write_main {
            self.disk.write_sectors(extent.start, data)?;
            // Write-update the cache so subsequent reads hit.
            if let Some(cache) = &mut self.cache {
                let geom = self.disk.geometry();
                for (i, f) in (extent.start..extent.end()).enumerate() {
                    let a = i * FRAGMENT_SIZE;
                    cache.fill_fragment(
                        geom.track_of(f),
                        geom.sector_in_track(f),
                        data[a..a + FRAGMENT_SIZE].to_vec(),
                    );
                }
            }
        }
        match policy {
            StablePolicy::None => {}
            StablePolicy::StableOnly(mode) | StablePolicy::OriginalAndStable(mode) => {
                let stable = self
                    .stable
                    .as_mut()
                    .ok_or(DiskServiceError::NoStableStorage)?;
                let half = rhodos_simdisk::SECTOR_SIZE - 20; // STABLE_PAYLOAD
                                                             // Fragment f maps to slots 2f and 2f+1, so a contiguous
                                                             // extent is a contiguous slot run: write it as one
                                                             // coalesced A-pass / verify / B-pass instead of paying
                                                             // per-slot mirror round trips.
                let payloads: Vec<&[u8]> = (0..extent.len)
                    .flat_map(|i| {
                        let frag =
                            &data[i as usize * FRAGMENT_SIZE..(i as usize + 1) * FRAGMENT_SIZE];
                        [&frag[..half.min(frag.len())], &frag[half.min(frag.len())..]]
                    })
                    .collect();
                stable.write_batch(2 * extent.start, &payloads, mode)?;
            }
        }
        Ok(())
    }

    // ---- batched transfer (per-spindle scheduler) --------------------

    /// Enters batch clock accounting on the underlying spindle: virtual
    /// time for subsequent operations accumulates on this disk's private
    /// timeline and is published to the shared clock only at the matching
    /// [`Self::end_batch`]. A coordinator batching several disk servers
    /// this way gets makespan (max-over-spindles) accounting, the way
    /// truly parallel hardware behaves. Batched operations never read the
    /// shared clock, so worker threads driving different disk servers
    /// remain deterministic.
    pub fn begin_batch(&mut self) {
        self.disk.begin_batch();
    }

    /// Leaves batch accounting and publishes this spindle's finish time.
    pub fn end_batch(&mut self) {
        self.disk.end_batch();
    }

    /// Reads a batch of extents through the per-spindle scheduler: the
    /// requests are sorted into a C-SCAN elevator sweep from the current
    /// head position and physically adjacent requests are merged, so each
    /// merged run costs one disk reference (or zero when cached). Results
    /// are returned in **input order** as zero-copy slices of the run
    /// transfers.
    ///
    /// Requests must not overlap one another.
    ///
    /// # Errors
    ///
    /// Propagates device failures; see [`DiskServiceError`].
    pub fn get_batch(&mut self, extents: &[Extent]) -> Result<Vec<BlockBuf>, DiskServiceError> {
        for e in extents {
            self.check_extent(*e)?;
        }
        let runs = order_and_merge(self.disk.head(), extents, &mut self.scheduler);
        let mut out: Vec<Option<BlockBuf>> = vec![None; extents.len()];
        for run in runs {
            let data = self.get_main(run.extent)?;
            for (idx, off) in run.parts {
                out[idx] = Some(data.slice(off..off + extents[idx].len_bytes()));
            }
        }
        Ok(out
            .into_iter()
            .map(|b| b.expect("scheduler serves every request"))
            .collect())
    }

    /// Writes a batch of `(extent, data)` pairs to main storage through
    /// the per-spindle scheduler. Adjacent requests are merged into single
    /// disk references; when the buffers are views of one allocation (as
    /// coalesced flushes produce) the merged transfer is rejoined without
    /// copying via [`BlockBuf::try_concat`].
    ///
    /// Batched writes go to the main location only (the delayed-write
    /// flush path); use [`Self::put`] for stable-storage policies.
    ///
    /// # Errors
    ///
    /// [`DiskServiceError::SizeMismatch`] if any buffer does not exactly
    /// fill its extent; otherwise device failures.
    pub fn put_batch(&mut self, requests: &[(Extent, BlockBuf)]) -> Result<(), DiskServiceError> {
        for (e, d) in requests {
            self.check_extent(*e)?;
            if d.len() != e.len_bytes() {
                return Err(DiskServiceError::SizeMismatch {
                    expected: e.len_bytes(),
                    got: d.len(),
                });
            }
        }
        let extents: Vec<Extent> = requests.iter().map(|(e, _)| *e).collect();
        let runs = order_and_merge(self.disk.head(), &extents, &mut self.scheduler);
        for run in runs {
            if let [(idx, _)] = run.parts[..] {
                self.put_main_buf(run.extent, requests[idx].1.clone())?;
                continue;
            }
            let bufs: Vec<BlockBuf> = run
                .parts
                .iter()
                .map(|&(i, _)| requests[i].1.clone())
                .collect();
            let joined = match BlockBuf::try_concat(&bufs) {
                Some(j) => j,
                None => {
                    let mut data = Vec::with_capacity(run.extent.len_bytes());
                    for b in &bufs {
                        data.extend_from_slice(b);
                    }
                    BlockBuf::from(data)
                }
            };
            self.put_main_buf(run.extent, joined)?;
        }
        Ok(())
    }

    /// Main-location write that keeps the cache write-update zero-copy:
    /// cached fragments become views of the caller's buffer.
    fn put_main_buf(&mut self, extent: Extent, data: BlockBuf) -> Result<(), DiskServiceError> {
        self.disk.write_sectors(extent.start, &data)?;
        if let Some(cache) = &mut self.cache {
            let geom = self.disk.geometry();
            for (i, f) in (extent.start..extent.end()).enumerate() {
                let a = i * FRAGMENT_SIZE;
                cache.fill_fragment(
                    geom.track_of(f),
                    geom.sector_in_track(f),
                    data.slice(a..a + FRAGMENT_SIZE),
                );
            }
        }
        Ok(())
    }

    /// Discards cached state (the track cache) without running crash
    /// recovery. Unlike [`Self::recover`] this performs no stable-storage
    /// scan and touches nothing on disk — it is how benchmarks and cache
    /// eviction cold-start reads.
    pub fn drop_caches(&mut self) {
        if let Some(cache) = &mut self.cache {
            cache.clear();
        }
    }

    /// Flushes deferred stable writes (`flush-block`).
    ///
    /// # Errors
    ///
    /// Propagates device failures from the stable mirrors.
    pub fn flush(&mut self) -> Result<(), DiskServiceError> {
        if let Some(stable) = &mut self.stable {
            stable.flush_deferred()?;
        }
        Ok(())
    }

    /// Resets the free-space state to "everything free" and re-marks the
    /// given extents as allocated, rebuilding the free-extent index.
    ///
    /// Used by the file service after a crash: the in-memory bitmap is
    /// reconstructed by walking the directory and every file index table —
    /// the moral equivalent of an fsck pass.
    ///
    /// # Panics
    ///
    /// Panics if the extents overlap each other (the on-disk metadata was
    /// corrupt in a way the caller should have detected).
    pub fn rebuild_allocation<I>(&mut self, allocated: I)
    where
        I: IntoIterator<Item = Extent>,
    {
        self.bitmap = Bitmap::new_all_free(self.disk.geometry().total_sectors());
        for e in allocated {
            self.bitmap.mark_allocated(e.start, e.len);
        }
        self.index.rebuild_from(&self.bitmap);
    }

    /// Re-marks `extent` as allocated if it is currently entirely free.
    /// Returns whether the pin took effect.
    ///
    /// Used by transaction recovery: the allocation rebuild only sees
    /// blocks referenced from file index tables, so the tentative blocks
    /// named by redo records must be pinned again before being replayed.
    pub fn repin_extent(&mut self, extent: Extent) -> bool {
        if extent.end() <= self.bitmap.total_fragments()
            && self.bitmap.run_is_free(extent.start, extent.len)
        {
            self.bitmap.mark_allocated(extent.start, extent.len);
            self.index.remove_overlapping(extent);
            true
        } else {
            false
        }
    }

    /// Runs stable-storage recovery after a crash; returns unrecoverable
    /// stable slots.
    ///
    /// # Errors
    ///
    /// Propagates device failures encountered while repairing mirrors.
    pub fn recover(&mut self) -> Result<Vec<FragmentAddr>, DiskServiceError> {
        self.disk.repair();
        if let Some(cache) = &mut self.cache {
            cache.clear();
        }
        match &mut self.stable {
            Some(s) => Ok(s.recover()?),
            None => Ok(Vec::new()),
        }
    }

    // ---- self-healing (scrub + repair) -------------------------------

    /// Read-only view of the allocation bitmap — fsck cross-checks it
    /// against the extents reachable from file metadata to find leaked
    /// fragments and double allocations.
    pub fn bitmap(&self) -> &Bitmap {
        &self.bitmap
    }

    /// Scrub pass over `extents`: verifies every sector on the *platter*
    /// (deliberately bypassing the track cache — a cached good copy must
    /// not mask latent media damage) and returns all faults found. The
    /// requests are routed through the per-spindle elevator like any other
    /// batch, so a scrub sweep is coalesced runs in C-SCAN order, not
    /// random single-sector probes.
    ///
    /// # Errors
    ///
    /// [`DiskServiceError::BadExtent`] for an extent beyond the disk, or a
    /// crashed-disk error; per-sector faults are the *result*, not errors.
    pub fn verify_extents(
        &mut self,
        extents: &[Extent],
    ) -> Result<Vec<SectorFault>, DiskServiceError> {
        for e in extents {
            self.check_extent(*e)?;
        }
        let runs = order_and_merge(self.disk.head(), extents, &mut self.scheduler);
        let mut faults = Vec::new();
        for run in runs {
            faults.extend(self.disk.scan_sectors(run.extent.start, run.extent.len)?);
        }
        faults.sort_by_key(|f| f.addr);
        Ok(faults)
    }

    /// Read-repair of one fragment from its stable-storage copy: fetches
    /// the mirrored record pair and rewrites the main location. The write
    /// reassigns a bad sector to a spare (persistent remap), so the
    /// repaired fragment is readable at its original address afterwards.
    /// Returns `Ok(false)` if no stable store is configured.
    ///
    /// # Errors
    ///
    /// [`DiskError::StableLost`](rhodos_simdisk::DiskError::StableLost)
    /// (wrapped) when the stable copy is itself unreadable — the fault is
    /// unrecoverable at this layer; other device failures.
    pub fn repair_fragment_from_stable(
        &mut self,
        frag: FragmentAddr,
    ) -> Result<bool, DiskServiceError> {
        if self.stable.is_none() {
            return Ok(false);
        }
        let extent = Extent::new(frag, 1);
        let good = self.get_stable(extent)?;
        self.put(extent, &good, StablePolicy::None)?;
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rhodos_simdisk::SECTOR_SIZE;

    fn svc() -> DiskService {
        DiskService::with_stable(
            DiskGeometry::small(),
            LatencyModel::default(),
            SimClock::new(),
            DiskServiceConfig::default(),
        )
    }

    fn svc_nocache() -> DiskService {
        DiskService::new(
            DiskGeometry::small(),
            LatencyModel::default(),
            SimClock::new(),
            DiskServiceConfig {
                track_readahead: false,
                cache_tracks: 0,
            },
        )
    }

    #[test]
    fn block_is_four_contiguous_fragments() {
        let mut s = svc();
        let b = s.allocate_block().unwrap();
        assert_eq!(b.len, FRAGS_PER_BLOCK);
    }

    #[test]
    fn put_get_round_trip() {
        let mut s = svc();
        let e = s.allocate_contiguous(3).unwrap();
        let data: Vec<u8> = (0..3 * FRAGMENT_SIZE).map(|i| (i % 256) as u8).collect();
        s.put(e, &data, StablePolicy::None).unwrap();
        assert_eq!(s.get(e).unwrap(), data);
    }

    #[test]
    fn size_mismatch_rejected() {
        let mut s = svc();
        let e = s.allocate_contiguous(2).unwrap();
        let err = s.put(e, &[0u8; 17], StablePolicy::None).unwrap_err();
        assert!(matches!(err, DiskServiceError::SizeMismatch { .. }));
    }

    #[test]
    fn contiguous_get_is_single_disk_reference() {
        let mut s = svc_nocache();
        let e = s.allocate_contiguous(8).unwrap();
        let data = vec![1u8; 8 * FRAGMENT_SIZE];
        s.put(e, &data, StablePolicy::None).unwrap();
        let before = s.stats().disk.read_ops;
        s.get(e).unwrap();
        assert_eq!(s.stats().disk.read_ops - before, 1);
    }

    #[test]
    fn cached_get_takes_no_disk_reference() {
        let mut s = svc();
        let e = s.allocate_contiguous(4).unwrap();
        let data = vec![2u8; 4 * FRAGMENT_SIZE];
        s.put(e, &data, StablePolicy::None).unwrap();
        let before = s.stats().disk.read_ops;
        assert_eq!(s.get(e).unwrap(), data); // write-update made it resident
        assert_eq!(s.stats().disk.read_ops - before, 0);
    }

    #[test]
    fn verify_extents_finds_latent_faults_behind_the_cache() {
        let mut s = svc();
        let e = s.allocate_contiguous(4).unwrap();
        let data = vec![7u8; 4 * FRAGMENT_SIZE];
        s.put(e, &data, StablePolicy::None).unwrap();
        // Cached reads still succeed after silent platter corruption...
        s.disk_mut().silently_corrupt_sector(e.start + 1).unwrap();
        assert_eq!(s.get(e).unwrap(), data);
        // ...but the scrub scan inspects the platter itself.
        let faults = s.verify_extents(&[e]).unwrap();
        assert_eq!(faults.len(), 1);
        assert_eq!(faults[0].addr, e.start + 1);
        assert_eq!(
            faults[0].kind,
            rhodos_simdisk::SectorFaultKind::ChecksumMismatch
        );
    }

    #[test]
    fn verify_extents_coalesces_runs_through_the_scheduler() {
        let mut s = svc_nocache();
        let e = s.allocate_contiguous(8).unwrap();
        let halves = [Extent::new(e.start, 4), Extent::new(e.start + 4, 4)];
        let before = s.stats().disk.read_ops;
        s.verify_extents(&halves).unwrap();
        // Adjacent extents merge into one scan reference.
        assert_eq!(s.stats().disk.read_ops - before, 1);
        assert!(s.stats().scheduler.merged_requests >= 1);
    }

    #[test]
    fn repair_fragment_from_stable_heals_bad_sector() {
        let mut s = svc();
        let e = s.allocate_contiguous(1).unwrap();
        let data = vec![9u8; FRAGMENT_SIZE];
        s.put(
            e,
            &data,
            StablePolicy::OriginalAndStable(StableWriteMode::Sync),
        )
        .unwrap();
        s.disk_mut().corrupt_sector(e.start).unwrap();
        assert!(s.repair_fragment_from_stable(e.start).unwrap());
        // The bad sector was reassigned to a spare; the fragment reads
        // again at its original address with the stable copy's content.
        assert!(!s.disk_mut().sector_faulty(e.start));
        assert_eq!(s.stats().disk.remapped_sectors, 1);
        s.drop_caches();
        assert_eq!(s.get(e).unwrap(), data);
    }

    #[test]
    fn repair_fragment_without_stable_reports_false() {
        let mut s = svc_nocache();
        let e = s.allocate_contiguous(1).unwrap();
        assert!(!s.repair_fragment_from_stable(e.start).unwrap());
    }

    #[test]
    fn track_readahead_serves_neighbours() {
        let mut s = svc();
        // Two separate extents on the same track.
        let a = s.allocate_contiguous(2).unwrap();
        let b = s.allocate_contiguous(2).unwrap();
        assert_eq!(
            s.geometry().track_of(a.start),
            s.geometry().track_of(b.start),
            "extents should share a track in this geometry"
        );
        // Fill from disk (cache is cold for reads — put updates cache, so
        // clear it first to model a cold start).
        s.put(a, &vec![1u8; a.len_bytes()], StablePolicy::None)
            .unwrap();
        s.put(b, &vec![2u8; b.len_bytes()], StablePolicy::None)
            .unwrap();
        s.recover().unwrap(); // clears the cache
        let r0 = s.stats().disk.read_ops;
        s.get(a).unwrap();
        let after_first = s.stats().disk.read_ops;
        s.get(b).unwrap(); // should be a read-ahead hit
        let after_second = s.stats().disk.read_ops;
        assert!(after_first > r0);
        assert_eq!(after_second, after_first, "read-ahead should serve b");
    }

    #[test]
    fn stable_only_put_leaves_main_untouched() {
        let mut s = svc();
        let e = s.allocate_contiguous(1).unwrap();
        let original = vec![3u8; FRAGMENT_SIZE];
        s.put(e, &original, StablePolicy::None).unwrap();
        let shadow = vec![4u8; FRAGMENT_SIZE];
        s.put(e, &shadow, StablePolicy::StableOnly(StableWriteMode::Sync))
            .unwrap();
        assert_eq!(s.get(e).unwrap(), original);
        assert_eq!(s.get_from(e, ReadSource::Stable).unwrap(), shadow);
    }

    #[test]
    fn original_and_stable_writes_both() {
        let mut s = svc();
        let e = s.allocate_contiguous(2).unwrap();
        let data: Vec<u8> = (0..2 * FRAGMENT_SIZE)
            .map(|i| (i * 7 % 251) as u8)
            .collect();
        s.put(
            e,
            &data,
            StablePolicy::OriginalAndStable(StableWriteMode::Sync),
        )
        .unwrap();
        assert_eq!(s.get(e).unwrap(), data);
        assert_eq!(s.get_from(e, ReadSource::Stable).unwrap(), data);
    }

    #[test]
    fn stable_requires_configuration() {
        let mut s = svc_nocache();
        let e = s.allocate_contiguous(1).unwrap();
        let err = s
            .put(
                e,
                &vec![0u8; FRAGMENT_SIZE],
                StablePolicy::StableOnly(StableWriteMode::Sync),
            )
            .unwrap_err();
        assert_eq!(err, DiskServiceError::NoStableStorage);
    }

    #[test]
    fn deferred_stable_write_flushes() {
        let mut s = svc();
        let e = s.allocate_contiguous(1).unwrap();
        s.put(
            e,
            &vec![9u8; FRAGMENT_SIZE],
            StablePolicy::OriginalAndStable(StableWriteMode::Deferred),
        )
        .unwrap();
        assert!(s.stable_mut().unwrap().pending_writes() > 0);
        s.flush().unwrap();
        assert_eq!(s.stable_mut().unwrap().pending_writes(), 0);
    }

    #[test]
    fn allocate_scattered_covers_fragmented_disk() {
        // A tiny 32-fragment disk that we can fragment completely.
        let mut s = DiskService::new(
            DiskGeometry::new(1, 32),
            LatencyModel::instant(),
            SimClock::new(),
            DiskServiceConfig {
                track_readahead: false,
                cache_tracks: 0,
            },
        );
        // Fragment the disk: allocate pairs covering everything, free alternating.
        let runs: Vec<Extent> = (0..16).map(|_| s.allocate_contiguous(2).unwrap()).collect();
        for (i, r) in runs.iter().enumerate() {
            if i % 2 == 0 {
                s.free(*r).unwrap();
            }
        }
        // 16 fragments free but max run is 2: scattered allocation works.
        let extents = s.allocate_scattered(10).unwrap();
        let total: u64 = extents.iter().map(|e| e.len).sum();
        assert_eq!(total, 10);
        assert!(extents.len() >= 5);
    }

    #[test]
    fn scattered_failure_rolls_back() {
        let mut s = svc_nocache();
        let free_before = s.free_fragments();
        let err = s.allocate_scattered(free_before + 1).unwrap_err();
        assert!(matches!(err, DiskServiceError::NoSpace { .. }));
        assert_eq!(s.free_fragments(), free_before);
    }

    #[test]
    fn free_invalidates_cache() {
        let mut s = svc();
        let e = s.allocate_contiguous(1).unwrap();
        s.put(e, &vec![5u8; FRAGMENT_SIZE], StablePolicy::None)
            .unwrap();
        s.free(e).unwrap();
        // Re-allocating the same extent and reading it must go to disk,
        // not serve the stale cached value.
        let e2 = s.allocate_contiguous(1).unwrap();
        // (Allocation order makes e2 == e on an empty disk region.)
        let _ = s.get(e2).unwrap();
        // No assertion on contents (disk still has old bytes) — the point
        // is that the service didn't panic and the read hit the disk.
        assert!(s.stats().cache.fragment_misses > 0);
    }

    #[test]
    fn stable_survives_main_disk_loss() {
        let mut s = svc();
        let e = s.allocate_contiguous(1).unwrap();
        let data = vec![0xCD; FRAGMENT_SIZE];
        s.put(
            e,
            &data,
            StablePolicy::OriginalAndStable(StableWriteMode::Sync),
        )
        .unwrap();
        s.disk_mut().corrupt_sector(e.start).unwrap();
        s.recover().unwrap(); // drop the cached copy; bad sector persists
        assert!(matches!(s.get(e), Err(DiskServiceError::Disk(_))));
        assert_eq!(s.get_from(e, ReadSource::Stable).unwrap(), data);
    }

    #[test]
    fn put_charges_exactly_one_write_reference() {
        let mut s = svc_nocache();
        let e = s.allocate_contiguous(16).unwrap();
        let before = s.stats().disk.write_ops;
        s.put(e, &vec![1u8; 16 * FRAGMENT_SIZE], StablePolicy::None)
            .unwrap();
        assert_eq!(s.stats().disk.write_ops - before, 1);
    }

    #[test]
    fn get_batch_merges_adjacent_into_one_reference() {
        let mut s = svc_nocache();
        let e = s.allocate_contiguous(12).unwrap();
        let data: Vec<u8> = (0..12 * FRAGMENT_SIZE).map(|i| (i % 251) as u8).collect();
        s.put(e, &data, StablePolicy::None).unwrap();
        // Split into three block-sized requests, submitted out of order.
        let reqs = [
            Extent::new(e.start + 8, 4),
            Extent::new(e.start, 4),
            Extent::new(e.start + 4, 4),
        ];
        let before = s.stats().disk.read_ops;
        let got = s.get_batch(&reqs).unwrap();
        assert_eq!(
            s.stats().disk.read_ops - before,
            1,
            "merged to one reference"
        );
        // Results come back in input order.
        for (req, buf) in reqs.iter().zip(&got) {
            let off = (req.start - e.start) as usize * FRAGMENT_SIZE;
            assert_eq!(&buf[..], &data[off..off + req.len_bytes()]);
        }
        assert_eq!(s.stats().scheduler.merged_requests, 2);
    }

    #[test]
    fn put_batch_merges_and_round_trips() {
        let mut s = svc_nocache();
        let e = s.allocate_contiguous(8).unwrap();
        let lo = BlockBuf::from(vec![0xAAu8; 4 * FRAGMENT_SIZE]);
        let hi = BlockBuf::from(vec![0xBBu8; 4 * FRAGMENT_SIZE]);
        let before = s.stats().disk.write_ops;
        s.put_batch(&[
            (Extent::new(e.start + 4, 4), hi.clone()),
            (Extent::new(e.start, 4), lo.clone()),
        ])
        .unwrap();
        assert_eq!(
            s.stats().disk.write_ops - before,
            1,
            "merged to one reference"
        );
        assert_eq!(s.get(Extent::new(e.start, 4)).unwrap(), lo);
        assert_eq!(s.get(Extent::new(e.start + 4, 4)).unwrap(), hi);
    }

    #[test]
    fn put_batch_concat_of_sliced_views_is_copy_free() {
        let mut s = svc_nocache();
        let e = s.allocate_contiguous(8).unwrap();
        // One allocation sliced into two adjacent views — the coalesced
        // flush shape. try_concat rejoins them without copying.
        let whole = BlockBuf::from(
            (0..8 * FRAGMENT_SIZE)
                .map(|i| (i % 83) as u8)
                .collect::<Vec<u8>>(),
        );
        let a = whole.slice(0..4 * FRAGMENT_SIZE);
        let b = whole.slice(4 * FRAGMENT_SIZE..8 * FRAGMENT_SIZE);
        s.put_batch(&[
            (Extent::new(e.start, 4), a),
            (Extent::new(e.start + 4, 4), b),
        ])
        .unwrap();
        assert_eq!(s.get(e).unwrap(), whole);
    }

    #[test]
    fn drop_caches_forces_next_read_to_disk_without_stable_scan() {
        let mut s = svc();
        let e = s.allocate_contiguous(4).unwrap();
        s.put(e, &vec![7u8; 4 * FRAGMENT_SIZE], StablePolicy::None)
            .unwrap();
        let stable_reads_before = s.stats().stable.read_ops + s.stats().stable.sector_reads;
        s.drop_caches();
        let r0 = s.stats().disk.read_ops;
        s.get(e).unwrap();
        assert!(s.stats().disk.read_ops > r0, "read went to disk");
        let stable_reads_after = s.stats().stable.read_ops + s.stats().stable.sector_reads;
        assert_eq!(stable_reads_before, stable_reads_after, "no stable scan");
    }

    #[test]
    fn stable_payload_constant_matches() {
        // The put() split assumes STABLE_PAYLOAD == SECTOR_SIZE - 20.
        assert_eq!(rhodos_simdisk::SECTOR_SIZE - 20, SECTOR_SIZE - 20);
        assert_eq!(rhodos_simdisk::SECTOR_SIZE - 20, 2028usize);
    }
}
