//! The allocation bitmap — ground truth for free space.
//!
//! "Each disk server maintains a bitmap of the disk to which it is
//! associated. A bitmap is updated when block(s) or fragment(s) are freed."
//! (§4). The bitmap is authoritative; the 64 × 64
//! [`FreeExtentArray`](crate::FreeExtentArray) is an index built by
//! scanning it. The bitmap's naive first-fit scan also serves as the
//! baseline in experiment **E6** (free-space index vs. bitmap scan).

use crate::units::{Extent, FragmentAddr};

/// One bit per fragment; `1` = free.
///
/// # Example
///
/// ```
/// use rhodos_disk_service::Bitmap;
///
/// let mut bm = Bitmap::new_all_free(128);
/// let run = bm.find_free_run_first_fit(10).unwrap();
/// bm.mark_allocated(run, 10);
/// assert_eq!(bm.free_fragments(), 118);
/// ```
#[derive(Debug, Clone)]
pub struct Bitmap {
    words: Vec<u64>,
    total: u64,
    free: u64,
}

impl Bitmap {
    /// Creates a bitmap of `total` fragments, all free.
    pub fn new_all_free(total: u64) -> Self {
        let words = vec![u64::MAX; total.div_ceil(64) as usize];
        let mut bm = Self {
            words,
            total,
            free: total,
        };
        // Clear padding bits past `total`.
        for i in total..(bm.words.len() as u64 * 64) {
            bm.clear_bit(i);
        }
        bm
    }

    fn set_bit(&mut self, i: u64) {
        self.words[(i / 64) as usize] |= 1u64 << (i % 64);
    }

    fn clear_bit(&mut self, i: u64) {
        self.words[(i / 64) as usize] &= !(1u64 << (i % 64));
    }

    fn bit(&self, i: u64) -> bool {
        (self.words[(i / 64) as usize] >> (i % 64)) & 1 == 1
    }

    /// Total fragments tracked.
    pub fn total_fragments(&self) -> u64 {
        self.total
    }

    /// Fragments currently free.
    pub fn free_fragments(&self) -> u64 {
        self.free
    }

    /// Whether fragment `addr` is free.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    pub fn is_free(&self, addr: FragmentAddr) -> bool {
        assert!(addr < self.total, "fragment {addr} out of range");
        self.bit(addr)
    }

    /// Whether the whole run `[start, start+len)` is free. Word-wise:
    /// O(len / 64), so validating large indexed runs is cheap.
    pub fn run_is_free(&self, start: FragmentAddr, len: u64) -> bool {
        if len == 0 || start + len > self.total {
            return len == 0 && start <= self.total;
        }
        let end = start + len; // exclusive
        let first_word = (start / 64) as usize;
        let last_word = ((end - 1) / 64) as usize;
        if first_word == last_word {
            let lo = start % 64;
            let n = end - start;
            let mask = if n == 64 {
                u64::MAX
            } else {
                ((1u64 << n) - 1) << lo
            };
            return self.words[first_word] & mask == mask;
        }
        // Head partial word.
        let lo = start % 64;
        let head_mask = u64::MAX << lo;
        if self.words[first_word] & head_mask != head_mask {
            return false;
        }
        // Full middle words.
        for w in first_word + 1..last_word {
            if self.words[w] != u64::MAX {
                return false;
            }
        }
        // Tail partial word.
        let hi = end - last_word as u64 * 64; // 1..=64 bits used
        let tail_mask = if hi == 64 { u64::MAX } else { (1u64 << hi) - 1 };
        self.words[last_word] & tail_mask == tail_mask
    }

    /// Marks `len` fragments from `start` as allocated.
    ///
    /// # Panics
    ///
    /// Panics if any fragment in the run is already allocated — a
    /// double-allocation is always a logic error in the disk server.
    pub fn mark_allocated(&mut self, start: FragmentAddr, len: u64) {
        for i in start..start + len {
            assert!(self.bit(i), "fragment {i} already allocated");
            self.clear_bit(i);
        }
        self.free -= len;
    }

    /// Marks `len` fragments from `start` as free.
    ///
    /// # Panics
    ///
    /// Panics if any fragment in the run is already free (double free).
    pub fn mark_free(&mut self, start: FragmentAddr, len: u64) {
        for i in start..start + len {
            assert!(!self.bit(i), "fragment {i} already free (double free)");
            self.set_bit(i);
        }
        self.free += len;
    }

    /// First-fit scan for a run of `len` free fragments. `O(total)` — the
    /// baseline the free-extent array is designed to beat.
    pub fn find_free_run_first_fit(&self, len: u64) -> Option<FragmentAddr> {
        if len == 0 || len > self.total {
            return None;
        }
        let mut run_start = 0u64;
        let mut run_len = 0u64;
        for i in 0..self.total {
            if self.bit(i) {
                if run_len == 0 {
                    run_start = i;
                }
                run_len += 1;
                if run_len == len {
                    return Some(run_start);
                }
            } else {
                run_len = 0;
            }
        }
        None
    }

    /// Extends `start` left and right to the maximal free run containing it.
    ///
    /// Used after a free to discover the coalesced run that should be
    /// indexed in the free-extent array.
    ///
    /// # Panics
    ///
    /// Panics if `start` itself is not free.
    pub fn maximal_free_run_containing(&self, start: FragmentAddr) -> Extent {
        assert!(self.is_free(start), "fragment {start} is not free");
        // Word-wise extension in both directions.
        let mut lo = start;
        while lo > 0 {
            if lo.is_multiple_of(64) && lo >= 64 && self.words[(lo / 64 - 1) as usize] == u64::MAX {
                lo -= 64;
            } else if self.bit(lo - 1) {
                lo -= 1;
            } else {
                break;
            }
        }
        let mut hi = start + 1;
        while hi < self.total {
            if hi.is_multiple_of(64)
                && hi + 64 <= self.total
                && self.words[(hi / 64) as usize] == u64::MAX
            {
                hi += 64;
            } else if self.bit(hi) {
                hi += 1;
            } else {
                break;
            }
        }
        Extent::new(lo, hi - lo)
    }

    /// Iterates over all maximal free runs, in address order.
    pub fn free_runs(&self) -> Vec<Extent> {
        let mut runs = Vec::new();
        let mut i = 0;
        while i < self.total {
            if self.bit(i) {
                let run = self.maximal_free_run_containing(i);
                i = run.end();
                runs.push(run);
            } else {
                i += 1;
            }
        }
        runs
    }

    /// Length of the largest free run (0 if the disk is full).
    pub fn largest_free_run(&self) -> u64 {
        self.free_runs().iter().map(|e| e.len).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_bitmap_is_all_free() {
        let bm = Bitmap::new_all_free(100);
        assert_eq!(bm.free_fragments(), 100);
        assert!(bm.run_is_free(0, 100));
        assert!(!bm.run_is_free(0, 101));
    }

    #[test]
    fn allocate_free_round_trip() {
        let mut bm = Bitmap::new_all_free(64);
        bm.mark_allocated(10, 4);
        assert!(!bm.is_free(10));
        assert!(!bm.is_free(13));
        assert!(bm.is_free(14));
        assert_eq!(bm.free_fragments(), 60);
        bm.mark_free(10, 4);
        assert_eq!(bm.free_fragments(), 64);
    }

    #[test]
    #[should_panic(expected = "already allocated")]
    fn double_allocation_panics() {
        let mut bm = Bitmap::new_all_free(16);
        bm.mark_allocated(0, 4);
        bm.mark_allocated(2, 2);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut bm = Bitmap::new_all_free(16);
        bm.mark_free(0, 1);
    }

    #[test]
    fn first_fit_finds_earliest_gap() {
        let mut bm = Bitmap::new_all_free(32);
        bm.mark_allocated(0, 8);
        bm.mark_allocated(12, 4);
        // Free: [8..12) and [16..32)
        assert_eq!(bm.find_free_run_first_fit(4), Some(8));
        assert_eq!(bm.find_free_run_first_fit(5), Some(16));
        assert_eq!(bm.find_free_run_first_fit(16), Some(16));
        assert_eq!(bm.find_free_run_first_fit(17), None);
    }

    #[test]
    fn coalescing_discovery() {
        let mut bm = Bitmap::new_all_free(32);
        bm.mark_allocated(0, 32);
        bm.mark_free(8, 4);
        bm.mark_free(12, 4);
        let run = bm.maximal_free_run_containing(12);
        assert_eq!(run, Extent::new(8, 8));
    }

    #[test]
    fn free_runs_enumeration() {
        let mut bm = Bitmap::new_all_free(16);
        bm.mark_allocated(4, 4);
        let runs = bm.free_runs();
        assert_eq!(runs, vec![Extent::new(0, 4), Extent::new(8, 8)]);
        assert_eq!(bm.largest_free_run(), 8);
    }

    #[test]
    fn non_multiple_of_64_sizes_have_no_phantom_free_bits() {
        let bm = Bitmap::new_all_free(70);
        assert_eq!(bm.free_fragments(), 70);
        assert_eq!(bm.find_free_run_first_fit(71), None);
        assert_eq!(bm.free_runs(), vec![Extent::new(0, 70)]);
    }
}
