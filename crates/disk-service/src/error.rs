//! Error type for the disk service.

use rhodos_simdisk::DiskError;
use std::error::Error;
use std::fmt;

/// Errors returned by [`DiskService`](crate::DiskService) operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DiskServiceError {
    /// Not enough (contiguous) free space for the request.
    NoSpace {
        /// Fragments requested.
        requested: u64,
        /// Largest contiguous free run available.
        largest_free: u64,
        /// Total free fragments.
        total_free: u64,
    },
    /// A stable-storage operation was requested but this disk server was
    /// configured without stable storage.
    NoStableStorage,
    /// The supplied buffer does not match the extent size.
    SizeMismatch {
        /// Bytes the extent can hold.
        expected: usize,
        /// Bytes supplied.
        got: usize,
    },
    /// The extent refers to fragments outside the disk.
    BadExtent,
    /// Underlying device failure.
    Disk(DiskError),
}

impl fmt::Display for DiskServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiskServiceError::NoSpace {
                requested,
                largest_free,
                total_free,
            } => write!(
                f,
                "no space for {requested} contiguous fragments (largest run {largest_free}, {total_free} free)"
            ),
            DiskServiceError::NoStableStorage => {
                write!(f, "disk server has no stable storage configured")
            }
            DiskServiceError::SizeMismatch { expected, got } => {
                write!(f, "buffer of {got} bytes does not fill extent of {expected} bytes")
            }
            DiskServiceError::BadExtent => write!(f, "extent lies outside the disk"),
            DiskServiceError::Disk(e) => write!(f, "disk failure: {e}"),
        }
    }
}

impl Error for DiskServiceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DiskServiceError::Disk(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DiskError> for DiskServiceError {
    fn from(e: DiskError) -> Self {
        DiskServiceError::Disk(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = DiskServiceError::NoSpace {
            requested: 8,
            largest_free: 4,
            total_free: 12,
        };
        let s = e.to_string();
        assert!(s.contains('8') && s.contains('4') && s.contains("12"));
    }

    #[test]
    fn source_chains_to_disk_error() {
        let e = DiskServiceError::from(DiskError::Crashed);
        assert!(e.source().is_some());
    }
}
