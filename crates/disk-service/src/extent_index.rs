//! The 64 × 64 free-extent array (§4).
//!
//! "The disk server also maintains a two dimensional array of the order of
//! 64 rows and 64 columns for the maintenance of free spaces in the disk.
//! ... The first row stores the references to single free fragments
//! available on the disk. Each element of the second row is a reference to
//! a group of two contiguous free fragments in the disk" and so on. "The
//! objective of this array is to check quickly whether a requested number
//! of contiguous fragments or blocks are available or not."
//!
//! Design points the paper leaves open, and our choices:
//!
//! * Runs longer than 64 fragments: indexed in the last row (row 63), with
//!   the true length kept alongside the reference.
//! * Row overflow (more than 64 runs of one size): surplus runs are simply
//!   not indexed. They are rediscovered by the periodic/triggered bitmap
//!   scan ("initialization and subsequent updation of this array is carried
//!   out by scanning the bitmap"), which [`FreeExtentArray::rebuild_from`]
//!   implements.
//! * Staleness: entries are validated against the bitmap before use and
//!   dropped lazily if the referenced run is no longer entirely free.

use crate::bitmap::Bitmap;
use crate::units::{Extent, FragmentAddr};

/// Rows in the array; row `r` indexes runs of exactly `r + 1` fragments
/// (last row: `>= ROWS` fragments).
pub const ROWS: usize = 64;

/// Maximum references kept per row.
pub const COLS: usize = 64;

/// Statistics on how allocations were satisfied — the measurements behind
/// experiment **E6**.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExtentIndexStats {
    /// Allocations satisfied directly from the array.
    pub index_hits: u64,
    /// Allocations that had to fall back to a bitmap scan.
    pub bitmap_fallbacks: u64,
    /// Stale references discarded during lookups.
    pub stale_dropped: u64,
    /// Full rebuilds performed.
    pub rebuilds: u64,
}

/// The free-extent index. The bitmap remains ground truth; this structure
/// answers "give me *n* contiguous fragments" in near-constant time.
///
/// # Example
///
/// ```
/// use rhodos_disk_service::{Bitmap, FreeExtentArray};
///
/// let mut bm = Bitmap::new_all_free(256);
/// let mut idx = FreeExtentArray::new();
/// idx.rebuild_from(&bm);
/// let run = idx.allocate(&mut bm, 8).unwrap();
/// assert_eq!(run.len, 8);
/// assert!(!bm.run_is_free(run.start, 1));
/// ```
#[derive(Debug, Clone)]
pub struct FreeExtentArray {
    /// `rows[r]` holds `(start, true_len)` references; for `r < ROWS-1`,
    /// `true_len == r + 1`.
    rows: Vec<Vec<(FragmentAddr, u64)>>,
    stats: ExtentIndexStats,
}

impl Default for FreeExtentArray {
    fn default() -> Self {
        Self::new()
    }
}

impl FreeExtentArray {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self {
            rows: vec![Vec::new(); ROWS],
            stats: ExtentIndexStats::default(),
        }
    }

    /// Usage statistics.
    pub fn stats(&self) -> ExtentIndexStats {
        self.stats
    }

    fn row_for(len: u64) -> usize {
        ((len - 1) as usize).min(ROWS - 1)
    }

    /// Number of indexed references (for diagnostics).
    pub fn indexed_runs(&self) -> usize {
        self.rows.iter().map(Vec::len).sum()
    }

    /// Rebuilds the index by scanning the bitmap, as the paper prescribes
    /// for initialisation and updates.
    pub fn rebuild_from(&mut self, bitmap: &Bitmap) {
        for row in &mut self.rows {
            row.clear();
        }
        for run in bitmap.free_runs() {
            self.insert_run(run);
        }
        self.stats.rebuilds += 1;
    }

    /// Indexes a free run (best effort: silently skipped if its row is
    /// full — the run remains discoverable via the bitmap).
    pub fn insert_run(&mut self, run: Extent) {
        let row = Self::row_for(run.len);
        if self.rows[row].len() < COLS {
            self.rows[row].push((run.start, run.len));
        }
    }

    /// Removes any indexed reference overlapping `extent` (used when the
    /// caller knows the entries became invalid, e.g. after a coalesce).
    pub fn remove_overlapping(&mut self, extent: Extent) {
        for row in &mut self.rows {
            row.retain(|&(start, len)| !Extent::new(start, len).overlaps(&extent));
        }
    }

    /// Allocates `len` contiguous fragments, preferring an exact-size run,
    /// then splitting the smallest adequate larger run; falls back to a
    /// bitmap first-fit scan (and records the fallback) when the index has
    /// no usable reference.
    ///
    /// On success the run is marked allocated in `bitmap` and any remainder
    /// of a split run is re-indexed. Returns `None` when no contiguous run
    /// of `len` exists on the disk at all.
    pub fn allocate(&mut self, bitmap: &mut Bitmap, len: u64) -> Option<Extent> {
        assert!(len > 0, "cannot allocate zero fragments");
        // Exact row first (only meaningful when len <= ROWS-1), then
        // larger. One pass per row: stale entries are dropped in place.
        let first_row = Self::row_for(len);
        for row in first_row..ROWS {
            let mut i = 0;
            let mut found = None;
            while i < self.rows[row].len() {
                let (start, rlen) = self.rows[row][i];
                if !bitmap.run_is_free(start, rlen) {
                    self.rows[row].swap_remove(i);
                    self.stats.stale_dropped += 1;
                    continue;
                }
                if rlen >= len {
                    found = Some(i);
                    break;
                }
                i += 1;
            }
            if let Some(i) = found {
                let (start, rlen) = self.rows[row].swap_remove(i);
                let run = Extent::new(start, rlen);
                let (head, rest) = run.split_at(len);
                bitmap.mark_allocated(head.start, head.len);
                if let Some(rest) = rest {
                    self.insert_run(rest);
                }
                self.stats.index_hits += 1;
                return Some(head);
            }
        }
        // Index miss: scan the bitmap and rebuild the index on the way.
        self.stats.bitmap_fallbacks += 1;
        let start = bitmap.find_free_run_first_fit(len)?;
        bitmap.mark_allocated(start, len);
        self.rebuild_from(bitmap);
        Some(Extent::new(start, len))
    }

    /// Allocates `len` contiguous fragments from the *highest-addressed*
    /// usable run — the placement policy for shadow pages, intention-log
    /// blocks and other metadata that must not fragment the low region
    /// where file data grows contiguously.
    pub fn allocate_top(&mut self, bitmap: &mut Bitmap, len: u64) -> Option<Extent> {
        assert!(len > 0, "cannot allocate zero fragments");
        // Find the usable run with the highest end address across all rows.
        let mut best: Option<(usize, usize, FragmentAddr, u64)> = None;
        for (row, entries) in self.rows.iter().enumerate() {
            for (col, &(start, rlen)) in entries.iter().enumerate() {
                if rlen >= len && bitmap.run_is_free(start, rlen) {
                    let better = match best {
                        Some((_, _, bstart, blen)) => start + rlen > bstart + blen,
                        None => true,
                    };
                    if better {
                        best = Some((row, col, start, rlen));
                    }
                }
            }
        }
        if let Some((row, col, start, rlen)) = best {
            self.rows[row].remove(col);
            let run = Extent::new(start, rlen);
            // Take the *tail* of the run.
            let tail = Extent::new(run.end() - len, len);
            bitmap.mark_allocated(tail.start, tail.len);
            if rlen > len {
                self.insert_run(Extent::new(start, rlen - len));
            }
            self.stats.index_hits += 1;
            return Some(tail);
        }
        // Fallback: bitmap scan for the last fitting run.
        self.stats.bitmap_fallbacks += 1;
        let run = bitmap
            .free_runs()
            .into_iter()
            .rev()
            .find(|r| r.len >= len)?;
        let tail = Extent::new(run.end() - len, len);
        bitmap.mark_allocated(tail.start, tail.len);
        self.rebuild_from(bitmap);
        Some(tail)
    }

    /// Frees `extent`: clears the bitmap, coalesces with free neighbours,
    /// and indexes the merged run.
    ///
    /// # Panics
    ///
    /// Panics (via the bitmap) on double free.
    pub fn free(&mut self, bitmap: &mut Bitmap, extent: Extent) {
        bitmap.mark_free(extent.start, extent.len);
        let merged = bitmap.maximal_free_run_containing(extent.start);
        // Neighbouring runs that were separately indexed are now part of
        // `merged`; drop them so the index holds the coalesced run once.
        self.remove_overlapping(merged);
        self.insert_run(merged);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(total: u64) -> (Bitmap, FreeExtentArray) {
        let bm = Bitmap::new_all_free(total);
        let mut idx = FreeExtentArray::new();
        idx.rebuild_from(&bm);
        (bm, idx)
    }

    #[test]
    fn allocate_marks_bitmap_and_reindexes_remainder() {
        let (mut bm, mut idx) = setup(128);
        let run = idx.allocate(&mut bm, 4).unwrap();
        assert_eq!(run.len, 4);
        assert!(!bm.run_is_free(run.start, 1));
        // Remainder is still allocatable without fallback.
        let before = idx.stats().bitmap_fallbacks;
        let run2 = idx.allocate(&mut bm, 100).unwrap();
        assert_eq!(run2.len, 100);
        assert_eq!(idx.stats().bitmap_fallbacks, before);
    }

    #[test]
    fn exact_row_preferred_over_split() {
        let (mut bm, mut idx) = setup(64);
        // Carve the disk into a 3-run and the rest.
        let a = idx.allocate(&mut bm, 3).unwrap();
        let _b = idx.allocate(&mut bm, 10).unwrap();
        idx.free(&mut bm, a); // a 3-run exists again, adjacent to nothing? It coalesces with nothing since neighbours allocated
        let got = idx.allocate(&mut bm, 3).unwrap();
        assert_eq!(got, a, "exact-size run should be reused");
    }

    #[test]
    fn free_coalesces_neighbours() {
        let (mut bm, mut idx) = setup(64);
        let a = idx.allocate(&mut bm, 8).unwrap();
        let b = idx.allocate(&mut bm, 8).unwrap();
        let c = idx.allocate(&mut bm, 8).unwrap();
        assert_eq!(b.start, a.end());
        assert_eq!(c.start, b.end());
        idx.free(&mut bm, a);
        idx.free(&mut bm, c);
        idx.free(&mut bm, b);
        // All 64 fragments are one run again.
        assert_eq!(bm.free_runs(), vec![Extent::new(0, 64)]);
        let whole = idx.allocate(&mut bm, 64).unwrap();
        assert_eq!(whole, Extent::new(0, 64));
    }

    #[test]
    fn exhaustion_returns_none() {
        let (mut bm, mut idx) = setup(16);
        assert!(idx.allocate(&mut bm, 16).is_some());
        assert!(idx.allocate(&mut bm, 1).is_none());
    }

    #[test]
    fn fragmented_disk_cannot_satisfy_large_contiguous_request() {
        let (mut bm, mut idx) = setup(32);
        // Allocate everything as 2-fragment runs, free every other one.
        let runs: Vec<Extent> = (0..16).map(|_| idx.allocate(&mut bm, 2).unwrap()).collect();
        for (i, run) in runs.iter().enumerate() {
            if i % 2 == 0 {
                idx.free(&mut bm, *run);
            }
        }
        assert_eq!(bm.free_fragments(), 16);
        assert!(idx.allocate(&mut bm, 4).is_none());
        assert!(idx.allocate(&mut bm, 2).is_some());
    }

    #[test]
    fn long_runs_live_in_last_row() {
        let (mut bm, mut idx) = setup(1000);
        // Whole-disk run (1000 > 64) must be allocatable via the index.
        let before = idx.stats().bitmap_fallbacks;
        let run = idx.allocate(&mut bm, 500).unwrap();
        assert_eq!(run.len, 500);
        assert_eq!(idx.stats().bitmap_fallbacks, before);
    }

    #[test]
    fn stale_entries_are_dropped_not_double_allocated() {
        let (mut bm, mut idx) = setup(64);
        // Make the index stale: allocate through the bitmap directly.
        bm.mark_allocated(0, 64);
        assert!(idx.allocate(&mut bm, 4).is_none());
        assert!(idx.stats().stale_dropped > 0 || idx.stats().bitmap_fallbacks > 0);
    }
}

#[cfg(test)]
mod top_allocation_tests {
    use super::*;

    #[test]
    fn top_allocations_come_from_the_high_end() {
        let mut bm = Bitmap::new_all_free(256);
        let mut idx = FreeExtentArray::new();
        idx.rebuild_from(&bm);
        let low = idx.allocate(&mut bm, 8).unwrap();
        let high = idx.allocate_top(&mut bm, 8).unwrap();
        assert_eq!(low.start, 0, "head allocation from the low end");
        assert_eq!(high.end(), 256, "top allocation from the high end");
        // The regions approach each other but never collide.
        let mid_low = idx.allocate(&mut bm, 4).unwrap();
        let mid_high = idx.allocate_top(&mut bm, 4).unwrap();
        assert!(mid_low.end() <= mid_high.start);
    }

    #[test]
    fn top_allocation_falls_back_when_index_is_stale() {
        let mut bm = Bitmap::new_all_free(64);
        let mut idx = FreeExtentArray::new();
        idx.rebuild_from(&bm);
        // Invalidate the index by allocating behind its back.
        bm.mark_allocated(32, 32);
        let e = idx.allocate_top(&mut bm, 8).unwrap();
        assert!(e.end() <= 32, "must respect the bitmap's truth");
    }

    #[test]
    fn top_allocation_exhaustion() {
        let mut bm = Bitmap::new_all_free(16);
        let mut idx = FreeExtentArray::new();
        idx.rebuild_from(&bm);
        assert!(idx.allocate_top(&mut bm, 16).is_some());
        assert!(idx.allocate_top(&mut bm, 1).is_none());
    }
}
