//! The disk service's own cache: track read-ahead (§4).
//!
//! "This service retrieves only those blocks/fragments from a disk track
//! which are necessary to immediately fulfill the requirement of a read
//! request. Then the disk service caches the rest of the data from the same
//! track ... in order to satisfy any subsequent requests to read data from
//! blocks/fragments pertaining to the same track."
//!
//! Fragments are held as [`BlockBuf`] views, so a read-ahead of a whole
//! track stores slices of the single transfer allocation, and a cache hit
//! hands the same allocation back — no per-fragment memcpy in either
//! direction.

use rhodos_buf::BlockBuf;
use rhodos_simdisk::SECTOR_SIZE;
use std::collections::{HashMap, VecDeque};

/// Identifier of a cached track.
pub type TrackNo = u64;

/// Hit/miss counters for the track cache — measurements for **E7**.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrackCacheStats {
    /// Fragments served from the cache.
    pub fragment_hits: u64,
    /// Fragments that had to come from the disk.
    pub fragment_misses: u64,
    /// Tracks evicted to make room.
    pub evictions: u64,
    /// Bytes served from the cache via memcpy (gather-assembly of
    /// fragments that live in different allocations).
    pub bytes_copied: u64,
    /// Bytes served zero-copy, as shared [`BlockBuf`] views.
    pub bytes_borrowed: u64,
}

impl TrackCacheStats {
    /// Hit ratio in `[0, 1]`; `0` when nothing was requested.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.fragment_hits + self.fragment_misses;
        if total == 0 {
            0.0
        } else {
            self.fragment_hits as f64 / total as f64
        }
    }

    /// [`Self::hit_ratio`] as a percentage, for report tables.
    pub fn hit_rate(&self) -> f64 {
        self.hit_ratio() * 100.0
    }
}

/// An LRU cache of whole tracks, holding per-fragment [`BlockBuf`] slots
/// so a track can be partially populated (the requested fragments
/// immediately, the rest by read-ahead).
///
/// # Example
///
/// ```
/// use rhodos_disk_service::TrackCache;
///
/// let mut cache = TrackCache::new(4, 32);
/// assert!(cache.lookup_fragment(0, 3).is_none());
/// cache.fill_fragment(0, 3, vec![9u8; 2048]);
/// assert!(cache.lookup_fragment(0, 3).is_some());
/// ```
#[derive(Debug)]
pub struct TrackCache {
    capacity_tracks: usize,
    sectors_per_track: u64,
    tracks: HashMap<TrackNo, TrackEntry>,
    lru: VecDeque<TrackNo>,
    stats: TrackCacheStats,
}

#[derive(Debug)]
struct TrackEntry {
    /// One slot per sector of the track; fragments of one read-ahead all
    /// point into the same transfer allocation.
    slots: Vec<Option<BlockBuf>>,
}

impl TrackCache {
    /// Creates a cache holding up to `capacity_tracks` tracks of
    /// `sectors_per_track` fragments each.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is zero.
    pub fn new(capacity_tracks: usize, sectors_per_track: u64) -> Self {
        assert!(capacity_tracks > 0, "cache needs capacity for one track");
        assert!(
            sectors_per_track > 0,
            "tracks must hold at least one sector"
        );
        Self {
            capacity_tracks,
            sectors_per_track,
            tracks: HashMap::new(),
            lru: VecDeque::new(),
            stats: TrackCacheStats::default(),
        }
    }

    /// Current statistics.
    pub fn stats(&self) -> TrackCacheStats {
        self.stats
    }

    /// Number of tracks currently resident.
    pub fn resident_tracks(&self) -> usize {
        self.tracks.len()
    }

    fn touch(&mut self, track: TrackNo) {
        self.lru.retain(|&t| t != track);
        self.lru.push_back(track);
    }

    fn evict_if_needed(&mut self) {
        while self.tracks.len() > self.capacity_tracks {
            if let Some(old) = self.lru.pop_front() {
                self.tracks.remove(&old);
                self.stats.evictions += 1;
            } else {
                break;
            }
        }
    }

    /// Looks up one fragment (`slot` within `track`). Records a hit or a
    /// miss. A hit is a zero-copy handle to the cached bytes.
    pub fn lookup_fragment(&mut self, track: TrackNo, slot: u64) -> Option<BlockBuf> {
        assert!(slot < self.sectors_per_track, "slot beyond track");
        let hit = self
            .tracks
            .get(&track)
            .and_then(|e| e.slots[slot as usize].clone());
        match hit {
            Some(data) => {
                self.stats.fragment_hits += 1;
                self.stats.bytes_borrowed += data.len() as u64;
                self.touch(track);
                Some(data)
            }
            None => {
                self.stats.fragment_misses += 1;
                None
            }
        }
    }

    /// Whether a fragment is resident without recording a hit/miss (used by
    /// the service to decide what it must fetch).
    pub fn peek_fragment(&self, track: TrackNo, slot: u64) -> bool {
        self.tracks
            .get(&track)
            .is_some_and(|e| e.slots[slot as usize].is_some())
    }

    /// Installs one fragment of data into the cache. Storing a slice of a
    /// transfer buffer shares the allocation — no copy.
    pub fn fill_fragment(&mut self, track: TrackNo, slot: u64, data: impl Into<BlockBuf>) {
        let data = data.into();
        assert_eq!(data.len(), SECTOR_SIZE, "fragment must be sector sized");
        assert!(slot < self.sectors_per_track, "slot beyond track");
        let spt = self.sectors_per_track as usize;
        let entry = self.tracks.entry(track).or_insert_with(|| TrackEntry {
            slots: vec![None; spt],
        });
        entry.slots[slot as usize] = Some(data);
        self.touch(track);
        self.evict_if_needed();
    }

    /// Records bytes the service had to memcpy while assembling a reply
    /// from cached fragments (kept here so copy traffic is reported next
    /// to the hit ratio it undermines).
    pub fn note_copied(&mut self, bytes: u64) {
        self.stats.bytes_copied += bytes;
    }

    /// Drops a fragment from the cache (after a free, or on a write in
    /// invalidate mode).
    pub fn invalidate_fragment(&mut self, track: TrackNo, slot: u64) {
        if let Some(e) = self.tracks.get_mut(&track) {
            e.slots[slot as usize] = None;
        }
    }

    /// Drops everything.
    pub fn clear(&mut self) {
        self.tracks.clear();
        self.lru.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frag(b: u8) -> Vec<u8> {
        vec![b; SECTOR_SIZE]
    }

    #[test]
    fn miss_then_hit() {
        let mut c = TrackCache::new(2, 8);
        assert!(c.lookup_fragment(1, 0).is_none());
        c.fill_fragment(1, 0, frag(7));
        assert_eq!(c.lookup_fragment(1, 0).unwrap(), frag(7));
        assert_eq!(c.stats().fragment_hits, 1);
        assert_eq!(c.stats().fragment_misses, 1);
    }

    #[test]
    fn partial_track_validity() {
        let mut c = TrackCache::new(2, 8);
        c.fill_fragment(0, 3, frag(1));
        assert!(c.peek_fragment(0, 3));
        assert!(!c.peek_fragment(0, 4));
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = TrackCache::new(2, 4);
        c.fill_fragment(0, 0, frag(0));
        c.fill_fragment(1, 0, frag(1));
        // Touch track 0 so track 1 is LRU.
        c.lookup_fragment(0, 0);
        c.fill_fragment(2, 0, frag(2));
        assert!(c.peek_fragment(0, 0));
        assert!(!c.peek_fragment(1, 0));
        assert!(c.peek_fragment(2, 0));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn invalidate_removes_single_fragment() {
        let mut c = TrackCache::new(2, 4);
        c.fill_fragment(0, 0, frag(1));
        c.fill_fragment(0, 1, frag(2));
        c.invalidate_fragment(0, 0);
        assert!(!c.peek_fragment(0, 0));
        assert!(c.peek_fragment(0, 1));
    }

    #[test]
    fn hit_ratio_math() {
        let mut c = TrackCache::new(1, 4);
        c.fill_fragment(0, 0, frag(1));
        c.lookup_fragment(0, 0);
        c.lookup_fragment(0, 1);
        assert!((c.stats().hit_ratio() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn hits_share_the_fill_allocation() {
        let mut c = TrackCache::new(1, 8);
        // One "transfer" allocation sliced into two fragments, as the
        // read-ahead path does.
        let transfer = BlockBuf::from(vec![3u8; 2 * SECTOR_SIZE]);
        c.fill_fragment(0, 0, transfer.slice(0..SECTOR_SIZE));
        c.fill_fragment(0, 1, transfer.slice(SECTOR_SIZE..2 * SECTOR_SIZE));
        let a = c.lookup_fragment(0, 0).unwrap();
        let b = c.lookup_fragment(0, 1).unwrap();
        // Adjacent slices of one allocation reassemble without copying.
        assert!(BlockBuf::try_concat(&[a, b]).is_some());
        assert_eq!(c.stats().bytes_borrowed, 2 * SECTOR_SIZE as u64);
        assert_eq!(c.stats().bytes_copied, 0);
    }
}
