//! The file-service RPC wire protocol, shared by every networked
//! front-end: [`crate::ReplicatedRpcFiles`] (replica fan-out) and the
//! `rhodos-cluster` data-server channels both speak exactly this format,
//! so a file migrated between a replica set and a cluster shard is served
//! by the same `serve` loop either way.
//!
//! One request is `opcode · operands`, one reply is
//! `REPLY_OK · payload` or `REPLY_ERR · encoded error`. Everything is
//! length-prefixed little-endian via `rhodos-disk-service`'s codec, and
//! [`serve`] is the entire server: its only state besides the files
//! themselves is the replay cache the caller wraps around it.

use rhodos_disk_service::codec::{Decoder, Encoder};
use rhodos_disk_service::DiskServiceError;
use rhodos_file_service::{
    FileId, FileService, FileServiceError, LeaseGrant, LeaseMode, LeaseToken, ServiceType,
};
use rhodos_net::{ReplayCache, RpcClient, RpcExhausted, SimNetwork};
use rhodos_simdisk::{DiskError, HlcStamp};

/// Opcode: create a file of a given [`ServiceType`].
pub const OP_CREATE: u8 = 1;
/// Opcode: open by fid.
pub const OP_OPEN: u8 = 2;
/// Opcode: close by fid.
pub const OP_CLOSE: u8 = 3;
/// Opcode: delete by fid.
pub const OP_DELETE: u8 = 4;
/// Opcode: positional write.
pub const OP_WRITE: u8 = 5;
/// Opcode: positional read.
pub const OP_READ: u8 = 6;
/// Opcode: fetch file attributes.
pub const OP_GET_ATTR: u8 = 7;
/// Opcode: acquire a lease.
pub const OP_LEASE_ACQUIRE: u8 = 8;
/// Opcode: release a lease.
pub const OP_LEASE_RELEASE: u8 = 9;
/// Opcode: renew a lease.
pub const OP_LEASE_RENEW: u8 = 10;
/// Opcode: reattach a previous-epoch lease after a server crash.
pub const OP_LEASE_REATTACH: u8 = 11;
/// Opcode: write under a held write lease (fencing enforced).
pub const OP_WRITE_LEASED: u8 = 12;
/// Opcode: 2PC phase one — a *batch* of cross-shard transactions to
/// prepare on this participant (one RPC, one log force for the whole
/// batch). Not handled by [`serve`]: transaction-aware servers dispatch
/// it to their own handler via [`Channel::call_serve`].
pub const OP_TXN_PREPARE: u8 = 13;
/// Opcode: 2PC phase two — deliver the commit/abort decision for one
/// global transaction id.
pub const OP_TXN_DECIDE: u8 = 14;
/// Opcode: list the global transaction ids this participant holds
/// in doubt (a recovering coordinator's orphan sweep).
pub const OP_TXN_PREPARED_LIST: u8 = 15;

/// Reply tag: success, payload follows.
pub const REPLY_OK: u8 = 0;
/// Reply tag: failure, encoded error follows.
pub const REPLY_ERR: u8 = 1;

/// Encodes an [`OP_CREATE`] request.
pub fn encode_create(st: ServiceType) -> Vec<u8> {
    let mut e = Encoder::new();
    e.u8(OP_CREATE).u8(match st {
        ServiceType::Basic => 0,
        ServiceType::Transaction => 1,
    });
    e.finish()
}

/// Encodes a fid-only request (`OP_OPEN`/`OP_CLOSE`/`OP_DELETE`/
/// `OP_GET_ATTR`).
pub fn encode_fid_op(op: u8, fid: FileId) -> Vec<u8> {
    let mut e = Encoder::new();
    e.u8(op).u64(fid.0);
    e.finish()
}

/// Encodes an [`OP_WRITE`] request.
pub fn encode_write(fid: FileId, offset: u64, data: &[u8]) -> Vec<u8> {
    let mut e = Encoder::new();
    e.u8(OP_WRITE).u64(fid.0).u64(offset).bytes(data);
    e.finish()
}

/// Encodes an [`OP_READ`] request.
pub fn encode_read(fid: FileId, offset: u64, len: usize) -> Vec<u8> {
    let mut e = Encoder::new();
    e.u8(OP_READ).u64(fid.0).u64(offset).u64(len as u64);
    e.finish()
}

// ---- lease wire format -------------------------------------------------

/// Wire code of a [`LeaseMode`].
pub fn mode_code(mode: LeaseMode) -> u8 {
    match mode {
        LeaseMode::Read => 0,
        LeaseMode::Write => 1,
    }
}

/// Decodes a [`LeaseMode`].
pub fn decode_mode(d: &mut Decoder<'_>) -> LeaseMode {
    match d.u8().expect("lease mode") {
        0 => LeaseMode::Read,
        _ => LeaseMode::Write,
    }
}

/// Encodes an [`HlcStamp`].
pub fn encode_stamp(e: &mut Encoder, s: HlcStamp) {
    e.u64(s.wall_us).u32(s.logical).u32(s.node);
}

/// Decodes an [`HlcStamp`].
pub fn decode_stamp(d: &mut Decoder<'_>) -> HlcStamp {
    HlcStamp {
        wall_us: d.u64().expect("stamp wall"),
        logical: d.u32().expect("stamp logical"),
        node: d.u32().expect("stamp node"),
    }
}

/// Encodes a [`LeaseToken`].
pub fn encode_token(e: &mut Encoder, t: &LeaseToken) {
    e.u64(t.client).u64(t.fid.0).u64(t.epoch).u64(t.seq);
}

/// Decodes a [`LeaseToken`].
pub fn decode_token(d: &mut Decoder<'_>) -> LeaseToken {
    LeaseToken {
        client: d.u64().expect("token client"),
        fid: FileId(d.u64().expect("token fid")),
        epoch: d.u64().expect("token epoch"),
        seq: d.u64().expect("token seq"),
    }
}

/// Encodes a [`LeaseGrant`].
pub fn encode_grant(e: &mut Encoder, g: &LeaseGrant) {
    encode_token(e, &g.token);
    e.u8(mode_code(g.mode)).u64(g.expiry_us);
    encode_stamp(e, g.stamp);
}

/// Decodes a [`LeaseGrant`].
pub fn decode_grant(d: &mut Decoder<'_>) -> LeaseGrant {
    let token = decode_token(d);
    let mode = decode_mode(d);
    let expiry_us = d.u64().expect("grant expiry");
    let stamp = decode_stamp(d);
    LeaseGrant {
        token,
        mode,
        expiry_us,
        stamp,
    }
}

/// Encodes an [`OP_LEASE_ACQUIRE`] request.
pub fn encode_lease_acquire(client: u64, fid: FileId, mode: LeaseMode) -> Vec<u8> {
    let mut e = Encoder::new();
    e.u8(OP_LEASE_ACQUIRE)
        .u64(client)
        .u64(fid.0)
        .u8(mode_code(mode));
    e.finish()
}

/// Encodes a token-only request (`OP_LEASE_RELEASE`/`OP_LEASE_RENEW`).
pub fn encode_token_op(op: u8, token: &LeaseToken) -> Vec<u8> {
    let mut e = Encoder::new();
    e.u8(op);
    encode_token(&mut e, token);
    e.finish()
}

/// Encodes an [`OP_LEASE_REATTACH`] request.
pub fn encode_lease_reattach(token: &LeaseToken, mode: LeaseMode, stamp: HlcStamp) -> Vec<u8> {
    let mut e = Encoder::new();
    e.u8(OP_LEASE_REATTACH);
    encode_token(&mut e, token);
    e.u8(mode_code(mode));
    encode_stamp(&mut e, stamp);
    e.finish()
}

/// Encodes an [`OP_WRITE_LEASED`] request.
pub fn encode_write_leased(fid: FileId, offset: u64, data: &[u8], token: &LeaseToken) -> Vec<u8> {
    let mut e = Encoder::new();
    e.u8(OP_WRITE_LEASED).u64(fid.0).u64(offset).bytes(data);
    encode_token(&mut e, token);
    e.finish()
}

// ---- cross-shard 2PC wire format ---------------------------------------

/// One transaction of an [`OP_TXN_PREPARE`] batch: its global id and the
/// writes `(fid, offset, data)` it performs on this participant.
pub type PrepareTxn = (u64, Vec<(FileId, u64, Vec<u8>)>);

/// Encodes an [`OP_TXN_PREPARE`] request carrying a whole batch of
/// transactions destined for one participant.
pub fn encode_txn_prepare(batch: &[PrepareTxn]) -> Vec<u8> {
    let mut e = Encoder::new();
    e.u8(OP_TXN_PREPARE).u32(batch.len() as u32);
    for (gtid, ops) in batch {
        e.u64(*gtid).u32(ops.len() as u32);
        for (fid, offset, data) in ops {
            e.u64(fid.0).u64(*offset).bytes(data);
        }
    }
    e.finish()
}

/// Decodes an [`OP_TXN_PREPARE`] body (the opcode byte already
/// consumed).
pub fn decode_txn_prepare(d: &mut Decoder<'_>) -> Vec<PrepareTxn> {
    let n = d.u32().expect("prepare batch len");
    let mut batch = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let gtid = d.u64().expect("gtid");
        let nops = d.u32().expect("prepare op count");
        let mut ops = Vec::with_capacity(nops as usize);
        for _ in 0..nops {
            let fid = FileId(d.u64().expect("fid"));
            let offset = d.u64().expect("offset");
            let data = d.bytes().expect("data").to_vec();
            ops.push((fid, offset, data));
        }
        batch.push((gtid, ops));
    }
    batch
}

/// Encodes the [`OP_TXN_PREPARE`] reply payload: one vote per batched
/// transaction, in batch order.
pub fn encode_votes(votes: &[bool]) -> Vec<u8> {
    let mut e = Encoder::new();
    e.u32(votes.len() as u32);
    for v in votes {
        e.u8(u8::from(*v));
    }
    e.finish()
}

/// Decodes an [`OP_TXN_PREPARE`] reply payload.
pub fn decode_votes(payload: &[u8]) -> Vec<bool> {
    let mut d = Decoder::new(payload);
    let n = d.u32().expect("vote count");
    (0..n).map(|_| d.u8().expect("vote") != 0).collect()
}

/// Encodes an [`OP_TXN_DECIDE`] request. `orphan` marks a decision
/// re-delivered by the recovering coordinator's sweep rather than the
/// original commit path.
pub fn encode_txn_decide(gtid: u64, commit: bool, orphan: bool) -> Vec<u8> {
    let mut e = Encoder::new();
    e.u8(OP_TXN_DECIDE)
        .u64(gtid)
        .u8(u8::from(commit))
        .u8(u8::from(orphan));
    e.finish()
}

/// Encodes an [`OP_TXN_PREPARED_LIST`] request.
pub fn encode_txn_prepared_list() -> Vec<u8> {
    let mut e = Encoder::new();
    e.u8(OP_TXN_PREPARED_LIST);
    e.finish()
}

/// Encodes a gtid-list reply payload ([`OP_TXN_PREPARED_LIST`]).
pub fn encode_gtid_list(gtids: &[u64]) -> Vec<u8> {
    let mut e = Encoder::new();
    e.u32(gtids.len() as u32);
    for g in gtids {
        e.u64(*g);
    }
    e.finish()
}

/// Decodes a gtid-list reply payload.
pub fn decode_gtid_list(payload: &[u8]) -> Vec<u64> {
    let mut d = Decoder::new(payload);
    let n = d.u32().expect("gtid count");
    (0..n).map(|_| d.u64().expect("gtid")).collect()
}

/// Executes one decoded request against a file service and encodes the
/// reply. This is the entire server: its only state besides the files
/// themselves is the replay cache the caller wraps around it.
pub fn serve(fs: &mut FileService, req: &[u8]) -> Vec<u8> {
    let mut d = Decoder::new(req);
    let op = d.u8().expect("self-generated request");
    let result: Result<Vec<u8>, FileServiceError> = match op {
        OP_CREATE => {
            let st = match d.u8().expect("service type") {
                0 => ServiceType::Basic,
                _ => ServiceType::Transaction,
            };
            fs.create(st).map(|fid| {
                let mut e = Encoder::new();
                e.u64(fid.0);
                e.finish()
            })
        }
        OP_OPEN => fs.open(FileId(d.u64().expect("fid"))).map(|()| Vec::new()),
        OP_CLOSE => fs.close(FileId(d.u64().expect("fid"))).map(|()| Vec::new()),
        OP_DELETE => fs
            .delete(FileId(d.u64().expect("fid")))
            .map(|()| Vec::new()),
        OP_WRITE => {
            let fid = FileId(d.u64().expect("fid"));
            let offset = d.u64().expect("offset");
            let data = d.bytes().expect("data");
            fs.write(fid, offset, data).map(|()| Vec::new())
        }
        OP_READ => {
            let fid = FileId(d.u64().expect("fid"));
            let offset = d.u64().expect("offset");
            let len = d.u64().expect("len") as usize;
            fs.read(fid, offset, len)
        }
        OP_GET_ATTR => fs.get_attribute(FileId(d.u64().expect("fid"))).map(|a| {
            let mut e = Encoder::new();
            a.encode(&mut e);
            e.finish()
        }),
        OP_LEASE_ACQUIRE => {
            let client = d.u64().expect("client");
            let fid = FileId(d.u64().expect("fid"));
            let mode = decode_mode(&mut d);
            fs.lease_acquire(client, fid, mode).map(|(grant, size)| {
                let mut e = Encoder::new();
                encode_grant(&mut e, &grant);
                e.u64(size);
                e.finish()
            })
        }
        OP_LEASE_RELEASE => {
            let token = decode_token(&mut d);
            fs.lease_release(&token);
            Ok(Vec::new())
        }
        OP_LEASE_RENEW => {
            let token = decode_token(&mut d);
            fs.lease_renew(&token).map(|(expiry_us, stamp)| {
                let mut e = Encoder::new();
                e.u64(expiry_us);
                encode_stamp(&mut e, stamp);
                e.finish()
            })
        }
        OP_LEASE_REATTACH => {
            let token = decode_token(&mut d);
            let mode = decode_mode(&mut d);
            let stamp = decode_stamp(&mut d);
            fs.lease_reattach(&token, mode, stamp).map(|grant| {
                let mut e = Encoder::new();
                encode_grant(&mut e, &grant);
                e.finish()
            })
        }
        OP_WRITE_LEASED => {
            let fid = FileId(d.u64().expect("fid"));
            let offset = d.u64().expect("offset");
            let data = d.bytes().expect("data").to_vec();
            let token = decode_token(&mut d);
            fs.write_leased(fid, offset, data, &token)
                .map(|()| Vec::new())
        }
        _ => unreachable!("unknown opcode {op}"),
    };
    let mut e = Encoder::new();
    match result {
        Ok(payload) => {
            e.u8(REPLY_OK).bytes(&payload);
        }
        Err(err) => {
            e.u8(REPLY_ERR);
            encode_error(&mut e, &err);
        }
    }
    e.finish()
}

/// Splits a reply into its payload or its decoded error.
pub fn decode_reply(buf: &[u8]) -> Result<Vec<u8>, FileServiceError> {
    let mut d = Decoder::new(buf);
    match d.u8().expect("reply tag") {
        REPLY_OK => Ok(d.bytes().expect("payload").to_vec()),
        _ => Err(decode_error(&mut d)),
    }
}

/// Encodes a [`FileServiceError`] for a `REPLY_ERR` reply.
pub fn encode_error(e: &mut Encoder, err: &FileServiceError) {
    match err {
        FileServiceError::NotFound(fid) => {
            e.u8(1).u64(fid.0);
        }
        FileServiceError::NotOpen(fid) => {
            e.u8(2).u64(fid.0);
        }
        FileServiceError::Busy(fid) => {
            e.u8(3).u64(fid.0);
        }
        FileServiceError::BeyondEof { fid, offset, size } => {
            e.u8(4).u64(fid.0).u64(*offset).u64(*size);
        }
        FileServiceError::FileTooLarge(fid) => {
            e.u8(5).u64(fid.0);
        }
        FileServiceError::DirectoryFull => {
            e.u8(6);
        }
        FileServiceError::Corrupt(fid) => {
            e.u8(7).u64(fid.0);
        }
        FileServiceError::Disk(d) => {
            e.u8(8);
            encode_disk_error(e, d);
        }
        FileServiceError::LeaseFenced(fid) => {
            e.u8(9).u64(fid.0);
        }
        FileServiceError::LeaseRejected(fid) => {
            e.u8(10).u64(fid.0);
        }
        other => unreachable!("unencodable file-service error: {other}"),
    }
}

fn encode_disk_error(e: &mut Encoder, err: &DiskServiceError) {
    match err {
        DiskServiceError::NoSpace {
            requested,
            largest_free,
            total_free,
        } => {
            e.u8(1).u64(*requested).u64(*largest_free).u64(*total_free);
        }
        DiskServiceError::NoStableStorage => {
            e.u8(2);
        }
        DiskServiceError::SizeMismatch { expected, got } => {
            e.u8(3).u64(*expected as u64).u64(*got as u64);
        }
        DiskServiceError::BadExtent => {
            e.u8(4);
        }
        DiskServiceError::Disk(d) => {
            e.u8(5);
            match d {
                DiskError::OutOfRange {
                    start,
                    count,
                    total,
                } => {
                    e.u8(1).u64(*start).u64(*count).u64(*total);
                }
                DiskError::BadSector(a) => {
                    e.u8(2).u64(*a);
                }
                DiskError::Crashed => {
                    e.u8(3);
                }
                DiskError::UnalignedBuffer { len } => {
                    e.u8(4).u64(*len as u64);
                }
                DiskError::StableLost(a) => {
                    e.u8(5).u64(*a);
                }
                other => unreachable!("unencodable disk error: {other}"),
            }
        }
        other => unreachable!("unencodable disk-service error: {other}"),
    }
}

/// Decodes a `REPLY_ERR` body back into a [`FileServiceError`].
pub fn decode_error(d: &mut Decoder<'_>) -> FileServiceError {
    let fid = |d: &mut Decoder<'_>| FileId(d.u64().expect("fid"));
    match d.u8().expect("error code") {
        1 => FileServiceError::NotFound(fid(d)),
        2 => FileServiceError::NotOpen(fid(d)),
        3 => FileServiceError::Busy(fid(d)),
        4 => FileServiceError::BeyondEof {
            fid: fid(d),
            offset: d.u64().expect("offset"),
            size: d.u64().expect("size"),
        },
        5 => FileServiceError::FileTooLarge(fid(d)),
        6 => FileServiceError::DirectoryFull,
        7 => FileServiceError::Corrupt(fid(d)),
        8 => FileServiceError::Disk(decode_disk_error(d)),
        9 => FileServiceError::LeaseFenced(fid(d)),
        10 => FileServiceError::LeaseRejected(fid(d)),
        other => unreachable!("unknown error code {other}"),
    }
}

fn decode_disk_error(d: &mut Decoder<'_>) -> DiskServiceError {
    match d.u8().expect("disk error code") {
        1 => DiskServiceError::NoSpace {
            requested: d.u64().expect("requested"),
            largest_free: d.u64().expect("largest_free"),
            total_free: d.u64().expect("total_free"),
        },
        2 => DiskServiceError::NoStableStorage,
        3 => DiskServiceError::SizeMismatch {
            expected: d.u64().expect("expected") as usize,
            got: d.u64().expect("got") as usize,
        },
        4 => DiskServiceError::BadExtent,
        5 => DiskServiceError::Disk(match d.u8().expect("device error code") {
            1 => DiskError::OutOfRange {
                start: d.u64().expect("start"),
                count: d.u64().expect("count"),
                total: d.u64().expect("total"),
            },
            2 => DiskError::BadSector(d.u64().expect("addr")),
            3 => DiskError::Crashed,
            4 => DiskError::UnalignedBuffer {
                len: d.u64().expect("len") as usize,
            },
            5 => DiskError::StableLost(d.u64().expect("addr")),
            other => unreachable!("unknown device error code {other}"),
        }),
        other => unreachable!("unknown disk error code {other}"),
    }
}

// ---- the per-machine transport endpoint --------------------------------

/// One machine's transport endpoint: the lossy channel to it, the
/// client-side retry state, and the server-side replay cache (which lives
/// with the machine — a crash wipes it).
#[derive(Debug)]
pub struct Channel {
    /// The simulated link.
    pub net: SimNetwork,
    /// Client-side retry/backoff state.
    pub client: RpcClient,
    /// Server-side replay suppression.
    pub cache: ReplayCache,
}

impl Channel {
    /// Issues one encoded request against `fs` over this channel: retried
    /// with backoff while the link loses messages, executed at most once
    /// per request id, the reply decoded back.
    ///
    /// # Errors
    ///
    /// `Err(None)` when the channel exhausted its attempts (machine
    /// unreachable), `Err(Some(_))` for a semantic file-service error.
    pub fn call(
        &mut self,
        fs: &mut FileService,
        req: &[u8],
    ) -> Result<Vec<u8>, Option<FileServiceError>> {
        self.call_serve(req, |r| serve(fs, r))
    }

    /// [`Self::call`] with a caller-supplied server: the same at-most-once
    /// retry/replay machinery, but `server` produces the reply — used by
    /// transaction-aware endpoints that dispatch the 2PC opcodes
    /// ([`OP_TXN_PREPARE`]…) beside the plain file-service ones.
    ///
    /// # Errors
    ///
    /// As [`Self::call`].
    pub fn call_serve(
        &mut self,
        req: &[u8],
        mut server: impl FnMut(&[u8]) -> Vec<u8>,
    ) -> Result<Vec<u8>, Option<FileServiceError>> {
        let Channel { net, client, cache } = self;
        let reply = client
            .call_with_ack(net, |rid, ack| {
                cache.execute_acked(rid, ack, || server(req))
            })
            .map_err(|_: RpcExhausted| None)?;
        decode_reply(&reply).map_err(Some)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn txn_prepare_round_trip() {
        let batch: Vec<PrepareTxn> = vec![
            (7, vec![(FileId(3), 0, b"abc".to_vec())]),
            (
                9,
                vec![(FileId(4), 128, b"xy".to_vec()), (FileId(5), 0, Vec::new())],
            ),
        ];
        let req = encode_txn_prepare(&batch);
        let mut d = Decoder::new(&req);
        assert_eq!(d.u8().unwrap(), OP_TXN_PREPARE);
        assert_eq!(decode_txn_prepare(&mut d), batch);
    }

    #[test]
    fn votes_and_gtid_lists_round_trip() {
        let votes = vec![true, false, true];
        assert_eq!(decode_votes(&encode_votes(&votes)), votes);
        let gtids = vec![1u64, 99, 12345];
        assert_eq!(decode_gtid_list(&encode_gtid_list(&gtids)), gtids);
        assert!(decode_gtid_list(&encode_gtid_list(&[])).is_empty());
    }

    #[test]
    fn decide_wire_shape() {
        let req = encode_txn_decide(42, true, false);
        let mut d = Decoder::new(&req);
        assert_eq!(d.u8().unwrap(), OP_TXN_DECIDE);
        assert_eq!(d.u64().unwrap(), 42);
        assert_eq!(d.u8().unwrap(), 1);
        assert_eq!(d.u8().unwrap(), 0);
        let list = encode_txn_prepared_list();
        assert_eq!(
            list[Decoder::new(&list).u8().map(|_| 0).unwrap()],
            OP_TXN_PREPARED_LIST
        );
    }
}
