//! # rhodos-replication — the RHODOS replication service
//!
//! The design goals require that the facility "must have the provision to
//! support the concept of file replication" (§2.1), and the architecture
//! of Figure 1 places a replication service above the file service.
//!
//! This crate implements primary-copy replication over a set of
//! [`FileService`] replicas (each standing for a file server on a
//! different machine):
//!
//! * **write-all** — mutations are applied to every live replica;
//! * **read-one** — reads are served by one replica (round-robin across
//!   live replicas for load spreading), failing over transparently when a
//!   replica faults;
//! * **resynchronisation** — a repaired replica is rebuilt from the
//!   primary before rejoining.
//!
//! File identifiers are allocated in lock-step on every replica, so one
//! [`FileId`] is valid cluster-wide.
//!
//! # Example
//!
//! ```
//! use rhodos_replication::{ReplicatedFiles, ReplicationConfig};
//! use rhodos_file_service::{FileService, FileServiceConfig, ServiceType};
//! use rhodos_simdisk::{DiskGeometry, LatencyModel, SimClock};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let clock = SimClock::new();
//! let mk = || FileService::single_disk(
//!     DiskGeometry::medium(), LatencyModel::default(), clock.clone(),
//!     FileServiceConfig::default(),
//! ).unwrap();
//! let mut rf = ReplicatedFiles::new(vec![mk(), mk(), mk()], ReplicationConfig::default());
//! let fid = rf.create(ServiceType::Basic)?;
//! rf.open(fid)?;
//! rf.write(fid, 0, b"three copies")?;
//! assert_eq!(rf.read(fid, 0, 12)?, b"three copies");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rhodos_file_service::{FileAttributes, FileId, FileService, FileServiceError, ServiceType};
use std::collections::HashSet;

/// Tunables of the replication service.
#[derive(Debug, Clone, Copy)]
pub struct ReplicationConfig {
    /// Spread reads round-robin over live replicas (false: always the
    /// lowest-numbered live replica).
    pub read_round_robin: bool,
}

impl Default for ReplicationConfig {
    fn default() -> Self {
        Self {
            read_round_robin: true,
        }
    }
}

/// Counters of replication behaviour.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReplicationStats {
    /// Reads served per replica.
    pub reads_per_replica: Vec<u64>,
    /// Read failovers (a replica faulted mid-read).
    pub failovers: u64,
    /// Replicas resynchronised.
    pub resyncs: u64,
    /// Writes suppressed because a replica was marked failed.
    pub writes_skipped: u64,
}

/// Errors returned by the replication service.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ReplicationError {
    /// Every replica failed the operation.
    AllReplicasFailed(FileId),
    /// The replica index is out of range.
    NoSuchReplica(usize),
    /// Replica file-id allocation diverged (internal invariant violated).
    Diverged,
    /// Underlying file-service failure (from the last replica tried).
    File(FileServiceError),
}

impl std::fmt::Display for ReplicationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplicationError::AllReplicasFailed(fid) => {
                write!(f, "every replica failed operating on {fid}")
            }
            ReplicationError::NoSuchReplica(i) => write!(f, "no replica {i}"),
            ReplicationError::Diverged => write!(f, "replica state diverged"),
            ReplicationError::File(e) => write!(f, "file service failure: {e}"),
        }
    }
}

impl std::error::Error for ReplicationError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReplicationError::File(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FileServiceError> for ReplicationError {
    fn from(e: FileServiceError) -> Self {
        ReplicationError::File(e)
    }
}

/// Primary-copy replicated files over N file services.
#[derive(Debug)]
pub struct ReplicatedFiles {
    replicas: Vec<FileService>,
    failed: Vec<bool>,
    next_read: usize,
    config: ReplicationConfig,
    stats: ReplicationStats,
    /// Logical open counts, restored onto a replica after resync (a
    /// recovered replica loses its volatile reference counts).
    open_counts: std::collections::HashMap<FileId, u32>,
}

impl ReplicatedFiles {
    /// Creates the service over freshly formatted replicas.
    ///
    /// # Panics
    ///
    /// Panics if `replicas` is empty.
    pub fn new(replicas: Vec<FileService>, config: ReplicationConfig) -> Self {
        assert!(!replicas.is_empty(), "need at least one replica");
        let n = replicas.len();
        Self {
            replicas,
            failed: vec![false; n],
            next_read: 0,
            config,
            stats: ReplicationStats {
                reads_per_replica: vec![0; n],
                ..Default::default()
            },
            open_counts: std::collections::HashMap::new(),
        }
    }

    /// Number of replicas (live or failed).
    pub fn replica_count(&self) -> usize {
        self.replicas.len()
    }

    /// Number of replicas currently live.
    pub fn live_replicas(&self) -> usize {
        self.failed.iter().filter(|f| !**f).count()
    }

    /// Statistics so far.
    pub fn stats(&self) -> &ReplicationStats {
        &self.stats
    }

    /// Direct access to replica `i` (fault injection).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn replica_mut(&mut self, i: usize) -> &mut FileService {
        &mut self.replicas[i]
    }

    /// Marks replica `i` failed (e.g. its machine crashed); subsequent
    /// writes skip it and reads fail over.
    ///
    /// # Errors
    ///
    /// [`ReplicationError::NoSuchReplica`].
    pub fn mark_failed(&mut self, i: usize) -> Result<(), ReplicationError> {
        if i >= self.replicas.len() {
            return Err(ReplicationError::NoSuchReplica(i));
        }
        self.failed[i] = true;
        Ok(())
    }

    fn live_indices(&self) -> Vec<usize> {
        (0..self.replicas.len())
            .filter(|i| !self.failed[*i])
            .collect()
    }

    fn first_live(&self) -> Option<usize> {
        self.live_indices().into_iter().next()
    }

    /// Applies a mutation to every live replica ("write-all").
    fn write_all<T: PartialEq + std::fmt::Debug>(
        &mut self,
        mut op: impl FnMut(&mut FileService) -> Result<T, FileServiceError>,
    ) -> Result<T, ReplicationError> {
        let mut result: Option<T> = None;
        let mut any = false;
        for i in 0..self.replicas.len() {
            if self.failed[i] {
                self.stats.writes_skipped += 1;
                continue;
            }
            let r = op(&mut self.replicas[i])?;
            if let Some(prev) = &result {
                if *prev != r {
                    return Err(ReplicationError::Diverged);
                }
            } else {
                result = Some(r);
            }
            any = true;
        }
        if !any {
            return Err(ReplicationError::AllReplicasFailed(FileId(0)));
        }
        Ok(result.expect("at least one replica executed"))
    }

    /// `create` on every replica; identifiers are allocated in lock-step.
    ///
    /// # Errors
    ///
    /// Propagates replica failures; [`ReplicationError::Diverged`] if the
    /// replicas returned different identifiers.
    pub fn create(&mut self, st: ServiceType) -> Result<FileId, ReplicationError> {
        self.write_all(|fs| fs.create(st))
    }

    /// Opens `fid` on every live replica.
    ///
    /// # Errors
    ///
    /// Replica failures.
    pub fn open(&mut self, fid: FileId) -> Result<(), ReplicationError> {
        self.write_all(|fs| fs.open(fid))?;
        *self.open_counts.entry(fid).or_insert(0) += 1;
        Ok(())
    }

    /// Closes `fid` on every live replica.
    ///
    /// # Errors
    ///
    /// Replica failures.
    pub fn close(&mut self, fid: FileId) -> Result<(), ReplicationError> {
        self.write_all(|fs| fs.close(fid))?;
        if let Some(c) = self.open_counts.get_mut(&fid) {
            *c = c.saturating_sub(1);
            if *c == 0 {
                self.open_counts.remove(&fid);
            }
        }
        Ok(())
    }

    /// Deletes `fid` on every live replica.
    ///
    /// # Errors
    ///
    /// Replica failures.
    pub fn delete(&mut self, fid: FileId) -> Result<(), ReplicationError> {
        self.write_all(|fs| fs.delete(fid))
    }

    /// Writes through to every live replica ("write-all").
    ///
    /// # Errors
    ///
    /// Replica failures.
    pub fn write(&mut self, fid: FileId, offset: u64, data: &[u8]) -> Result<(), ReplicationError> {
        self.write_all(|fs| fs.write(fid, offset, data))
    }

    /// Attributes from one live replica.
    ///
    /// # Errors
    ///
    /// Replica failures.
    pub fn get_attribute(&mut self, fid: FileId) -> Result<FileAttributes, ReplicationError> {
        let i = self
            .first_live()
            .ok_or(ReplicationError::AllReplicasFailed(fid))?;
        Ok(self.replicas[i].get_attribute(fid)?)
    }

    /// Reads from one replica ("read-one"), failing over to the next live
    /// replica — and marking the faulty one failed — on device errors.
    ///
    /// # Errors
    ///
    /// [`ReplicationError::AllReplicasFailed`] when no replica can serve
    /// the read.
    pub fn read(
        &mut self,
        fid: FileId,
        offset: u64,
        len: usize,
    ) -> Result<Vec<u8>, ReplicationError> {
        let live = self.live_indices();
        if live.is_empty() {
            return Err(ReplicationError::AllReplicasFailed(fid));
        }
        // Choose a starting replica.
        let start = if self.config.read_round_robin {
            self.next_read = (self.next_read + 1) % live.len();
            self.next_read
        } else {
            0
        };
        let mut last_err: Option<FileServiceError> = None;
        for k in 0..live.len() {
            let i = live[(start + k) % live.len()];
            match self.replicas[i].read(fid, offset, len) {
                Ok(data) => {
                    self.stats.reads_per_replica[i] += 1;
                    return Ok(data);
                }
                Err(e @ FileServiceError::Disk(_)) => {
                    // Device fault: fail over and remember the suspect.
                    self.failed[i] = true;
                    self.stats.failovers += 1;
                    last_err = Some(e);
                }
                Err(e) => return Err(ReplicationError::File(e)), // semantic error: propagate
            }
        }
        match last_err {
            Some(e) => Err(ReplicationError::File(e)),
            None => Err(ReplicationError::AllReplicasFailed(fid)),
        }
    }

    /// Repairs and resynchronises replica `i` from the first live replica:
    /// disks are recovered, then every file is copied over. The replica
    /// rejoins the write set afterwards.
    ///
    /// # Errors
    ///
    /// Fails if recovery or the copy fails, or if `i` is the only replica.
    pub fn resync(&mut self, i: usize) -> Result<(), ReplicationError> {
        if i >= self.replicas.len() {
            return Err(ReplicationError::NoSuchReplica(i));
        }
        let src = self
            .live_indices()
            .into_iter()
            .find(|&j| j != i)
            .ok_or(ReplicationError::AllReplicasFailed(FileId(0)))?;
        // Recover the returning replica's own durable state first.
        self.replicas[i].recover()?;
        // Copy file contents from the source of truth.
        let fids: Vec<FileId> = self.replicas[src].file_ids();
        let target_fids: HashSet<FileId> = self.replicas[i].file_ids().into_iter().collect();
        for fid in &fids {
            let size = self.replicas[src].get_attribute(*fid)?.size;
            self.replicas[src].open(*fid)?;
            let data = if size > 0 {
                self.replicas[src].read(*fid, 0, size as usize)?
            } else {
                Vec::new()
            };
            self.replicas[src].close(*fid)?;
            if !target_fids.contains(fid) {
                // Structure diverged beyond data: full rebuild is out of
                // scope for a data resync.
                return Err(ReplicationError::Diverged);
            }
            self.replicas[i].open(*fid)?;
            if !data.is_empty() {
                self.replicas[i].write(*fid, 0, &data)?;
            }
            self.replicas[i].flush_file(*fid)?;
            self.replicas[i].close(*fid)?;
        }
        // Restore the logical open state the recovered replica lost.
        for (fid, count) in &self.open_counts {
            for _ in 0..*count {
                self.replicas[i].open(*fid)?;
            }
        }
        self.failed[i] = false;
        self.stats.resyncs += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rhodos_file_service::FileServiceConfig;
    use rhodos_simdisk::{DiskGeometry, LatencyModel, SimClock};

    fn cluster(n: usize) -> ReplicatedFiles {
        let clock = SimClock::new();
        let replicas = (0..n)
            .map(|_| {
                FileService::single_disk(
                    DiskGeometry::medium(),
                    LatencyModel::default(),
                    clock.clone(),
                    FileServiceConfig::default(),
                )
                .unwrap()
            })
            .collect();
        ReplicatedFiles::new(replicas, ReplicationConfig::default())
    }

    #[test]
    fn write_all_read_one_round_trip() {
        let mut rf = cluster(3);
        let fid = rf.create(ServiceType::Basic).unwrap();
        rf.open(fid).unwrap();
        rf.write(fid, 0, b"replicated").unwrap();
        for _ in 0..6 {
            assert_eq!(rf.read(fid, 0, 10).unwrap(), b"replicated");
        }
        // Round-robin spread the reads.
        let spread = rf.stats().reads_per_replica.clone();
        assert!(spread.iter().filter(|&&c| c > 0).count() >= 2, "{spread:?}");
    }

    #[test]
    fn read_fails_over_when_a_replica_faults() {
        let mut rf = cluster(3);
        let fid = rf.create(ServiceType::Basic).unwrap();
        rf.open(fid).unwrap();
        rf.write(fid, 0, b"survive").unwrap();
        // Every replica must flush so the data is on its platter.
        for i in 0..3 {
            rf.replica_mut(i).flush_all().unwrap();
        }
        // Destroy the data block on every *disk* of replica 0 and drop its
        // caches so the fault is visible.
        let descs = rf.replica_mut(0).block_descriptors(fid).unwrap();
        for d in &descs {
            let addr = d.addr;
            rf.replica_mut(0)
                .disk_mut(d.disk as usize)
                .disk_mut()
                .corrupt_sector(addr)
                .unwrap();
        }
        rf.replica_mut(0).simulate_crash();
        rf.replica_mut(0).recover().unwrap();
        rf.replica_mut(0).open(fid).unwrap();
        // Reads keep succeeding (some will hit replica 0 first and fail
        // over).
        for _ in 0..6 {
            assert_eq!(rf.read(fid, 0, 7).unwrap(), b"survive");
        }
        assert!(rf.stats().failovers >= 1);
        assert_eq!(rf.live_replicas(), 2);
    }

    #[test]
    fn writes_skip_failed_replicas_and_resync_restores() {
        let mut rf = cluster(2);
        let fid = rf.create(ServiceType::Basic).unwrap();
        rf.open(fid).unwrap();
        rf.write(fid, 0, b"v1").unwrap();
        rf.mark_failed(1).unwrap();
        rf.write(fid, 0, b"v2").unwrap();
        assert!(rf.stats().writes_skipped > 0);
        // Resync brings replica 1 back with v2.
        rf.resync(1).unwrap();
        assert_eq!(rf.live_replicas(), 2);
        let mut check = |i: usize| {
            rf.replica_mut(i).open(fid).unwrap();
            let d = rf.replica_mut(i).read(fid, 0, 2).unwrap();
            rf.replica_mut(i).close(fid).unwrap();
            d
        };
        assert_eq!(check(0), b"v2");
        assert_eq!(check(1), b"v2");
    }

    #[test]
    fn all_replicas_failed_is_an_error() {
        let mut rf = cluster(2);
        let fid = rf.create(ServiceType::Basic).unwrap();
        rf.open(fid).unwrap();
        rf.mark_failed(0).unwrap();
        rf.mark_failed(1).unwrap();
        assert!(matches!(
            rf.read(fid, 0, 1),
            Err(ReplicationError::AllReplicasFailed(_))
        ));
        assert!(rf.write(fid, 0, b"x").is_err());
    }

    #[test]
    fn identifiers_allocated_in_lock_step() {
        let mut rf = cluster(3);
        let a = rf.create(ServiceType::Basic).unwrap();
        let b = rf.create(ServiceType::Basic).unwrap();
        assert_ne!(a, b);
        // Both exist on every replica.
        for i in 0..3 {
            assert!(rf.replica_mut(i).exists(a));
            assert!(rf.replica_mut(i).exists(b));
        }
    }

    #[test]
    fn semantic_errors_do_not_fail_over() {
        let mut rf = cluster(2);
        let fid = rf.create(ServiceType::Basic).unwrap();
        // Not open: the NotOpen error must propagate, not mark replicas
        // failed.
        assert!(matches!(
            rf.read(fid, 0, 1),
            Err(ReplicationError::File(FileServiceError::NotOpen(_)))
        ));
        assert_eq!(rf.live_replicas(), 2);
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use rhodos_file_service::FileServiceConfig;
    use rhodos_simdisk::{DiskGeometry, LatencyModel, SimClock};

    fn pair() -> ReplicatedFiles {
        let clock = SimClock::new();
        let mk = || {
            FileService::single_disk(
                DiskGeometry::medium(),
                LatencyModel::instant(),
                clock.clone(),
                FileServiceConfig::default(),
            )
            .unwrap()
        };
        ReplicatedFiles::new(
            vec![mk(), mk()],
            ReplicationConfig {
                read_round_robin: false,
            },
        )
    }

    #[test]
    fn fixed_read_policy_prefers_the_first_live_replica() {
        let mut rf = pair();
        let fid = rf.create(ServiceType::Basic).unwrap();
        rf.open(fid).unwrap();
        rf.write(fid, 0, b"pinned").unwrap();
        for _ in 0..5 {
            rf.read(fid, 0, 6).unwrap();
        }
        assert_eq!(rf.stats().reads_per_replica, vec![5, 0]);
    }

    #[test]
    fn attributes_are_consistent_across_replicas() {
        let mut rf = pair();
        let fid = rf.create(ServiceType::Basic).unwrap();
        rf.open(fid).unwrap();
        rf.write(fid, 0, b"12345").unwrap();
        assert_eq!(rf.get_attribute(fid).unwrap().size, 5);
        rf.close(fid).unwrap();
        assert_eq!(rf.get_attribute(fid).unwrap().ref_count, 0);
    }

    #[test]
    fn delete_applies_everywhere() {
        let mut rf = pair();
        let fid = rf.create(ServiceType::Basic).unwrap();
        rf.delete(fid).unwrap();
        for i in 0..2 {
            assert!(!rf.replica_mut(i).exists(fid));
        }
    }

    #[test]
    fn out_of_range_replica_operations_error() {
        let mut rf = pair();
        assert!(matches!(
            rf.mark_failed(9),
            Err(ReplicationError::NoSuchReplica(9))
        ));
        assert!(matches!(
            rf.resync(9),
            Err(ReplicationError::NoSuchReplica(9))
        ));
    }

    #[test]
    fn resync_needs_a_live_source() {
        let mut rf = pair();
        rf.mark_failed(0).unwrap();
        rf.mark_failed(1).unwrap();
        assert!(matches!(
            rf.resync(0),
            Err(ReplicationError::AllReplicasFailed(_))
        ));
    }
}
