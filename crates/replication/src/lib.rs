//! # rhodos-replication — the RHODOS replication service
//!
//! The design goals require that the facility "must have the provision to
//! support the concept of file replication" (§2.1), and the architecture
//! of Figure 1 places a replication service above the file service.
//!
//! This crate implements primary-copy replication over a set of
//! [`FileService`] replicas (each standing for a file server on a
//! different machine):
//!
//! * **write-all** — mutations are applied to every live replica;
//! * **read-one** — reads are served by one replica (round-robin across
//!   live replicas for load spreading), failing over transparently when a
//!   replica faults;
//! * **resynchronisation** — a repaired replica is rebuilt from the
//!   primary before rejoining.
//!
//! File identifiers are allocated in lock-step on every replica, so one
//! [`FileId`] is valid cluster-wide.
//!
//! # Example
//!
//! ```
//! use rhodos_replication::{ReplicatedFiles, ReplicationConfig};
//! use rhodos_file_service::{FileService, FileServiceConfig, ServiceType};
//! use rhodos_simdisk::{DiskGeometry, LatencyModel, SimClock};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let clock = SimClock::new();
//! let mk = || FileService::single_disk(
//!     DiskGeometry::medium(), LatencyModel::default(), clock.clone(),
//!     FileServiceConfig::default(),
//! ).unwrap();
//! let mut rf = ReplicatedFiles::new(vec![mk(), mk(), mk()], ReplicationConfig::default());
//! let fid = rf.create(ServiceType::Basic)?;
//! rf.open(fid)?;
//! rf.write(fid, 0, b"three copies")?;
//! assert_eq!(rf.read(fid, 0, 12)?, b"three copies");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod rpc;
pub mod wire;

use rhodos_file_service::{
    FileAttributes, FileId, FileService, FileServiceError, ScrubFinding, ScrubOwner, ScrubReport,
    ServiceType,
};
use rhodos_simdisk::{SectorAddr, SimDisk};

pub use rpc::{ReplicatedRpcFiles, RpcReplicationStats};

/// Tunables of the replication service.
#[derive(Debug, Clone, Copy)]
pub struct ReplicationConfig {
    /// Spread reads round-robin over live replicas (false: always the
    /// lowest-numbered live replica).
    pub read_round_robin: bool,
    /// Mask device faults during write-all: the faulty replica is marked
    /// failed and the mutation continues on the remaining live replicas,
    /// exactly as the read path fails over. `false` reproduces the
    /// pre-fix behaviour — the fan-out aborts at the first fault, after
    /// earlier replicas already applied the mutation — kept only for the
    /// E17 ablation.
    pub write_failover: bool,
}

impl Default for ReplicationConfig {
    fn default() -> Self {
        Self {
            read_round_robin: true,
            write_failover: true,
        }
    }
}

/// Counters of replication behaviour.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReplicationStats {
    /// Reads served per replica.
    pub reads_per_replica: Vec<u64>,
    /// Failovers: a replica faulted mid-read or mid-write (or became
    /// unreachable over RPC) and was masked out of the live set.
    pub failovers: u64,
    /// Replicas resynchronised.
    pub resyncs: u64,
    /// Writes suppressed because a replica was marked failed.
    pub writes_skipped: u64,
    /// Sectors copied onto returning replicas by [`ReplicatedFiles::resync`].
    pub resync_sectors_copied: u64,
    /// Latent faults one replica's scrub could not repair locally that
    /// were healed from a live peer's copy by [`ReplicatedFiles::scrub`].
    pub peer_repairs: u64,
}

/// Errors returned by the replication service.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ReplicationError {
    /// Every replica failed the operation on this file.
    AllReplicasFailed(FileId),
    /// No live replica exists to serve an operation that is not tied to
    /// one file (`create`, or finding a resync source).
    NoLiveReplicas,
    /// The replica index is out of range.
    NoSuchReplica(usize),
    /// Replica file-id allocation diverged (internal invariant violated).
    Diverged,
    /// Underlying file-service failure (from the last replica tried).
    File(FileServiceError),
}

impl std::fmt::Display for ReplicationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplicationError::AllReplicasFailed(fid) => {
                write!(f, "every replica failed operating on {fid}")
            }
            ReplicationError::NoLiveReplicas => write!(f, "no live replica"),
            ReplicationError::NoSuchReplica(i) => write!(f, "no replica {i}"),
            ReplicationError::Diverged => write!(f, "replica state diverged"),
            ReplicationError::File(e) => write!(f, "file service failure: {e}"),
        }
    }
}

/// Whether `e` indicates a fault of the replica's machine or media (fail
/// over to another replica) rather than a semantic error that every
/// replica would return identically (propagate to the caller).
pub(crate) fn is_device_fault(e: &FileServiceError) -> bool {
    matches!(e, FileServiceError::Disk(_) | FileServiceError::Corrupt(_))
}

impl std::error::Error for ReplicationError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReplicationError::File(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FileServiceError> for ReplicationError {
    fn from(e: FileServiceError) -> Self {
        ReplicationError::File(e)
    }
}

/// Primary-copy replicated files over N file services.
#[derive(Debug)]
pub struct ReplicatedFiles {
    pub(crate) replicas: Vec<FileService>,
    pub(crate) failed: Vec<bool>,
    /// Absolute index of the replica that served the last read. Stored as
    /// a *replica* index, not an index into the live subset: the live set
    /// shrinks and grows across failovers and resyncs, and an index into
    /// it would skew the rotation every time it changed.
    pub(crate) last_read: usize,
    pub(crate) config: ReplicationConfig,
    pub(crate) stats: ReplicationStats,
    /// Logical open counts, restored onto a replica after resync (a
    /// recovered replica loses its volatile reference counts).
    pub(crate) open_counts: std::collections::HashMap<FileId, u32>,
}

impl ReplicatedFiles {
    /// Creates the service over freshly formatted replicas.
    ///
    /// # Panics
    ///
    /// Panics if `replicas` is empty.
    pub fn new(replicas: Vec<FileService>, config: ReplicationConfig) -> Self {
        assert!(!replicas.is_empty(), "need at least one replica");
        let n = replicas.len();
        Self {
            replicas,
            failed: vec![false; n],
            // One before replica 0 in the rotation, so the first
            // round-robin read lands on replica 0.
            last_read: n - 1,
            config,
            stats: ReplicationStats {
                reads_per_replica: vec![0; n],
                ..Default::default()
            },
            open_counts: std::collections::HashMap::new(),
        }
    }

    /// Number of replicas (live or failed).
    pub fn replica_count(&self) -> usize {
        self.replicas.len()
    }

    /// Number of replicas currently live.
    pub fn live_replicas(&self) -> usize {
        self.failed.iter().filter(|f| !**f).count()
    }

    /// Whether replica `i` is currently masked out of the live set.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn is_failed(&self, i: usize) -> bool {
        self.failed[i]
    }

    /// Statistics so far.
    pub fn stats(&self) -> &ReplicationStats {
        &self.stats
    }

    /// Direct access to replica `i` (fault injection).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn replica_mut(&mut self, i: usize) -> &mut FileService {
        &mut self.replicas[i]
    }

    /// Marks replica `i` failed (e.g. its machine crashed); subsequent
    /// writes skip it and reads fail over.
    ///
    /// # Errors
    ///
    /// [`ReplicationError::NoSuchReplica`].
    pub fn mark_failed(&mut self, i: usize) -> Result<(), ReplicationError> {
        if i >= self.replicas.len() {
            return Err(ReplicationError::NoSuchReplica(i));
        }
        self.failed[i] = true;
        Ok(())
    }

    fn live_indices(&self) -> Vec<usize> {
        (0..self.replicas.len())
            .filter(|i| !self.failed[*i])
            .collect()
    }

    fn first_live(&self) -> Option<usize> {
        self.live_indices().into_iter().next()
    }

    /// Applies a mutation to every live replica ("write-all").
    ///
    /// A replica that faults on its device mid-fan-out is marked failed
    /// and the mutation continues on the remaining live replicas — the
    /// write-path mirror of the read path's failover. Aborting instead
    /// (the pre-fix behaviour, `write_failover: false`) *creates*
    /// divergence: earlier replicas have applied the mutation, the faulty
    /// one has not, and nothing records that it is now stale. The call
    /// errors only when **no** replica applied the mutation.
    fn write_all<T: PartialEq + std::fmt::Debug>(
        &mut self,
        fid: Option<FileId>,
        mut op: impl FnMut(&mut FileService) -> Result<T, FileServiceError>,
    ) -> Result<T, ReplicationError> {
        let mut result: Option<T> = None;
        let mut last_device_err: Option<FileServiceError> = None;
        for i in 0..self.replicas.len() {
            if self.failed[i] {
                self.stats.writes_skipped += 1;
                continue;
            }
            match op(&mut self.replicas[i]) {
                Ok(r) => {
                    if let Some(prev) = &result {
                        if *prev != r {
                            return Err(ReplicationError::Diverged);
                        }
                    } else {
                        result = Some(r);
                    }
                }
                Err(e) if is_device_fault(&e) && self.config.write_failover => {
                    // Device fault: mask the replica out and keep going —
                    // it will be brought back by resync.
                    self.failed[i] = true;
                    self.stats.failovers += 1;
                    last_device_err = Some(e);
                }
                // Semantic error: replicas are in lock-step, so every
                // replica would answer the same — propagate. (None has
                // mutated: semantic checks precede mutation.)
                Err(e) => return Err(ReplicationError::File(e)),
            }
        }
        match result {
            Some(r) => Ok(r),
            None => Err(match (last_device_err, fid) {
                (Some(e), _) => ReplicationError::File(e),
                (None, Some(fid)) => ReplicationError::AllReplicasFailed(fid),
                (None, None) => ReplicationError::NoLiveReplicas,
            }),
        }
    }

    /// `create` on every replica; identifiers are allocated in lock-step.
    ///
    /// # Errors
    ///
    /// Propagates replica failures; [`ReplicationError::Diverged`] if the
    /// replicas returned different identifiers.
    pub fn create(&mut self, st: ServiceType) -> Result<FileId, ReplicationError> {
        self.write_all(None, |fs| fs.create(st))
    }

    /// Opens `fid` on every live replica.
    ///
    /// # Errors
    ///
    /// Replica failures.
    pub fn open(&mut self, fid: FileId) -> Result<(), ReplicationError> {
        self.write_all(Some(fid), |fs| fs.open(fid))?;
        *self.open_counts.entry(fid).or_insert(0) += 1;
        Ok(())
    }

    /// Closes `fid` on every live replica.
    ///
    /// # Errors
    ///
    /// Replica failures.
    pub fn close(&mut self, fid: FileId) -> Result<(), ReplicationError> {
        self.write_all(Some(fid), |fs| fs.close(fid))?;
        if let Some(c) = self.open_counts.get_mut(&fid) {
            *c = c.saturating_sub(1);
            if *c == 0 {
                self.open_counts.remove(&fid);
            }
        }
        Ok(())
    }

    /// Deletes `fid` on every live replica.
    ///
    /// # Errors
    ///
    /// Replica failures.
    pub fn delete(&mut self, fid: FileId) -> Result<(), ReplicationError> {
        self.write_all(Some(fid), |fs| fs.delete(fid))
    }

    /// Writes through to every live replica ("write-all").
    ///
    /// # Errors
    ///
    /// Replica failures.
    pub fn write(&mut self, fid: FileId, offset: u64, data: &[u8]) -> Result<(), ReplicationError> {
        self.write_all(Some(fid), |fs| fs.write(fid, offset, data))
    }

    /// Attributes from one live replica.
    ///
    /// # Errors
    ///
    /// Replica failures.
    pub fn get_attribute(&mut self, fid: FileId) -> Result<FileAttributes, ReplicationError> {
        let i = self
            .first_live()
            .ok_or(ReplicationError::AllReplicasFailed(fid))?;
        Ok(self.replicas[i].get_attribute(fid)?)
    }

    /// Reads from one replica ("read-one"), failing over to the next live
    /// replica — and marking the faulty one failed — on device errors.
    ///
    /// # Errors
    ///
    /// [`ReplicationError::AllReplicasFailed`] when no replica can serve
    /// the read.
    pub fn read(
        &mut self,
        fid: FileId,
        offset: u64,
        len: usize,
    ) -> Result<Vec<u8>, ReplicationError> {
        let n = self.replicas.len();
        // Rotate from the replica after the last one that served a read
        // (absolute index, so the rotation is even regardless of which
        // replicas are currently failed).
        let start = if self.config.read_round_robin {
            (self.last_read + 1) % n
        } else {
            0
        };
        let mut last_err: Option<FileServiceError> = None;
        for k in 0..n {
            let i = (start + k) % n;
            if self.failed[i] {
                continue;
            }
            match self.replicas[i].read(fid, offset, len) {
                Ok(data) => {
                    self.stats.reads_per_replica[i] += 1;
                    self.last_read = i;
                    return Ok(data);
                }
                Err(e) if is_device_fault(&e) => {
                    // Device fault: fail over and remember the suspect.
                    self.failed[i] = true;
                    self.stats.failovers += 1;
                    last_err = Some(e);
                }
                Err(e) => return Err(ReplicationError::File(e)), // semantic error: propagate
            }
        }
        match last_err {
            Some(e) => Err(ReplicationError::File(e)),
            None => Err(ReplicationError::AllReplicasFailed(fid)),
        }
    }

    /// Repairs and resynchronises replica `i` from the first other live
    /// replica, then rejoins it to the write set.
    ///
    /// The resync is **physical**: the source flushes its dirty state,
    /// every sector of the returning replica's disks (main storage and
    /// stable mirrors) that differs from the source — or is marked bad —
    /// is re-copied in coalesced runs, and the replica rebuilds its
    /// volatile state from the repaired platters with
    /// [`FileService::recover`]. Afterwards the replica's disk images are
    /// byte-identical to the source's, whatever the divergence was: a
    /// missed write, a torn sector, a file it never saw created, or
    /// structures scrambled beyond what a logical per-file copy could
    /// reconcile. Logical open counts (volatile, lost in the crash) are
    /// restored last so `close`/`delete` sequencing keeps working.
    ///
    /// # Errors
    ///
    /// [`ReplicationError::NoLiveReplicas`] when no other live replica
    /// can act as the source; device faults of either side propagate (a
    /// bad *source* sector fails the copy rather than propagating
    /// garbage).
    pub fn resync(&mut self, i: usize) -> Result<(), ReplicationError> {
        if i >= self.replicas.len() {
            return Err(ReplicationError::NoSuchReplica(i));
        }
        let src = self
            .live_indices()
            .into_iter()
            .find(|&j| j != i)
            .ok_or(ReplicationError::NoLiveReplicas)?;
        let mut copied = 0u64;
        {
            let (src_fs, dst_fs) = two_mut(&mut self.replicas, src, i);
            // The source of truth must be on its platters before a
            // physical copy — including stable-storage writes still
            // queued for the second mirror.
            src_fs.flush_all()?;
            for d in 0..src_fs.disk_count() {
                if let Some(stable) = src_fs.disk_mut(d).stable_mut() {
                    stable.flush_deferred().map_err(wrap_disk_err)?;
                }
            }
            if src_fs.disk_count() != dst_fs.disk_count() {
                return Err(ReplicationError::Diverged);
            }
            for d in 0..src_fs.disk_count() {
                copied += copy_divergent_sectors(
                    src_fs.disk_mut(d).disk_mut(),
                    dst_fs.disk_mut(d).disk_mut(),
                )?;
                match (
                    src_fs.disk_mut(d).stable_mut(),
                    dst_fs.disk_mut(d).stable_mut(),
                ) {
                    (Some(s), Some(t)) => {
                        copied += copy_divergent_sectors(s.mirror_a_mut(), t.mirror_a_mut())?;
                        copied += copy_divergent_sectors(s.mirror_b_mut(), t.mirror_b_mut())?;
                    }
                    (None, None) => {}
                    _ => return Err(ReplicationError::Diverged),
                }
            }
        }
        self.stats.resync_sectors_copied += copied;
        // Rebuild the returning replica's volatile state (directory map,
        // FITs, allocation bitmaps, caches) from the copied platters.
        self.replicas[i].simulate_crash();
        self.replicas[i].recover()?;
        // Restore the logical open state the recovered replica lost.
        // In-memory only: the copied platters already hold the source's
        // persisted attributes, and a re-`open` would stamp fresh stable
        // sequence numbers, breaking byte-identity with the source.
        for (fid, count) in &self.open_counts {
            self.replicas[i].restore_open_count(*fid, *count)?;
        }
        self.failed[i] = false;
        self.stats.resyncs += 1;
        Ok(())
    }

    /// Scrubs every live replica and heals cross-replica: latent faults a
    /// replica cannot repair from its own redundancy (stable mirror or
    /// block pool) are rewritten from the first live peer holding a good
    /// copy. Replication is the outermost redundancy tier, so a fault is
    /// counted `still_unrecoverable` only when **no** live replica can
    /// produce the data — and even then it is reported, never dropped.
    ///
    /// `budget` is the per-replica sector budget, as in
    /// [`FileService::scrub`]. A replica whose scrub fails outright (its
    /// disk crashed) is masked out of the live set like any other device
    /// fault — bring it back with [`Self::resync`].
    ///
    /// # Errors
    ///
    /// [`ReplicationError::NoLiveReplicas`] when every replica is failed.
    pub fn scrub(&mut self, budget: Option<u64>) -> Result<ClusterScrubReport, ReplicationError> {
        let n = self.replicas.len();
        let mut report = ClusterScrubReport {
            replicas: vec![None; n],
            peer_repairs: 0,
            still_unrecoverable: 0,
        };
        for i in 0..n {
            if self.failed[i] {
                continue;
            }
            let local = match self.replicas[i].scrub(budget) {
                Ok(r) => r,
                Err(_) => {
                    // The scrub walk itself failed (crashed disk): the
                    // replica is faulty, not the cluster scrub.
                    self.failed[i] = true;
                    self.stats.failovers += 1;
                    continue;
                }
            };
            for finding in local.unrecoverable() {
                if self.repair_from_peer(i, finding) {
                    report.peer_repairs += 1;
                    self.stats.peer_repairs += 1;
                } else {
                    report.still_unrecoverable += 1;
                }
            }
            report.replicas[i] = Some(local);
        }
        if report.replicas.iter().all(Option::is_none) {
            return Err(ReplicationError::NoLiveReplicas);
        }
        Ok(report)
    }

    /// Heals one unrecoverable finding on replica `i` from the first live
    /// peer with a good copy. Data blocks go through the file services'
    /// logical block paths; metadata fragments are copied physically
    /// (replicas run in lock-step, so the same fragment address holds the
    /// same bytes on every replica). Either way the local rewrite lands
    /// through the normal put path, quarantining and remapping the bad
    /// sector.
    fn repair_from_peer(&mut self, i: usize, finding: &ScrubFinding) -> bool {
        let peers: Vec<usize> = self
            .live_indices()
            .into_iter()
            .filter(|&j| j != i)
            .collect();
        match finding.owner {
            ScrubOwner::Data { fid, block } => {
                for j in peers {
                    let Some(good) = self.replicas[j].read_block_for_repair(fid, block) else {
                        continue;
                    };
                    if self.replicas[i].rewrite_block(fid, block, &good).is_ok() {
                        return true;
                    }
                }
                false
            }
            // Parity units are derived data, but lock-step replicas hold
            // identical bytes at identical addresses, so the physical
            // copy used for metadata fragments is equally valid here
            // (and the local scrubber already tried reconstruction).
            ScrubOwner::Directory
            | ScrubOwner::Fit(_)
            | ScrubOwner::Indirect(_)
            | ScrubOwner::Parity { .. } => {
                let d = finding.disk as usize;
                let frag = rhodos_disk_service::Extent::new(finding.addr, 1);
                for j in peers {
                    let Ok(good) = self.replicas[j].disk_mut(d).get(frag) else {
                        continue;
                    };
                    if self.replicas[i]
                        .disk_mut(d)
                        .put(frag, &good, rhodos_disk_service::StablePolicy::None)
                        .is_ok()
                    {
                        return true;
                    }
                }
                false
            }
        }
    }
}

/// Result of one cluster-wide [`ReplicatedFiles::scrub`].
#[derive(Debug, Clone, Default)]
pub struct ClusterScrubReport {
    /// Per-replica scrub reports (`None` for replicas that were failed or
    /// faulted during the walk).
    pub replicas: Vec<Option<ScrubReport>>,
    /// Faults healed from a live peer after local redundancy fell short.
    pub peer_repairs: u64,
    /// Faults no live replica could produce the data for — data loss,
    /// reported loudly.
    pub still_unrecoverable: u64,
}

impl ClusterScrubReport {
    /// Latent faults found across all replicas this call.
    pub fn faults_found(&self) -> u64 {
        self.replicas
            .iter()
            .flatten()
            .map(|r| r.stats.faults_found)
            .sum()
    }

    /// Whether every scanned replica was healthy.
    pub fn is_clean(&self) -> bool {
        self.replicas.iter().flatten().all(ScrubReport::is_clean)
    }
}

/// Disjoint `&mut` to two distinct elements of a slice.
fn two_mut<T>(v: &mut [T], a: usize, b: usize) -> (&mut T, &mut T) {
    assert_ne!(a, b, "resync source must differ from the target");
    if a < b {
        let (lo, hi) = v.split_at_mut(b);
        (&mut lo[a], &mut hi[0])
    } else {
        let (lo, hi) = v.split_at_mut(a);
        (&mut hi[0], &mut lo[b])
    }
}

/// Copies every sector of `dst` that differs from `src` (or is marked as
/// a media fault on `dst`), coalescing adjacent sectors into runs so one
/// run costs one disk reference per side. Returns sectors copied.
///
/// Reads go through the source's normal fault-checked path — resyncing
/// from a source with its own media faults fails loudly instead of
/// propagating garbage. Writes heal the target's bad sectors via the
/// simulator's spare-sector remapping, and the target is power-cycled
/// (`repair`) first so a crashed disk accepts the copy.
fn copy_divergent_sectors(src: &mut SimDisk, dst: &mut SimDisk) -> Result<u64, ReplicationError> {
    let total = src.geometry().total_sectors();
    if dst.geometry().total_sectors() != total {
        return Err(ReplicationError::Diverged);
    }
    dst.repair();
    let mut runs: Vec<(SectorAddr, u64)> = Vec::new();
    for s in 0..total {
        // `sector_faulty` resolves the target's spare-sector remap, so a
        // re-failed spare is recognised as divergent too.
        let needs_copy = dst.sector_faulty(s)
            || src.peek_sector(s).expect("in range") != dst.peek_sector(s).expect("in range");
        if needs_copy {
            match runs.last_mut() {
                Some((start, len)) if *start + *len == s => *len += 1,
                _ => runs.push((s, 1)),
            }
        }
    }
    let mut copied = 0u64;
    for (start, len) in runs {
        let data = src.read_sectors(start, len).map_err(wrap_disk_err)?;
        dst.write_sectors(start, data.as_slice())
            .map_err(wrap_disk_err)?;
        copied += len;
    }
    Ok(copied)
}

fn wrap_disk_err(e: rhodos_simdisk::DiskError) -> ReplicationError {
    ReplicationError::File(FileServiceError::Disk(
        rhodos_disk_service::DiskServiceError::Disk(e),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rhodos_file_service::FileServiceConfig;
    use rhodos_simdisk::{DiskGeometry, LatencyModel, SimClock};

    fn cluster(n: usize) -> ReplicatedFiles {
        let clock = SimClock::new();
        let replicas = (0..n)
            .map(|_| {
                FileService::single_disk(
                    DiskGeometry::medium(),
                    LatencyModel::default(),
                    clock.clone(),
                    FileServiceConfig::default(),
                )
                .unwrap()
            })
            .collect();
        ReplicatedFiles::new(replicas, ReplicationConfig::default())
    }

    #[test]
    fn write_all_read_one_round_trip() {
        let mut rf = cluster(3);
        let fid = rf.create(ServiceType::Basic).unwrap();
        rf.open(fid).unwrap();
        rf.write(fid, 0, b"replicated").unwrap();
        for _ in 0..6 {
            assert_eq!(rf.read(fid, 0, 10).unwrap(), b"replicated");
        }
        // Round-robin spread the reads.
        let spread = rf.stats().reads_per_replica.clone();
        assert!(spread.iter().filter(|&&c| c > 0).count() >= 2, "{spread:?}");
    }

    #[test]
    fn read_fails_over_when_a_replica_faults() {
        let mut rf = cluster(3);
        let fid = rf.create(ServiceType::Basic).unwrap();
        rf.open(fid).unwrap();
        rf.write(fid, 0, b"survive").unwrap();
        // Every replica must flush so the data is on its platter.
        for i in 0..3 {
            rf.replica_mut(i).flush_all().unwrap();
        }
        // Destroy the data block on every *disk* of replica 0 and drop its
        // caches so the fault is visible.
        let descs = rf.replica_mut(0).block_descriptors(fid).unwrap();
        for d in &descs {
            let addr = d.addr;
            rf.replica_mut(0)
                .disk_mut(d.disk as usize)
                .disk_mut()
                .corrupt_sector(addr)
                .unwrap();
        }
        rf.replica_mut(0).simulate_crash();
        rf.replica_mut(0).recover().unwrap();
        rf.replica_mut(0).open(fid).unwrap();
        // Reads keep succeeding (some will hit replica 0 first and fail
        // over).
        for _ in 0..6 {
            assert_eq!(rf.read(fid, 0, 7).unwrap(), b"survive");
        }
        assert!(rf.stats().failovers >= 1);
        assert_eq!(rf.live_replicas(), 2);
    }

    #[test]
    fn writes_skip_failed_replicas_and_resync_restores() {
        let mut rf = cluster(2);
        let fid = rf.create(ServiceType::Basic).unwrap();
        rf.open(fid).unwrap();
        rf.write(fid, 0, b"v1").unwrap();
        rf.mark_failed(1).unwrap();
        rf.write(fid, 0, b"v2").unwrap();
        assert!(rf.stats().writes_skipped > 0);
        // Resync brings replica 1 back with v2.
        rf.resync(1).unwrap();
        assert_eq!(rf.live_replicas(), 2);
        let mut check = |i: usize| {
            rf.replica_mut(i).open(fid).unwrap();
            let d = rf.replica_mut(i).read(fid, 0, 2).unwrap();
            rf.replica_mut(i).close(fid).unwrap();
            d
        };
        assert_eq!(check(0), b"v2");
        assert_eq!(check(1), b"v2");
    }

    #[test]
    fn all_replicas_failed_is_an_error() {
        let mut rf = cluster(2);
        let fid = rf.create(ServiceType::Basic).unwrap();
        rf.open(fid).unwrap();
        rf.mark_failed(0).unwrap();
        rf.mark_failed(1).unwrap();
        assert!(matches!(
            rf.read(fid, 0, 1),
            Err(ReplicationError::AllReplicasFailed(_))
        ));
        assert!(rf.write(fid, 0, b"x").is_err());
    }

    #[test]
    fn identifiers_allocated_in_lock_step() {
        let mut rf = cluster(3);
        let a = rf.create(ServiceType::Basic).unwrap();
        let b = rf.create(ServiceType::Basic).unwrap();
        assert_ne!(a, b);
        // Both exist on every replica.
        for i in 0..3 {
            assert!(rf.replica_mut(i).exists(a));
            assert!(rf.replica_mut(i).exists(b));
        }
    }

    #[test]
    fn semantic_errors_do_not_fail_over() {
        let mut rf = cluster(2);
        let fid = rf.create(ServiceType::Basic).unwrap();
        // Not open: the NotOpen error must propagate, not mark replicas
        // failed.
        assert!(matches!(
            rf.read(fid, 0, 1),
            Err(ReplicationError::File(FileServiceError::NotOpen(_)))
        ));
        assert_eq!(rf.live_replicas(), 2);
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use rhodos_file_service::FileServiceConfig;
    use rhodos_simdisk::{DiskGeometry, LatencyModel, SimClock};

    fn pair() -> ReplicatedFiles {
        let clock = SimClock::new();
        let mk = || {
            FileService::single_disk(
                DiskGeometry::medium(),
                LatencyModel::instant(),
                clock.clone(),
                FileServiceConfig::default(),
            )
            .unwrap()
        };
        ReplicatedFiles::new(
            vec![mk(), mk()],
            ReplicationConfig {
                read_round_robin: false,
                ..ReplicationConfig::default()
            },
        )
    }

    #[test]
    fn fixed_read_policy_prefers_the_first_live_replica() {
        let mut rf = pair();
        let fid = rf.create(ServiceType::Basic).unwrap();
        rf.open(fid).unwrap();
        rf.write(fid, 0, b"pinned").unwrap();
        for _ in 0..5 {
            rf.read(fid, 0, 6).unwrap();
        }
        assert_eq!(rf.stats().reads_per_replica, vec![5, 0]);
    }

    #[test]
    fn attributes_are_consistent_across_replicas() {
        let mut rf = pair();
        let fid = rf.create(ServiceType::Basic).unwrap();
        rf.open(fid).unwrap();
        rf.write(fid, 0, b"12345").unwrap();
        assert_eq!(rf.get_attribute(fid).unwrap().size, 5);
        rf.close(fid).unwrap();
        assert_eq!(rf.get_attribute(fid).unwrap().ref_count, 0);
    }

    #[test]
    fn delete_applies_everywhere() {
        let mut rf = pair();
        let fid = rf.create(ServiceType::Basic).unwrap();
        rf.delete(fid).unwrap();
        for i in 0..2 {
            assert!(!rf.replica_mut(i).exists(fid));
        }
    }

    #[test]
    fn out_of_range_replica_operations_error() {
        let mut rf = pair();
        assert!(matches!(
            rf.mark_failed(9),
            Err(ReplicationError::NoSuchReplica(9))
        ));
        assert!(matches!(
            rf.resync(9),
            Err(ReplicationError::NoSuchReplica(9))
        ));
    }

    #[test]
    fn resync_needs_a_live_source() {
        let mut rf = pair();
        rf.mark_failed(0).unwrap();
        rf.mark_failed(1).unwrap();
        assert!(matches!(
            rf.resync(0),
            Err(ReplicationError::NoLiveReplicas)
        ));
    }

    #[test]
    fn round_robin_stays_even_while_a_replica_is_out() {
        // The old implementation stored the rotation cursor modulo the
        // *live-set length*, so the distribution skewed (and replica 0 was
        // skipped first) whenever the live set changed size. The cursor is
        // an absolute replica index now: with replica 1 of 3 failed the
        // remaining two must split reads evenly, and after resync all
        // three rotate again.
        let clock = SimClock::new();
        let mk = || {
            FileService::single_disk(
                DiskGeometry::medium(),
                LatencyModel::instant(),
                clock.clone(),
                FileServiceConfig::default(),
            )
            .unwrap()
        };
        let mut rf = ReplicatedFiles::new(vec![mk(), mk(), mk()], ReplicationConfig::default());
        let fid = rf.create(ServiceType::Basic).unwrap();
        rf.open(fid).unwrap();
        rf.write(fid, 0, b"spread").unwrap();
        rf.mark_failed(1).unwrap();
        for _ in 0..12 {
            rf.read(fid, 0, 6).unwrap();
        }
        assert_eq!(rf.stats().reads_per_replica, vec![6, 0, 6]);
        rf.resync(1).unwrap();
        for _ in 0..12 {
            rf.read(fid, 0, 6).unwrap();
        }
        let spread = rf.stats().reads_per_replica.clone();
        assert_eq!(spread, vec![10, 4, 10]);
    }

    /// A pair with write-through caching: mutations reach the platters
    /// inside the `write` call, so injected device faults surface there
    /// (with the default delayed-write policy they surface at flush).
    fn write_through_pair(write_failover: bool) -> ReplicatedFiles {
        let clock = SimClock::new();
        let mk = || {
            FileService::single_disk(
                DiskGeometry::medium(),
                LatencyModel::instant(),
                clock.clone(),
                FileServiceConfig {
                    write_policy: rhodos_file_service::WritePolicy::WriteThrough,
                    ..FileServiceConfig::default()
                },
            )
            .unwrap()
        };
        ReplicatedFiles::new(
            vec![mk(), mk()],
            ReplicationConfig {
                write_failover,
                ..ReplicationConfig::default()
            },
        )
    }

    #[test]
    fn write_fault_fails_over_instead_of_diverging() {
        // Replica 0's next sector write tears mid-write: with failover the
        // mutation still lands on replica 1, replica 0 is masked out, and
        // the caller sees success.
        let mut rf = write_through_pair(true);
        let fid = rf.create(ServiceType::Basic).unwrap();
        rf.open(fid).unwrap();
        rf.write(fid, 0, b"seed data").unwrap();
        rf.replica_mut(0)
            .disk_mut(0)
            .disk_mut()
            .faults_mut()
            .crash_after_sector_writes(0);
        rf.write(fid, 0, b"new value").unwrap();
        assert_eq!(rf.stats().failovers, 1);
        assert_eq!(rf.live_replicas(), 1);
        assert_eq!(rf.read(fid, 0, 9).unwrap(), b"new value");
    }

    #[test]
    fn without_write_failover_the_old_abort_behaviour_remains() {
        // The E17 ablation switch: a device fault mid-fan-out aborts the
        // write and leaves the faulty replica in the live set (the bug).
        let mut rf = write_through_pair(false);
        let fid = rf.create(ServiceType::Basic).unwrap();
        rf.open(fid).unwrap();
        rf.write(fid, 0, b"seed data").unwrap();
        rf.replica_mut(0)
            .disk_mut(0)
            .disk_mut()
            .faults_mut()
            .crash_after_sector_writes(0);
        assert!(rf.write(fid, 0, b"new value").is_err());
        assert_eq!(rf.live_replicas(), 2, "faulty replica not masked");
        assert_eq!(rf.stats().failovers, 0);
    }

    #[test]
    fn cluster_scrub_heals_uncached_data_fault_from_peer() {
        let mut rf = pair();
        let fid = rf.create(ServiceType::Basic).unwrap();
        rf.open(fid).unwrap();
        rf.write(fid, 0, &vec![0x3C; 50_000]).unwrap();
        for i in 0..2 {
            rf.replica_mut(i).flush_all().unwrap();
            rf.replica_mut(i).evict_caches().unwrap();
        }
        // Replica 0 silently loses a data sector; its block pool is cold,
        // so local scrub cannot repair it — only the peer can.
        let addr = rf.replica_mut(0).block_descriptors(fid).unwrap()[2].addr;
        rf.replica_mut(0)
            .disk_mut(0)
            .disk_mut()
            .silently_corrupt_sector(addr)
            .unwrap();
        let report = rf.scrub(None).unwrap();
        assert_eq!(report.faults_found(), 1);
        assert_eq!(report.peer_repairs, 1);
        assert_eq!(report.still_unrecoverable, 0);
        assert_eq!(rf.stats().peer_repairs, 1);
        // Replica 0's platter is healthy again and serves the bytes alone.
        assert!(rf.replica_mut(0).scrub(None).unwrap().is_clean());
        rf.mark_failed(1).unwrap();
        assert_eq!(rf.read(fid, 17_000, 4).unwrap(), vec![0x3C; 4]);
    }

    #[test]
    fn cluster_scrub_heals_metadata_when_stable_mirrors_are_gone_too() {
        let mut rf = pair();
        let fid = rf.create(ServiceType::Basic).unwrap();
        rf.open(fid).unwrap();
        rf.write(fid, 0, b"metadata matters").unwrap();
        for i in 0..2 {
            rf.replica_mut(i).flush_all().unwrap();
        }
        // Kill replica 0's FIT fragment on main storage AND both stable
        // mirrors: local repair has nothing left; the peer does.
        let fit_frag = rf.replica_mut(0).block_descriptors(fid).unwrap()[0].addr - 1;
        let r0 = rf.replica_mut(0);
        r0.evict_caches().unwrap();
        r0.disk_mut(0)
            .disk_mut()
            .silently_corrupt_sector(fit_frag)
            .unwrap();
        let stable = r0.disk_mut(0).stable_mut().unwrap();
        stable.mirror_a_mut().corrupt_sector(2 * fit_frag).unwrap();
        stable.mirror_b_mut().corrupt_sector(2 * fit_frag).unwrap();
        let report = rf.scrub(None).unwrap();
        assert!(report.peer_repairs >= 1, "{report:?}");
        assert_eq!(report.still_unrecoverable, 0);
        assert!(rf.replica_mut(0).scrub(None).unwrap().is_clean());
    }

    #[test]
    fn cluster_scrub_reports_loss_when_no_replica_has_the_data() {
        let mut rf = pair();
        let fid = rf.create(ServiceType::Basic).unwrap();
        rf.open(fid).unwrap();
        rf.write(fid, 0, &vec![0x42; 30_000]).unwrap();
        // The same block rots on BOTH replicas: genuine data loss. The
        // scrub must say so, not pretend. (Caches are dropped *after* the
        // injection so no cache level still holds the good bytes.)
        for i in 0..2 {
            rf.replica_mut(i).flush_all().unwrap();
            let addr = rf.replica_mut(i).block_descriptors(fid).unwrap()[1].addr;
            rf.replica_mut(i)
                .disk_mut(0)
                .disk_mut()
                .silently_corrupt_sector(addr)
                .unwrap();
            rf.replica_mut(i).evict_caches().unwrap();
        }
        let report = rf.scrub(None).unwrap();
        assert!(report.still_unrecoverable >= 1, "{report:?}");
    }

    #[test]
    fn resync_restores_open_counts_for_close_and_delete() {
        // A recovered replica loses its volatile reference counts; resync
        // must restore them or the next cluster-wide close/delete would
        // hit NotOpen on the rejoined replica and wrongly propagate.
        let mut rf = pair();
        let fid = rf.create(ServiceType::Basic).unwrap();
        rf.open(fid).unwrap();
        rf.open(fid).unwrap(); // ref_count 2
        rf.write(fid, 0, b"counted").unwrap();
        rf.mark_failed(1).unwrap();
        rf.write(fid, 0, b"counted!").unwrap();
        rf.resync(1).unwrap();
        // Both closes must sequence correctly on the rejoined replica.
        rf.close(fid).unwrap();
        rf.close(fid).unwrap();
        assert_eq!(rf.get_attribute(fid).unwrap().ref_count, 0);
        rf.delete(fid).unwrap();
        for i in 0..2 {
            assert!(!rf.replica_mut(i).exists(fid));
        }
    }
}
