//! Networked replication: [`ReplicatedRpcFiles`] drives every replication
//! operation through the idempotent RPC machinery of `rhodos-net`.
//!
//! In RHODOS the replication service does not share an address space with
//! the file servers it coordinates — each replica is a file agent on
//! another machine, reached by message passing over a lossy transport
//! (§3). This module models that deployment: one [`SimNetwork`] channel,
//! one [`RpcClient`] and one server-side [`ReplayCache`] per replica. An
//! operation is encoded to request bytes, retried with exponential
//! backoff + jitter while the channel loses messages, executed at most
//! once per request id on the server, and its reply decoded back —
//! duplicates are answered from the replay cache, and every request
//! piggybacks an acknowledgement that lets the server prune the cache so
//! its per-client state stays bounded by the in-flight window ("the
//! RHODOS file service is 'nearly' stateless", §3).
//!
//! Failure handling composes with the write-path failover of
//! [`ReplicatedFiles`]: a replica whose channel exhausts its retries is
//! treated exactly like one whose disk faulted — masked out of the live
//! set, to be brought back by [`ReplicatedRpcFiles::resync`] (which also
//! models the crash by discarding the replica's volatile replay state).

use crate::{
    is_device_fault, ReplicatedFiles, ReplicationConfig, ReplicationError, ReplicationStats,
};
use rhodos_disk_service::codec::Decoder;
use rhodos_file_service::{
    FileAttributes, FileId, FileService, FileServiceError, LeaseGrant, LeaseMode, LeaseToken,
    ServiceType,
};
use rhodos_net::{NetConfig, ReplayCache, RpcClient, SimNetwork};
use rhodos_simdisk::HlcStamp;

// The wire format (opcodes, codecs, `serve`, per-machine `Channel`)
// lives in [`crate::wire`], shared with the cluster front-end.
use crate::wire::{
    decode_grant, decode_reply, decode_stamp, encode_create, encode_fid_op, encode_lease_acquire,
    encode_lease_reattach, encode_read, encode_token_op, encode_write, encode_write_leased, serve,
    Channel, OP_CLOSE, OP_DELETE, OP_GET_ATTR, OP_LEASE_RELEASE, OP_LEASE_RENEW, OP_OPEN,
};

// ---- the networked front-end ------------------------------------------

/// Aggregate RPC-layer statistics across all replica channels.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RpcReplicationStats {
    /// Logical RPCs issued (all channels).
    pub calls: u64,
    /// Retries beyond the first attempt.
    pub retries: u64,
    /// Virtual time spent backing off between retries.
    pub backoff_us: u64,
    /// Operations the replica servers actually executed.
    pub executed: u64,
    /// Duplicate requests answered from replay caches.
    pub replayed: u64,
    /// Largest number of recorded replies any server held at once — the
    /// "nearly stateless" bound.
    pub peak_entries: u64,
    /// Replicas masked out because their channel exhausted its retries.
    pub unreachable: u64,
    /// Messages transmitted (both legs, all channels).
    pub net_sent: u64,
    /// Messages lost in transit.
    pub net_lost: u64,
    /// Extra duplicate copies delivered.
    pub net_duplicated: u64,
}

/// [`ReplicatedFiles`] deployed over per-replica RPC channels: write-all
/// fan-out, read-one with round-robin failover, and resynchronisation,
/// with every operation encoded, retried with backoff, and executed
/// at most once per request id on the replica.
#[derive(Debug)]
pub struct ReplicatedRpcFiles {
    inner: ReplicatedFiles,
    channels: Vec<Channel>,
    unreachable: u64,
}

impl ReplicatedRpcFiles {
    /// Creates the service over freshly formatted replicas, with one
    /// channel per replica derived from `net_cfg` (per-channel seeds are
    /// decorrelated so loss patterns differ across replicas, as they
    /// would across independent links).
    ///
    /// # Panics
    ///
    /// Panics if `replicas` is empty.
    pub fn new(replicas: Vec<FileService>, config: ReplicationConfig, net_cfg: NetConfig) -> Self {
        assert!(!replicas.is_empty(), "need at least one replica");
        let clock = replicas[0].clock();
        let channels = (0..replicas.len())
            .map(|i| {
                let mut cfg = net_cfg;
                cfg.seed = net_cfg.seed.wrapping_add(i as u64 * 7919);
                Channel {
                    net: SimNetwork::new(clock.clone(), cfg),
                    client: RpcClient::new(i as u64 + 1),
                    cache: ReplayCache::new(),
                }
            })
            .collect();
        Self {
            inner: ReplicatedFiles::new(replicas, config),
            channels,
            unreachable: 0,
        }
    }

    /// Attempts per RPC before a replica is declared unreachable
    /// (applies to every channel).
    pub fn set_max_attempts(&mut self, attempts: u32) {
        for ch in &mut self.channels {
            ch.client.max_attempts = attempts;
        }
    }

    /// Replication-layer statistics (shared with the direct front-end).
    pub fn stats(&self) -> &ReplicationStats {
        self.inner.stats()
    }

    /// RPC-layer statistics aggregated over all channels.
    pub fn rpc_stats(&self) -> RpcReplicationStats {
        let mut s = RpcReplicationStats {
            unreachable: self.unreachable,
            ..Default::default()
        };
        for ch in &self.channels {
            let c = ch.client.stats();
            s.calls += c.calls;
            s.retries += c.retries;
            s.backoff_us += c.backoff_us;
            let r = ch.cache.stats();
            s.executed += r.executed;
            s.replayed += r.replayed;
            s.peak_entries = s.peak_entries.max(r.peak_entries);
            let n = ch.net.stats();
            s.net_sent += n.sent;
            s.net_lost += n.lost;
            s.net_duplicated += n.duplicated;
        }
        s
    }

    /// Recorded replies currently held by replica `i`'s replay cache.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn replay_entries(&self, i: usize) -> usize {
        self.channels[i].cache.len()
    }

    /// Number of replicas currently live.
    pub fn live_replicas(&self) -> usize {
        self.inner.live_replicas()
    }

    /// Whether replica `i` is currently masked out of the live set.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn is_failed(&self, i: usize) -> bool {
        self.inner.is_failed(i)
    }

    /// Number of replicas (live or failed).
    pub fn replica_count(&self) -> usize {
        self.inner.replica_count()
    }

    /// Direct access to replica `i` (fault injection).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn replica_mut(&mut self, i: usize) -> &mut FileService {
        self.inner.replica_mut(i)
    }

    /// Marks replica `i` failed (its machine crashed).
    ///
    /// # Errors
    ///
    /// [`ReplicationError::NoSuchReplica`].
    pub fn mark_failed(&mut self, i: usize) -> Result<(), ReplicationError> {
        self.inner.mark_failed(i)
    }

    /// One RPC to replica `i`: encode → retry with backoff → execute at
    /// most once → decode. `Err(None)` means the channel exhausted its
    /// retries (machine unreachable); `Err(Some(_))` is the replica's own
    /// error, shipped back over the wire.
    fn call_replica(&mut self, i: usize, req: &[u8]) -> Result<Vec<u8>, Option<FileServiceError>> {
        let Channel { net, client, cache } = &mut self.channels[i];
        let fs = &mut self.inner.replicas[i];
        let reply = client
            .call_with_ack(net, |rid, ack| {
                cache.execute_acked(rid, ack, || serve(fs, req))
            })
            .map_err(|_| None)?;
        decode_reply(&reply).map_err(Some)
    }

    /// Write-all fan-out over RPC, with the same failover semantics as
    /// [`ReplicatedFiles`]: device faults *and* unreachable machines mask
    /// the replica out; semantic errors propagate; the call fails only
    /// when no replica applied the mutation.
    fn rpc_write_all(
        &mut self,
        fid: Option<FileId>,
        req: &[u8],
    ) -> Result<Vec<u8>, ReplicationError> {
        let mut result: Option<Vec<u8>> = None;
        let mut last_device_err: Option<FileServiceError> = None;
        for i in 0..self.inner.replicas.len() {
            if self.inner.failed[i] {
                self.inner.stats.writes_skipped += 1;
                continue;
            }
            match self.call_replica(i, req) {
                Ok(payload) => {
                    if let Some(prev) = &result {
                        if *prev != payload {
                            return Err(ReplicationError::Diverged);
                        }
                    } else {
                        result = Some(payload);
                    }
                }
                Err(None) => {
                    // Retries exhausted: the machine is unreachable, which
                    // is indistinguishable from a crash — fail over.
                    self.inner.failed[i] = true;
                    self.inner.stats.failovers += 1;
                    self.unreachable += 1;
                }
                Err(Some(e)) if is_device_fault(&e) && self.inner.config.write_failover => {
                    self.inner.failed[i] = true;
                    self.inner.stats.failovers += 1;
                    last_device_err = Some(e);
                }
                Err(Some(e)) => return Err(ReplicationError::File(e)),
            }
        }
        match result {
            Some(r) => Ok(r),
            None => Err(match (last_device_err, fid) {
                (Some(e), _) => ReplicationError::File(e),
                (None, Some(fid)) => ReplicationError::AllReplicasFailed(fid),
                (None, None) => ReplicationError::NoLiveReplicas,
            }),
        }
    }

    /// `create` on every replica over RPC; identifiers stay in lock-step.
    ///
    /// # Errors
    ///
    /// Replica failures; [`ReplicationError::Diverged`] if replicas
    /// returned different identifiers.
    pub fn create(&mut self, st: ServiceType) -> Result<FileId, ReplicationError> {
        let payload = self.rpc_write_all(None, &encode_create(st))?;
        let mut d = Decoder::new(&payload);
        Ok(FileId(d.u64().expect("fid payload")))
    }

    /// Opens `fid` on every live replica.
    ///
    /// # Errors
    ///
    /// Replica failures.
    pub fn open(&mut self, fid: FileId) -> Result<(), ReplicationError> {
        self.rpc_write_all(Some(fid), &encode_fid_op(OP_OPEN, fid))?;
        *self.inner.open_counts.entry(fid).or_insert(0) += 1;
        Ok(())
    }

    /// Closes `fid` on every live replica.
    ///
    /// # Errors
    ///
    /// Replica failures.
    pub fn close(&mut self, fid: FileId) -> Result<(), ReplicationError> {
        self.rpc_write_all(Some(fid), &encode_fid_op(OP_CLOSE, fid))?;
        if let Some(c) = self.inner.open_counts.get_mut(&fid) {
            *c = c.saturating_sub(1);
            if *c == 0 {
                self.inner.open_counts.remove(&fid);
            }
        }
        Ok(())
    }

    /// Deletes `fid` on every live replica.
    ///
    /// # Errors
    ///
    /// Replica failures.
    pub fn delete(&mut self, fid: FileId) -> Result<(), ReplicationError> {
        self.rpc_write_all(Some(fid), &encode_fid_op(OP_DELETE, fid))?;
        Ok(())
    }

    /// Writes through to every live replica.
    ///
    /// # Errors
    ///
    /// Replica failures.
    pub fn write(&mut self, fid: FileId, offset: u64, data: &[u8]) -> Result<(), ReplicationError> {
        self.rpc_write_all(Some(fid), &encode_write(fid, offset, data))?;
        Ok(())
    }

    /// Reads from one replica, rotating round-robin and failing over —
    /// on device faults *or* unreachable machines — exactly like
    /// [`ReplicatedFiles::read`].
    ///
    /// # Errors
    ///
    /// [`ReplicationError::AllReplicasFailed`] when no replica can serve
    /// the read.
    pub fn read(
        &mut self,
        fid: FileId,
        offset: u64,
        len: usize,
    ) -> Result<Vec<u8>, ReplicationError> {
        let n = self.inner.replicas.len();
        let start = if self.inner.config.read_round_robin {
            (self.inner.last_read + 1) % n
        } else {
            0
        };
        let req = encode_read(fid, offset, len);
        let mut last_err: Option<FileServiceError> = None;
        for k in 0..n {
            let i = (start + k) % n;
            if self.inner.failed[i] {
                continue;
            }
            match self.call_replica(i, &req) {
                Ok(data) => {
                    self.inner.stats.reads_per_replica[i] += 1;
                    self.inner.last_read = i;
                    return Ok(data);
                }
                Err(None) => {
                    self.inner.failed[i] = true;
                    self.inner.stats.failovers += 1;
                    self.unreachable += 1;
                }
                Err(Some(e)) if is_device_fault(&e) => {
                    self.inner.failed[i] = true;
                    self.inner.stats.failovers += 1;
                    last_err = Some(e);
                }
                Err(Some(e)) => return Err(ReplicationError::File(e)),
            }
        }
        match last_err {
            Some(e) => Err(ReplicationError::File(e)),
            None => Err(ReplicationError::AllReplicasFailed(fid)),
        }
    }

    /// Attributes from the first live replica, over its channel.
    ///
    /// # Errors
    ///
    /// Replica failures.
    pub fn get_attribute(&mut self, fid: FileId) -> Result<FileAttributes, ReplicationError> {
        let req = encode_fid_op(OP_GET_ATTR, fid);
        let mut last_err: Option<FileServiceError> = None;
        for i in 0..self.inner.replicas.len() {
            if self.inner.failed[i] {
                continue;
            }
            match self.call_replica(i, &req) {
                Ok(payload) => {
                    let mut d = Decoder::new(&payload);
                    return Ok(FileAttributes::decode(&mut d).expect("attrs payload"));
                }
                Err(None) => {
                    self.inner.failed[i] = true;
                    self.inner.stats.failovers += 1;
                    self.unreachable += 1;
                }
                Err(Some(e)) if is_device_fault(&e) => {
                    self.inner.failed[i] = true;
                    self.inner.stats.failovers += 1;
                    last_err = Some(e);
                }
                Err(Some(e)) => return Err(ReplicationError::File(e)),
            }
        }
        match last_err {
            Some(e) => Err(ReplicationError::File(e)),
            None => Err(ReplicationError::AllReplicasFailed(fid)),
        }
    }

    /// One RPC to the first live replica, failing over — on device
    /// faults or unreachable machines — to the next. Lease operations
    /// use this: lease state is coordination soft state, kept by the
    /// replica currently acting as the read/lease coordinator, not
    /// replicated (a failed-over coordinator starts with an empty lease
    /// table, which is exactly the post-crash epoch story).
    fn rpc_first_live(&mut self, fid: FileId, req: &[u8]) -> Result<Vec<u8>, ReplicationError> {
        let mut last_err: Option<FileServiceError> = None;
        for i in 0..self.inner.replicas.len() {
            if self.inner.failed[i] {
                continue;
            }
            match self.call_replica(i, req) {
                Ok(payload) => return Ok(payload),
                Err(None) => {
                    self.inner.failed[i] = true;
                    self.inner.stats.failovers += 1;
                    self.unreachable += 1;
                }
                Err(Some(e)) if is_device_fault(&e) => {
                    self.inner.failed[i] = true;
                    self.inner.stats.failovers += 1;
                    last_err = Some(e);
                }
                Err(Some(e)) => return Err(ReplicationError::File(e)),
            }
        }
        match last_err {
            Some(e) => Err(ReplicationError::File(e)),
            None => Err(ReplicationError::AllReplicasFailed(fid)),
        }
    }

    /// Acquires a lease from the coordinator over RPC. Returns the grant
    /// plus the file's size at grant time.
    ///
    /// # Errors
    ///
    /// Replica failures; lease rejections shipped back over the wire.
    pub fn lease_acquire(
        &mut self,
        client: u64,
        fid: FileId,
        mode: LeaseMode,
    ) -> Result<(LeaseGrant, u64), ReplicationError> {
        let payload = self.rpc_first_live(fid, &encode_lease_acquire(client, fid, mode))?;
        let mut d = Decoder::new(&payload);
        let grant = decode_grant(&mut d);
        let size = d.u64().expect("size payload");
        Ok((grant, size))
    }

    /// Releases a lease at the coordinator (idempotent server-side).
    ///
    /// # Errors
    ///
    /// Replica failures.
    pub fn lease_release(&mut self, token: &LeaseToken) -> Result<(), ReplicationError> {
        self.rpc_first_live(token.fid, &encode_token_op(OP_LEASE_RELEASE, token))?;
        Ok(())
    }

    /// Renews a lease at the coordinator.
    ///
    /// # Errors
    ///
    /// [`FileServiceError::LeaseRejected`] (over the wire) if the token
    /// is dead; replica failures.
    pub fn lease_renew(&mut self, token: &LeaseToken) -> Result<(u64, HlcStamp), ReplicationError> {
        let payload = self.rpc_first_live(token.fid, &encode_token_op(OP_LEASE_RENEW, token))?;
        let mut d = Decoder::new(&payload);
        let expiry_us = d.u64().expect("expiry payload");
        let stamp = decode_stamp(&mut d);
        Ok((expiry_us, stamp))
    }

    /// Re-presents a pre-crash grant to the (restarted) coordinator.
    ///
    /// # Errors
    ///
    /// [`FileServiceError::LeaseRejected`] (over the wire) if the window
    /// closed, the epoch is stale, or an HLC race was lost.
    pub fn lease_reattach(
        &mut self,
        token: &LeaseToken,
        mode: LeaseMode,
        stamp: HlcStamp,
    ) -> Result<LeaseGrant, ReplicationError> {
        let payload = self.rpc_first_live(token.fid, &encode_lease_reattach(token, mode, stamp))?;
        let mut d = Decoder::new(&payload);
        Ok(decode_grant(&mut d))
    }

    /// A delegated writeback over RPC, gated on a live write-lease token
    /// at the coordinator. The mutation still fans out to every live
    /// replica — the lease gate is checked first, so a fenced token
    /// rejects the write before any replica applies it.
    ///
    /// # Errors
    ///
    /// [`FileServiceError::LeaseFenced`] (over the wire) if the token is
    /// dead; replica failures.
    pub fn write_leased(
        &mut self,
        fid: FileId,
        offset: u64,
        data: &[u8],
        token: &LeaseToken,
    ) -> Result<(), ReplicationError> {
        // Gate at the coordinator (first live replica holds the table).
        self.rpc_first_live(fid, &encode_write_leased(fid, offset, data, token))?;
        // Fan the raw bytes out to the remaining live replicas so copies
        // stay in lock-step.
        let req = encode_write(fid, offset, data);
        let first_live = (0..self.inner.replicas.len()).find(|&i| !self.inner.failed[i]);
        for i in 0..self.inner.replicas.len() {
            if Some(i) == first_live || self.inner.failed[i] {
                continue;
            }
            match self.call_replica(i, &req) {
                Ok(_) => {}
                Err(None) => {
                    self.inner.failed[i] = true;
                    self.inner.stats.failovers += 1;
                    self.unreachable += 1;
                }
                Err(Some(e)) if is_device_fault(&e) && self.inner.config.write_failover => {
                    self.inner.failed[i] = true;
                    self.inner.stats.failovers += 1;
                }
                Err(Some(e)) => return Err(ReplicationError::File(e)),
            }
        }
        Ok(())
    }

    /// Resynchronises replica `i` from a live source and rejoins it.
    /// The physical copy itself runs out of band (a repair crew, not an
    /// RPC): see [`ReplicatedFiles::resync`]. The replica's replay cache
    /// is discarded — a restarted server forgets its volatile request
    /// history, which is safe precisely because the client never reuses
    /// request ids.
    ///
    /// # Errors
    ///
    /// As [`ReplicatedFiles::resync`].
    pub fn resync(&mut self, i: usize) -> Result<(), ReplicationError> {
        // The restart also wipes the replica's soft lease state: the
        // simulated crash inside `resync` bumps its lease epoch and opens
        // a reattach window, so tokens it granted before going down are
        // dead unless their holders reattach.
        self.inner.resync(i)?;
        self.channels[i].cache = ReplayCache::new();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{decode_error, encode_error};
    use rhodos_disk_service::codec::Encoder;
    use rhodos_disk_service::DiskServiceError;
    use rhodos_file_service::FileServiceConfig;
    use rhodos_simdisk::{DiskError, DiskGeometry, LatencyModel, SimClock};

    fn rpc_cluster(n: usize, net_cfg: NetConfig) -> ReplicatedRpcFiles {
        let clock = SimClock::new();
        let replicas = (0..n)
            .map(|_| {
                FileService::single_disk(
                    DiskGeometry::medium(),
                    LatencyModel::instant(),
                    clock.clone(),
                    FileServiceConfig::default(),
                )
                .unwrap()
            })
            .collect();
        ReplicatedRpcFiles::new(replicas, ReplicationConfig::default(), net_cfg)
    }

    #[test]
    fn round_trip_over_a_reliable_network() {
        let mut rf = rpc_cluster(3, NetConfig::reliable());
        let fid = rf.create(ServiceType::Basic).unwrap();
        rf.open(fid).unwrap();
        rf.write(fid, 0, b"over the wire").unwrap();
        assert_eq!(rf.read(fid, 0, 13).unwrap(), b"over the wire");
        assert_eq!(rf.get_attribute(fid).unwrap().size, 13);
        rf.close(fid).unwrap();
        rf.delete(fid).unwrap();
        let s = rf.rpc_stats();
        assert!(s.calls > 0);
        assert_eq!(s.retries, 0);
        assert_eq!(s.net_lost, 0);
    }

    #[test]
    fn lossy_channels_retry_but_execute_exactly_once() {
        let mut rf = rpc_cluster(3, NetConfig::lossy(0.25, 0.25, 42));
        rf.set_max_attempts(64);
        let fid = rf.create(ServiceType::Basic).unwrap();
        rf.open(fid).unwrap();
        for round in 0..20u8 {
            rf.write(fid, 0, &[round; 64]).unwrap();
            assert_eq!(rf.read(fid, 0, 64).unwrap(), vec![round; 64]);
        }
        let s = rf.rpc_stats();
        assert!(s.retries > 0, "seed 42 must lose messages");
        assert!(s.replayed > 0, "seed 42 must duplicate messages");
        assert!(s.backoff_us > 0, "retries must back off");
        // Exactly-once despite duplication: replicas agree on contents.
        for i in 0..3 {
            rf.replica_mut(i).flush_all().unwrap();
            assert!(rf.replica_mut(i).fsck().unwrap().is_clean());
        }
        // Bounded server state: one synchronous client per channel.
        assert!(s.peak_entries <= 1, "peak {}", s.peak_entries);
    }

    #[test]
    fn unreachable_replica_is_masked_like_a_crashed_one() {
        let mut rf = rpc_cluster(2, NetConfig::reliable());
        let fid = rf.create(ServiceType::Basic).unwrap();
        rf.open(fid).unwrap();
        rf.write(fid, 0, b"before").unwrap();
        // Replica 1's link goes completely dark.
        rf.channels[1].net =
            SimNetwork::new(rf.channels[1].net.clock(), NetConfig::lossy(1.0, 0.0, 1));
        rf.set_max_attempts(3);
        rf.write(fid, 0, b"after!").unwrap();
        assert_eq!(rf.live_replicas(), 1);
        assert_eq!(rf.rpc_stats().unreachable, 1);
        assert_eq!(rf.stats().failovers, 1);
        assert_eq!(rf.read(fid, 0, 6).unwrap(), b"after!");
        // Link restored; resync rejoins the replica and wipes its replay
        // state.
        rf.channels[1].net = SimNetwork::new(rf.channels[1].net.clock(), NetConfig::reliable());
        rf.resync(1).unwrap();
        assert_eq!(rf.live_replicas(), 2);
        assert_eq!(rf.replay_entries(1), 0);
        for _ in 0..2 {
            assert_eq!(rf.read(fid, 0, 6).unwrap(), b"after!");
        }
    }

    #[test]
    fn semantic_errors_cross_the_wire_intact() {
        let mut rf = rpc_cluster(2, NetConfig::reliable());
        let fid = rf.create(ServiceType::Basic).unwrap();
        assert!(matches!(
            rf.read(fid, 0, 1),
            Err(ReplicationError::File(FileServiceError::NotOpen(f))) if f == fid
        ));
        assert_eq!(rf.live_replicas(), 2, "semantic errors must not fail over");
        rf.open(fid).unwrap();
        rf.write(fid, 0, b"xyz").unwrap();
        assert!(matches!(
            rf.read(fid, 100, 1),
            Err(ReplicationError::File(FileServiceError::BeyondEof {
                offset: 100,
                size: 3,
                ..
            }))
        ));
    }

    #[test]
    fn lease_ops_cross_the_wire() {
        let mut rf = rpc_cluster(3, NetConfig::lossy(0.15, 0.1, 9));
        rf.set_max_attempts(64);
        let fid = rf.create(ServiceType::Basic).unwrap();
        rf.open(fid).unwrap();
        // Acquire a write lease at the coordinator and push a delegated
        // writeback through it; the bytes must land on every replica.
        let (grant, size) = rf.lease_acquire(7, fid, LeaseMode::Write).unwrap();
        assert_eq!(size, 0);
        assert_eq!(grant.token.client, 7);
        rf.write_leased(fid, 0, b"delegated", &grant.token).unwrap();
        assert_eq!(rf.read(fid, 0, 9).unwrap(), b"delegated");
        // Renew extends the expiry; release kills the token.
        let (expiry, _) = rf.lease_renew(&grant.token).unwrap();
        assert!(expiry >= grant.expiry_us);
        rf.lease_release(&grant.token).unwrap();
        assert!(matches!(
            rf.write_leased(fid, 0, b"too late", &grant.token),
            Err(ReplicationError::File(FileServiceError::LeaseFenced(f))) if f == fid
        ));
        for i in 0..3 {
            rf.replica_mut(i).flush_all().unwrap();
            assert_eq!(rf.replica_mut(i).read(fid, 0, 9).unwrap(), b"delegated");
        }
    }

    #[test]
    fn resync_bumps_lease_epoch_and_honours_reattach() {
        let mut rf = rpc_cluster(2, NetConfig::reliable());
        let fid = rf.create(ServiceType::Basic).unwrap();
        rf.open(fid).unwrap();
        let (grant, _) = rf.lease_acquire(3, fid, LeaseMode::Write).unwrap();
        // The coordinator goes down and is resynced: its lease table is
        // soft state, so the epoch bumps and the old token is dead.
        rf.mark_failed(0).unwrap();
        rf.resync(0).unwrap();
        assert!(matches!(
            rf.write_leased(fid, 0, b"stale", &grant.token),
            Err(ReplicationError::File(FileServiceError::LeaseFenced(_)))
        ));
        // But a reattach claim inside the window reconstructs the grant.
        let g2 = rf
            .lease_reattach(&grant.token, grant.mode, grant.stamp)
            .unwrap();
        assert_eq!(g2.token.epoch, grant.token.epoch + 1);
        rf.write_leased(fid, 0, b"fresh", &g2.token).unwrap();
        assert_eq!(rf.read(fid, 0, 5).unwrap(), b"fresh");
    }

    #[test]
    fn error_codec_round_trips() {
        let errors = vec![
            FileServiceError::NotFound(FileId(7)),
            FileServiceError::NotOpen(FileId(8)),
            FileServiceError::Busy(FileId(9)),
            FileServiceError::BeyondEof {
                fid: FileId(1),
                offset: 10,
                size: 5,
            },
            FileServiceError::FileTooLarge(FileId(2)),
            FileServiceError::DirectoryFull,
            FileServiceError::Corrupt(FileId(3)),
            FileServiceError::Disk(DiskServiceError::NoSpace {
                requested: 4,
                largest_free: 2,
                total_free: 3,
            }),
            FileServiceError::Disk(DiskServiceError::NoStableStorage),
            FileServiceError::Disk(DiskServiceError::SizeMismatch {
                expected: 512,
                got: 100,
            }),
            FileServiceError::Disk(DiskServiceError::BadExtent),
            FileServiceError::Disk(DiskServiceError::Disk(DiskError::OutOfRange {
                start: 1,
                count: 2,
                total: 8,
            })),
            FileServiceError::Disk(DiskServiceError::Disk(DiskError::BadSector(77))),
            FileServiceError::Disk(DiskServiceError::Disk(DiskError::Crashed)),
            FileServiceError::Disk(DiskServiceError::Disk(DiskError::UnalignedBuffer {
                len: 13,
            })),
            FileServiceError::Disk(DiskServiceError::Disk(DiskError::StableLost(5))),
            FileServiceError::LeaseFenced(FileId(11)),
            FileServiceError::LeaseRejected(FileId(12)),
        ];
        for err in errors {
            let mut e = Encoder::new();
            encode_error(&mut e, &err);
            let buf = e.finish();
            let mut d = Decoder::new(&buf);
            assert_eq!(decode_error(&mut d), err);
            assert!(d.is_empty(), "trailing bytes for {err:?}");
        }
    }
}
