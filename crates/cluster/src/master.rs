//! The placement/metadata master and its data servers.
//!
//! One [`Cluster`] owns N data servers. Each server is a full
//! transaction-service stack (so the cross-shard 2PC of ROADMAP item 5
//! can later coordinate them) reached through its own lossy channel
//! speaking the replication wire protocol — every data operation is
//! encoded, retried with backoff, executed at most once per request id,
//! and answered through the server's replay cache, exactly like a
//! replica in `ReplicatedRpcFiles`.
//!
//! The master's own state is deliberately small, in the paper's
//! "nearly stateless" spirit: the placement map (file → home server),
//! the placement epoch, per-file heat counters, and the heartbeat
//! bookkeeping. Everything else lives with the data servers.

use crate::placement::{PlacementDirectory, SharedDirectory};
use parking_lot::Mutex;
use rhodos_disk_service::codec::Decoder;
use rhodos_file_service::{
    FileAttributes, FileId, FileService, FileServiceConfig, FileServiceError, ServiceType,
};
use rhodos_net::{Delivery, NetConfig, RpcClient, SimNetwork};
use rhodos_replication::wire::{
    self, encode_fid_op, encode_read, encode_write, Channel, OP_CLOSE, OP_DELETE, OP_GET_ATTR,
    OP_OPEN,
};
use rhodos_simdisk::{DiskGeometry, LatencyModel, SimClock};
use rhodos_txn::{TransactionService, TxnConfig};
use std::collections::{BTreeMap, HashMap};
use std::error::Error;
use std::fmt;
use std::sync::Arc;

/// A data server shared between the cluster master and any co-located
/// clients (`FileAgent` uses the same handle type).
pub type ServerHandle = Arc<Mutex<TransactionService>>;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= b as u64;
        *hash = hash.wrapping_mul(FNV_PRIME);
    }
}

/// Tunables of the cluster.
#[derive(Debug, Clone, Copy)]
pub struct ClusterConfig {
    /// Disk geometry of each data server.
    pub geometry: DiskGeometry,
    /// Disk latency model of each data server.
    pub latency: LatencyModel,
    /// File-service tunables of each data server.
    pub fs: FileServiceConfig,
    /// Transaction-service tunables of each data server.
    pub txn: TxnConfig,
    /// Channel behaviour to each data server (per-server seeds are
    /// decorrelated, as across independent links).
    pub data_net: NetConfig,
    /// Virtual time between heartbeat rounds.
    pub heartbeat_interval_us: u64,
    /// Consecutive missed heartbeats before a server is marked dead.
    pub heartbeat_miss_limit: u32,
    /// Bytes copied per migration RPC.
    pub migrate_chunk: usize,
    /// A rebalance round starts migrating when the hottest server holds
    /// more than this percentage of the total load.
    pub rebalance_trigger_pct: u64,
    /// Upper bound on migrations per [`Cluster::rebalance`] call.
    pub max_migrations_per_round: usize,
    /// Re-read and fingerprint-check every migrated file on the target
    /// before the source copy is deleted.
    pub verify_migrations: bool,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            geometry: DiskGeometry::medium(),
            latency: LatencyModel::instant(),
            fs: FileServiceConfig::default(),
            txn: TxnConfig::default(),
            data_net: NetConfig::reliable(),
            heartbeat_interval_us: 50_000,
            heartbeat_miss_limit: 3,
            migrate_chunk: 8192,
            rebalance_trigger_pct: 40,
            max_migrations_per_round: 8,
            verify_migrations: true,
        }
    }
}

/// Why a cluster operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// No placement recorded for this cluster file id.
    UnknownFile(u64),
    /// Every data server is dead, removed, or unreachable.
    NoLiveServers,
    /// The file's home server is currently marked dead.
    ServerUnavailable(usize),
    /// The channel to the server exhausted its retries.
    Unreachable(usize),
    /// The server was decommissioned.
    Removed(usize),
    /// A semantic file-service error from the home server.
    File(FileServiceError),
    /// A migrated copy failed its fingerprint check; the migration was
    /// rolled back.
    MigrationCorrupt {
        /// The cluster file id whose copy failed verification.
        gid: u64,
        /// Fingerprint of the source bytes.
        expected: u64,
        /// Fingerprint read back from the target.
        got: u64,
    },
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownFile(gid) => write!(f, "unknown cluster file {gid}"),
            Self::NoLiveServers => write!(f, "no live data servers"),
            Self::ServerUnavailable(i) => write!(f, "data server {i} is marked dead"),
            Self::Unreachable(i) => write!(f, "data server {i} unreachable"),
            Self::Removed(i) => write!(f, "data server {i} was decommissioned"),
            Self::File(e) => write!(f, "file service: {e}"),
            Self::MigrationCorrupt { gid, expected, got } => write!(
                f,
                "migrated copy of file {gid} failed verification \
                 (expected {expected:#018x}, got {got:#018x})"
            ),
        }
    }
}

impl Error for ClusterError {}

impl From<FileServiceError> for ClusterError {
    fn from(e: FileServiceError) -> Self {
        Self::File(e)
    }
}

/// Counters of cluster behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClusterStats {
    /// Files created.
    pub creates: u64,
    /// Files deleted.
    pub deletes: u64,
    /// Read operations served.
    pub reads: u64,
    /// Write operations served.
    pub writes: u64,
    /// Bytes returned by reads.
    pub bytes_read: u64,
    /// Bytes accepted by writes.
    pub bytes_written: u64,
    /// Completed migrations.
    pub migrations: u64,
    /// Bytes moved by migrations.
    pub migrated_bytes: u64,
    /// Migrations that aborted (unreachable target, busy source, failed
    /// verification) and were rolled back.
    pub migrations_aborted: u64,
    /// Heartbeat probes sent.
    pub heartbeats: u64,
    /// Heartbeat probes that went unanswered.
    pub heartbeat_misses: u64,
    /// Servers marked dead.
    pub deaths: u64,
    /// Dead servers that rejoined.
    pub rejoins: u64,
    /// Orphaned local files garbage-collected on rejoin.
    pub orphans_collected: u64,
    /// Servers added at runtime.
    pub servers_added: u64,
    /// Servers decommissioned.
    pub servers_removed: u64,
    /// Cross-shard transactions committed by the 2PC coordinator.
    pub cross_commits: u64,
    /// Cross-shard transactions aborted (voted no, unreachable
    /// participant, or presumed abort).
    pub cross_aborts: u64,
    /// Prepare RPCs sent; each may carry a whole wave of transactions.
    pub prepare_rpcs: u64,
    /// Decision-log forces; batched decisions share one force.
    pub decision_forces: u64,
    /// Commit attempts re-targeted after a placement-epoch change
    /// struck mid-prepare.
    pub retargets: u64,
    /// Coordinator recoveries (decision-log replays plus orphan sweep).
    pub coordinator_recoveries: u64,
    /// In-doubt participants resolved by the orphan sweep.
    pub orphan_resolutions: u64,
    /// Current placement epoch.
    pub epoch: u64,
}

/// Outcome of one [`Cluster::rebalance`] round.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RebalanceReport {
    /// Files migrated this round.
    pub migrated: u64,
    /// Bytes moved this round.
    pub bytes: u64,
    /// Migrations attempted but rolled back.
    pub aborted: u64,
}

/// Where a cluster file lives.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Placement {
    pub(crate) server: usize,
    pub(crate) local: FileId,
    open: bool,
}

/// One data server as the master sees it.
struct DataNode {
    handle: ServerHandle,
    chan: Channel,
    /// Fault injection: when false, nothing crosses this link.
    link_up: bool,
    /// Master's liveness verdict.
    alive: bool,
    missed: u32,
    /// Placement epoch last synchronised to this server (piggybacked on
    /// heartbeat replies).
    known_epoch: u64,
    removed: bool,
}

impl fmt::Debug for DataNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DataNode")
            .field("link_up", &self.link_up)
            .field("alive", &self.alive)
            .field("missed", &self.missed)
            .field("known_epoch", &self.known_epoch)
            .field("removed", &self.removed)
            .finish_non_exhaustive()
    }
}

/// The placement/metadata master.
#[derive(Debug)]
pub struct Cluster {
    clock: SimClock,
    cfg: ClusterConfig,
    nodes: Vec<DataNode>,
    map: BTreeMap<u64, Placement>,
    next_gid: u64,
    epoch: u64,
    heat: BTreeMap<u64, u64>,
    /// Local copies to delete once their server is reachable again
    /// (aborted migrations, deletes issued while the server was dead).
    pending_gc: Vec<(usize, FileId)>,
    directory: SharedDirectory,
    /// The 2PC coordinator's durable commit-decision records (presumed
    /// abort: absence of a record is an abort).
    pub(crate) decision_log: crate::commit::DecisionLog,
    /// Next global (cross-shard) transaction id.
    pub(crate) next_gtid: u64,
    pub(crate) stats: ClusterStats,
}

impl Cluster {
    /// Creates a cluster of `n` freshly formatted data servers sharing
    /// one virtual clock.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or a data server fails to format.
    pub fn new(n: usize, cfg: ClusterConfig) -> Self {
        assert!(n > 0, "need at least one data server");
        let clock = SimClock::new();
        let mut cluster = Self {
            clock,
            cfg,
            nodes: Vec::new(),
            map: BTreeMap::new(),
            next_gid: 1,
            epoch: 0,
            heat: BTreeMap::new(),
            pending_gc: Vec::new(),
            directory: Arc::new(Mutex::new(PlacementDirectory::default())),
            decision_log: crate::commit::DecisionLog::default(),
            next_gtid: 1,
            stats: ClusterStats::default(),
        };
        for _ in 0..n {
            cluster.push_node();
        }
        cluster
    }

    fn push_node(&mut self) -> usize {
        let i = self.nodes.len();
        let fs = FileService::single_disk(
            self.cfg.geometry,
            self.cfg.latency,
            self.clock.clone(),
            self.cfg.fs,
        )
        .expect("data server formats");
        let handle: ServerHandle = Arc::new(Mutex::new(
            TransactionService::new(fs, self.cfg.txn).expect("transaction service starts"),
        ));
        let mut net_cfg = self.cfg.data_net;
        net_cfg.seed = self.cfg.data_net.seed.wrapping_add(i as u64 * 7919);
        self.nodes.push(DataNode {
            handle,
            chan: Channel {
                net: SimNetwork::new(self.clock.clone(), net_cfg),
                client: RpcClient::new(i as u64 + 1),
                cache: rhodos_net::ReplayCache::new(),
            },
            link_up: true,
            alive: true,
            missed: 0,
            known_epoch: self.epoch,
            removed: false,
        });
        i
    }

    // ---- accessors -----------------------------------------------------

    /// The shared virtual clock.
    pub fn clock(&self) -> SimClock {
        self.clock.clone()
    }

    /// Counters so far (the `epoch` field tracks the placement epoch).
    pub fn stats(&self) -> ClusterStats {
        let mut s = self.stats;
        s.epoch = self.epoch;
        s
    }

    /// The current placement epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The published placement directory clients resolve against.
    pub fn directory(&self) -> SharedDirectory {
        self.directory.clone()
    }

    /// Handle to data server `i`, for co-located clients.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn server_handle(&self, i: usize) -> ServerHandle {
        self.nodes[i].handle.clone()
    }

    /// Every data server handle in index order (the `FileAgent` server
    /// vector for cluster-aware clients).
    pub fn server_handles(&self) -> Vec<ServerHandle> {
        self.nodes.iter().map(|n| n.handle.clone()).collect()
    }

    /// Number of data servers, including dead and removed ones.
    pub fn server_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of servers currently considered live.
    pub fn live_servers(&self) -> usize {
        self.nodes.iter().filter(|n| n.alive && !n.removed).count()
    }

    /// Whether the master currently considers server `i` live.
    pub fn is_alive(&self, i: usize) -> bool {
        self.nodes[i].alive && !self.nodes[i].removed
    }

    /// The placement epoch server `i` last synchronised to.
    pub fn node_epoch(&self, i: usize) -> u64 {
        self.nodes[i].known_epoch
    }

    /// Fault injection: sever or restore the link to server `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn set_link(&mut self, i: usize, up: bool) {
        self.nodes[i].link_up = up;
    }

    /// Current home of a cluster file.
    pub fn placement_of(&self, gid: u64) -> Option<(usize, FileId)> {
        self.map.get(&gid).map(|p| (p.server, p.local))
    }

    /// Files currently placed on server `i`.
    pub fn files_on(&self, i: usize) -> usize {
        self.map.values().filter(|p| p.server == i).count()
    }

    /// Accumulated heat (operation count) of server `i`: the sum over
    /// its files of `1 + per-file heat`.
    pub fn server_load(&self, i: usize) -> u64 {
        self.map
            .iter()
            .filter(|(_, p)| p.server == i)
            .map(|(gid, _)| 1 + self.heat.get(gid).copied().unwrap_or(0))
            .sum()
    }

    /// Local copies awaiting garbage collection (0 in steady state).
    pub fn pending_gc(&self) -> usize {
        self.pending_gc.len()
    }

    /// Recorded replies currently held by server `i`'s replay cache.
    pub fn replay_entries(&self, i: usize) -> usize {
        self.nodes[i].chan.cache.len()
    }

    /// Attempts per RPC before a data server is declared unreachable.
    pub fn set_max_attempts(&mut self, attempts: u32) {
        for n in &mut self.nodes {
            n.chan.client.max_attempts = attempts;
        }
    }

    // ---- the wire ------------------------------------------------------

    fn publish(&mut self) {
        self.epoch += 1;
        let snapshot: HashMap<u64, (usize, FileId)> = self
            .map
            .iter()
            .map(|(gid, p)| (*gid, (p.server, p.local)))
            .collect();
        self.directory.lock().publish(self.epoch, snapshot);
    }

    fn call_node(&mut self, i: usize, req: &[u8]) -> Result<Vec<u8>, ClusterError> {
        let node = &mut self.nodes[i];
        if node.removed {
            return Err(ClusterError::Removed(i));
        }
        if !node.link_up {
            // The client times out against a severed link; that timeout
            // is heartbeat evidence too.
            node.missed = node.missed.saturating_add(1);
            return Err(ClusterError::Unreachable(i));
        }
        let handle = node.handle.clone();
        let mut guard = handle.lock();
        match node.chan.call(guard.file_service_mut(), req) {
            Ok(payload) => Ok(payload),
            Err(None) => {
                node.missed = node.missed.saturating_add(1);
                Err(ClusterError::Unreachable(i))
            }
            Err(Some(e)) => Err(ClusterError::File(e)),
        }
    }

    /// Like [`Self::call_node`], but serves the transaction-aware
    /// endpoint: 2PC opcodes are dispatched against the server's whole
    /// [`TransactionService`], plain file ops fall through to the
    /// file-service loop — over the same at-most-once channel.
    pub(crate) fn call_node_txn(&mut self, i: usize, req: &[u8]) -> Result<Vec<u8>, ClusterError> {
        let node = &mut self.nodes[i];
        if node.removed {
            return Err(ClusterError::Removed(i));
        }
        if !node.link_up {
            node.missed = node.missed.saturating_add(1);
            return Err(ClusterError::Unreachable(i));
        }
        let handle = node.handle.clone();
        let mut guard = handle.lock();
        match node
            .chan
            .call_serve(req, |r| crate::commit::serve_txn(&mut guard, r))
        {
            Ok(payload) => Ok(payload),
            Err(None) => {
                node.missed = node.missed.saturating_add(1);
                Err(ClusterError::Unreachable(i))
            }
            Err(Some(e)) => Err(ClusterError::File(e)),
        }
    }

    /// Fault injection: crash data server `i` — volatile caches and the
    /// unflushed log tail vanish, then local recovery replays the
    /// durable log (rebuilding any in-doubt prepared participants). The
    /// server's replay cache dies with the machine.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range or local recovery fails.
    pub fn crash_server(&mut self, i: usize) {
        let handle = self.nodes[i].handle.clone();
        let mut guard = handle.lock();
        guard.file_service_mut().simulate_crash();
        guard.recover().expect("data server recovers");
        self.nodes[i].chan.cache = rhodos_net::ReplayCache::new();
        // Open counts are volatile server state; restore the master's
        // view of which local files are open.
        for p in self.map.values() {
            if p.server == i && p.open {
                let _ = guard.file_service_mut().open(p.local);
            }
        }
    }

    /// Flushes every data server's delayed-write cache to disk, making
    /// plain (non-transactional) writes crash-durable — chaos tests and
    /// experiments call this after seeding baseline data, before any
    /// [`Self::crash_server`]. Transactional applies are write-through
    /// and never need it.
    pub fn sync_all(&mut self) {
        for n in &self.nodes {
            let mut guard = n.handle.lock();
            let _ = guard.file_service_mut().flush_all();
        }
    }

    /// Accounting for a committed cross-shard transaction's writes.
    pub(crate) fn note_cross_writes(&mut self, ops: &[(u64, u64, Vec<u8>)]) {
        for (gid, _, data) in ops {
            *self.heat.entry(*gid).or_insert(0) += 1;
            self.stats.writes += 1;
            self.stats.bytes_written += data.len() as u64;
        }
    }

    fn require_live(&self, i: usize) -> Result<(), ClusterError> {
        if self.nodes[i].removed {
            return Err(ClusterError::Removed(i));
        }
        if !self.nodes[i].alive {
            return Err(ClusterError::ServerUnavailable(i));
        }
        Ok(())
    }

    pub(crate) fn resolve(&self, gid: u64) -> Result<Placement, ClusterError> {
        self.map
            .get(&gid)
            .copied()
            .ok_or(ClusterError::UnknownFile(gid))
    }

    // ---- namespace operations -----------------------------------------

    /// Creates a file on the least-loaded live server and returns its
    /// cluster id.
    pub fn create(&mut self) -> Result<u64, ClusterError> {
        let target = self
            .live_node_indices()
            .into_iter()
            .min_by_key(|&i| (self.files_on(i), i))
            .ok_or(ClusterError::NoLiveServers)?;
        let reply = self.call_node(target, &wire::encode_create(ServiceType::Basic))?;
        let mut d = Decoder::new(&reply);
        let local = FileId(d.u64().expect("create reply"));
        let gid = self.next_gid;
        self.next_gid += 1;
        self.map.insert(
            gid,
            Placement {
                server: target,
                local,
                open: false,
            },
        );
        self.stats.creates += 1;
        self.publish();
        Ok(gid)
    }

    /// Opens a cluster file on its home server.
    pub fn open(&mut self, gid: u64) -> Result<(), ClusterError> {
        let p = self.resolve(gid)?;
        self.require_live(p.server)?;
        self.call_node(p.server, &encode_fid_op(OP_OPEN, p.local))?;
        self.map.get_mut(&gid).expect("resolved").open = true;
        Ok(())
    }

    /// Closes a cluster file on its home server.
    pub fn close(&mut self, gid: u64) -> Result<(), ClusterError> {
        let p = self.resolve(gid)?;
        self.require_live(p.server)?;
        self.call_node(p.server, &encode_fid_op(OP_CLOSE, p.local))?;
        self.map.get_mut(&gid).expect("resolved").open = false;
        Ok(())
    }

    /// Deletes a cluster file. If its home server is dead or
    /// unreachable, the mapping is removed immediately and the local
    /// copy is garbage-collected when the server next answers a
    /// heartbeat.
    pub fn delete(&mut self, gid: u64) -> Result<(), ClusterError> {
        let p = self.resolve(gid)?;
        let reachable = self.nodes[p.server].alive
            && self.nodes[p.server].link_up
            && !self.nodes[p.server].removed;
        if reachable {
            if p.open {
                self.call_node(p.server, &encode_fid_op(OP_CLOSE, p.local))?;
            }
            match self.call_node(p.server, &encode_fid_op(OP_DELETE, p.local)) {
                Ok(_) => {}
                Err(ClusterError::Unreachable(_)) => {
                    self.pending_gc.push((p.server, p.local));
                }
                Err(e) => return Err(e),
            }
        } else {
            self.pending_gc.push((p.server, p.local));
        }
        self.map.remove(&gid);
        self.heat.remove(&gid);
        self.stats.deletes += 1;
        self.publish();
        Ok(())
    }

    /// Reads from a cluster file — one hop to its home server.
    pub fn read(&mut self, gid: u64, offset: u64, len: usize) -> Result<Vec<u8>, ClusterError> {
        let p = self.resolve(gid)?;
        self.require_live(p.server)?;
        let data = self.call_node(p.server, &encode_read(p.local, offset, len))?;
        *self.heat.entry(gid).or_insert(0) += 1;
        self.stats.reads += 1;
        self.stats.bytes_read += data.len() as u64;
        Ok(data)
    }

    /// Writes to a cluster file — one hop to its home server.
    pub fn write(&mut self, gid: u64, offset: u64, data: &[u8]) -> Result<(), ClusterError> {
        let p = self.resolve(gid)?;
        self.require_live(p.server)?;
        self.call_node(p.server, &encode_write(p.local, offset, data))?;
        *self.heat.entry(gid).or_insert(0) += 1;
        self.stats.writes += 1;
        self.stats.bytes_written += data.len() as u64;
        Ok(())
    }

    /// Attributes of a cluster file, from its home server.
    pub fn get_attr(&mut self, gid: u64) -> Result<FileAttributes, ClusterError> {
        let p = self.resolve(gid)?;
        self.require_live(p.server)?;
        let reply = self.call_node(p.server, &encode_fid_op(OP_GET_ATTR, p.local))?;
        let mut d = Decoder::new(&reply);
        Ok(FileAttributes::decode(&mut d).expect("attr reply"))
    }

    // ---- liveness ------------------------------------------------------

    pub(crate) fn live_node_indices(&self) -> Vec<usize> {
        (0..self.nodes.len())
            .filter(|&i| {
                let n = &self.nodes[i];
                n.alive && n.link_up && !n.removed
            })
            .collect()
    }

    /// One heartbeat round: advances the clock by the heartbeat interval
    /// and probes every data server. Misses accumulate toward the death
    /// verdict; a probe answered by a dead server rejoins it —
    /// synchronising its placement epoch and garbage-collecting any
    /// local files the placement map no longer assigns to it.
    pub fn heartbeat_pulse(&mut self) {
        self.clock.advance(self.cfg.heartbeat_interval_us);
        for i in 0..self.nodes.len() {
            if self.nodes[i].removed {
                continue;
            }
            self.stats.heartbeats += 1;
            let answered = self.nodes[i].link_up && {
                let net = &mut self.nodes[i].chan.net;
                net.transmit() != Delivery::Lost && net.transmit_reply() != Delivery::Lost
            };
            if !answered {
                self.stats.heartbeat_misses += 1;
                let node = &mut self.nodes[i];
                node.missed = node.missed.saturating_add(1);
                if node.alive && node.missed >= self.cfg.heartbeat_miss_limit {
                    node.alive = false;
                    self.stats.deaths += 1;
                }
                continue;
            }
            let was_dead = !self.nodes[i].alive;
            self.nodes[i].alive = true;
            self.nodes[i].missed = 0;
            if was_dead {
                self.stats.rejoins += 1;
            }
            // Epoch sync and orphan GC ride on the heartbeat exchange.
            self.collect_garbage(i);
            self.nodes[i].known_epoch = self.epoch;
        }
    }

    /// Deletes local copies on server `i` that the placement map no
    /// longer assigns to it.
    fn collect_garbage(&mut self, i: usize) {
        let mine: Vec<(usize, FileId)> = self
            .pending_gc
            .iter()
            .copied()
            .filter(|(s, _)| *s == i)
            .collect();
        if mine.is_empty() {
            return;
        }
        let mut done = Vec::new();
        for (_, local) in &mine {
            // Close is best-effort (the copy may never have been opened);
            // delete must succeed or the entry stays queued.
            let _ = self.call_node(i, &encode_fid_op(OP_CLOSE, *local));
            match self.call_node(i, &encode_fid_op(OP_DELETE, *local)) {
                Ok(_) | Err(ClusterError::File(_)) => {
                    done.push(*local);
                    self.stats.orphans_collected += 1;
                }
                Err(_) => {}
            }
        }
        self.pending_gc
            .retain(|(s, l)| !(*s == i && done.contains(l)));
    }

    // ---- elasticity ----------------------------------------------------

    /// Adds a fresh data server and returns its index. New placements
    /// favour it immediately (it is the least-loaded server).
    pub fn add_server(&mut self) -> usize {
        let i = self.push_node();
        self.stats.servers_added += 1;
        i
    }

    /// Decommissions server `i`: migrates every file off it, then
    /// removes it from the placement pool. Fails without side effects if
    /// the server (or every possible target) is unavailable.
    pub fn decommission(&mut self, i: usize) -> Result<(), ClusterError> {
        self.require_live(i)?;
        if !self.nodes[i].link_up {
            return Err(ClusterError::Unreachable(i));
        }
        let victims: Vec<u64> = self
            .map
            .iter()
            .filter(|(_, p)| p.server == i)
            .map(|(gid, _)| *gid)
            .collect();
        for gid in victims {
            let target = self
                .live_node_indices()
                .into_iter()
                .filter(|&j| j != i)
                .min_by_key(|&j| (self.server_load(j), j))
                .ok_or(ClusterError::NoLiveServers)?;
            self.migrate(gid, target)?;
        }
        self.nodes[i].removed = true;
        self.stats.servers_removed += 1;
        Ok(())
    }

    // ---- rebalancing ---------------------------------------------------

    /// One background rebalance round: while the hottest live server
    /// holds more than `rebalance_trigger_pct` percent of the total load
    /// and moving its hottest file strictly narrows the imbalance, that
    /// file is migrated to the coldest live server. Heat decays by half
    /// at the end of the round so old traffic stops driving placement.
    pub fn rebalance(&mut self) -> RebalanceReport {
        let mut report = RebalanceReport::default();
        for _ in 0..self.cfg.max_migrations_per_round {
            let live = self.live_node_indices();
            if live.len() < 2 {
                break;
            }
            let total: u64 = live.iter().map(|&i| self.server_load(i)).sum();
            if total == 0 {
                break;
            }
            let &hot = live
                .iter()
                .max_by_key(|&&i| (self.server_load(i), std::cmp::Reverse(i)))
                .expect("non-empty");
            let &cold = live
                .iter()
                .min_by_key(|&&i| (self.server_load(i), i))
                .expect("non-empty");
            if hot == cold || self.server_load(hot) * 100 <= total * self.cfg.rebalance_trigger_pct
            {
                break;
            }
            // The hottest file on the hot server whose move narrows the
            // gap; weight = 1 + heat.
            let gap = self.server_load(hot) - self.server_load(cold);
            let candidate = self
                .map
                .iter()
                .filter(|(_, p)| p.server == hot)
                .map(|(gid, _)| (*gid, 1 + self.heat.get(gid).copied().unwrap_or(0)))
                .filter(|(_, w)| 2 * *w < gap)
                .max_by_key(|&(gid, w)| (w, std::cmp::Reverse(gid)));
            let Some((gid, _)) = candidate else { break };
            match self.migrate(gid, cold) {
                Ok(bytes) => {
                    report.migrated += 1;
                    report.bytes += bytes;
                }
                Err(_) => {
                    report.aborted += 1;
                    break;
                }
            }
        }
        for h in self.heat.values_mut() {
            *h /= 2;
        }
        report
    }

    /// Migrates one file to `target` through the physical-copy path:
    /// chunked reads from the source, writes to a fresh file on the
    /// target, optional fingerprint verification of the target copy, and
    /// only then deletion of the source. Any failure rolls back — the
    /// placement map never points at a partial copy.
    ///
    /// Returns the number of bytes moved.
    pub fn migrate(&mut self, gid: u64, target: usize) -> Result<u64, ClusterError> {
        let p = self.resolve(gid)?;
        if p.server == target {
            return Ok(0);
        }
        self.require_live(p.server)?;
        self.require_live(target)?;

        // A file referenced by an in-doubt prepared transaction must
        // not move: the pending decision's intentions name *this*
        // replica, and a crash-rebuilt participant holds no open count
        // to make the delete below fail. Surfaces as `Busy`, like any
        // other open conflict.
        {
            let handle = self.nodes[p.server].handle.clone();
            let guard = handle.lock();
            if guard.prepared_touches(p.local) {
                return Err(ClusterError::File(FileServiceError::Busy(p.local)));
            }
        }

        // Size from the source, fresh file on the target.
        let attr_reply = self.call_node(p.server, &encode_fid_op(OP_GET_ATTR, p.local))?;
        let size = {
            let mut d = Decoder::new(&attr_reply);
            FileAttributes::decode(&mut d).expect("attr reply").size
        };
        let reply = self.call_node(target, &wire::encode_create(ServiceType::Basic))?;
        let new_local = FileId(Decoder::new(&reply).u64().expect("create reply"));

        match self.copy_file(gid, p, target, new_local, size) {
            Ok(()) => {}
            Err(e) => {
                self.abort_migration(target, new_local);
                return Err(e);
            }
        }

        // The chunked copy travelled the plain (delayed-write) path;
        // force it to disk before the placement flips, or a target
        // crash right after migration would lose the only copy.
        {
            let handle = self.nodes[target].handle.clone();
            let mut guard = handle.lock();
            if let Err(e) = guard.file_service_mut().flush_file(new_local) {
                self.abort_migration(target, new_local);
                return Err(ClusterError::File(e));
            }
        }

        // Drop the tracked open on the source (migration holds none of
        // its own by now) and delete it. `Busy` means a co-located
        // client still has it open outside the master's view — roll the
        // whole migration back rather than double-place the file.
        if p.open {
            self.call_node(p.server, &encode_fid_op(OP_CLOSE, p.local))?;
        }
        match self.call_node(p.server, &encode_fid_op(OP_DELETE, p.local)) {
            Ok(_) => {}
            Err(ClusterError::File(FileServiceError::Busy(_))) => {
                if p.open {
                    // Restore the tracked open we just dropped.
                    let _ = self.call_node(p.server, &encode_fid_op(OP_OPEN, p.local));
                }
                self.abort_migration(target, new_local);
                return Err(ClusterError::File(FileServiceError::Busy(p.local)));
            }
            Err(ClusterError::Unreachable(_)) => {
                // Copy is complete and verified; the stale source copy is
                // garbage, collected when the server next answers.
                self.pending_gc.push((p.server, p.local));
            }
            Err(e) => return Err(e),
        }

        self.map.insert(
            gid,
            Placement {
                server: target,
                local: new_local,
                open: p.open,
            },
        );
        self.stats.migrations += 1;
        self.stats.migrated_bytes += size;
        self.publish();
        Ok(size)
    }

    /// Chunked copy source → target, with optional read-back
    /// verification. Leaves the target open iff the file was tracked
    /// open (that reference carries the client's open across the move).
    fn copy_file(
        &mut self,
        gid: u64,
        p: Placement,
        target: usize,
        new_local: FileId,
        size: u64,
    ) -> Result<(), ClusterError> {
        self.call_node(p.server, &encode_fid_op(OP_OPEN, p.local))?;
        self.call_node(target, &encode_fid_op(OP_OPEN, new_local))?;
        let chunk = self.cfg.migrate_chunk.max(1);
        let mut src_fp = FNV_OFFSET;
        let mut off = 0u64;
        let copy_result: Result<(), ClusterError> = loop {
            if off >= size {
                break Ok(());
            }
            let n = chunk.min((size - off) as usize);
            let data = match self.call_node(p.server, &encode_read(p.local, off, n)) {
                Ok(d) => d,
                Err(e) => break Err(e),
            };
            fnv1a(&mut src_fp, &data);
            if let Err(e) = self.call_node(target, &encode_write(new_local, off, &data)) {
                break Err(e);
            }
            off += n as u64;
        };
        // The migration's own source open is dropped whatever happened.
        let _ = self.call_node(p.server, &encode_fid_op(OP_CLOSE, p.local));
        copy_result?;

        if self.cfg.verify_migrations {
            let mut dst_fp = FNV_OFFSET;
            let mut off = 0u64;
            while off < size {
                let n = chunk.min((size - off) as usize);
                let data = self.call_node(target, &encode_read(new_local, off, n))?;
                fnv1a(&mut dst_fp, &data);
                off += n as u64;
            }
            if dst_fp != src_fp {
                return Err(ClusterError::MigrationCorrupt {
                    gid,
                    expected: src_fp,
                    got: dst_fp,
                });
            }
        }
        if !p.open {
            self.call_node(target, &encode_fid_op(OP_CLOSE, new_local))?;
        }
        Ok(())
    }

    /// Rolls back a failed migration: the partial target copy is deleted
    /// (or queued for GC if the target is unreachable).
    fn abort_migration(&mut self, target: usize, local: FileId) {
        self.stats.migrations_aborted += 1;
        let _ = self.call_node(target, &encode_fid_op(OP_CLOSE, local));
        match self.call_node(target, &encode_fid_op(OP_DELETE, local)) {
            Ok(_) | Err(ClusterError::File(_)) => {}
            Err(_) => self.pending_gc.push((target, local)),
        }
    }

    // ---- verification --------------------------------------------------

    /// FNV-1a fingerprint over the whole namespace: every cluster file's
    /// id, size, and bytes, in cluster-id order. Reads the data servers
    /// directly (out of band — no channel traffic, no heat), so two
    /// clusters that executed the same logical operations fingerprint
    /// identically regardless of server count or placement.
    pub fn content_fingerprint(&self) -> u64 {
        let mut fp = FNV_OFFSET;
        for (gid, p) in &self.map {
            let handle = self.nodes[p.server].handle.clone();
            let mut guard = handle.lock();
            let fs = guard.file_service_mut();
            let size = fs.get_attribute(p.local).expect("mapped file exists").size;
            fnv1a(&mut fp, &gid.to_le_bytes());
            fnv1a(&mut fp, &size.to_le_bytes());
            if size > 0 {
                fs.open(p.local).expect("fingerprint open");
                let data = fs
                    .read(p.local, 0, size as usize)
                    .expect("fingerprint read");
                fs.close(p.local).expect("fingerprint close");
                fnv1a(&mut fp, &data);
            }
        }
        fp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(n: usize) -> Cluster {
        Cluster::new(n, ClusterConfig::default())
    }

    fn seed_files(c: &mut Cluster, count: usize, blocks: usize) -> Vec<u64> {
        (0..count)
            .map(|k| {
                let gid = c.create().unwrap();
                c.open(gid).unwrap();
                c.write(gid, 0, &vec![k as u8 + 1; blocks * 512]).unwrap();
                gid
            })
            .collect()
    }

    #[test]
    fn files_spread_across_servers_and_round_trip() {
        let mut c = cluster(4);
        let gids = seed_files(&mut c, 8, 4);
        // Least-loaded placement spreads 8 files evenly over 4 servers.
        for i in 0..4 {
            assert_eq!(c.files_on(i), 2);
        }
        for (k, gid) in gids.iter().enumerate() {
            let data = c.read(*gid, 0, 4 * 512).unwrap();
            assert_eq!(data, vec![k as u8 + 1; 4 * 512]);
        }
        assert_eq!(c.stats().creates, 8);
        assert_eq!(c.stats().reads, 8);
    }

    #[test]
    fn epoch_bumps_on_placement_mutations_only() {
        let mut c = cluster(2);
        let e0 = c.epoch();
        let gid = c.create().unwrap();
        assert_eq!(c.epoch(), e0 + 1);
        c.open(gid).unwrap();
        c.write(gid, 0, b"hello").unwrap();
        let _ = c.read(gid, 0, 5).unwrap();
        assert_eq!(c.epoch(), e0 + 1, "data path never bumps the epoch");
        c.close(gid).unwrap();
        c.delete(gid).unwrap();
        assert_eq!(c.epoch(), e0 + 2);
        assert_eq!(c.directory().lock().epoch(), c.epoch());
    }

    #[test]
    fn heartbeat_death_and_rejoin_syncs_epoch() {
        let mut c = cluster(2);
        let gids = seed_files(&mut c, 4, 2);
        c.set_link(1, false);
        for _ in 0..c.cfg.heartbeat_miss_limit {
            c.heartbeat_pulse();
        }
        assert!(!c.is_alive(1));
        assert_eq!(c.live_servers(), 1);
        // Files on the dead server are unavailable; others still serve.
        let (dead_gids, live_gids): (Vec<_>, Vec<_>) = gids
            .iter()
            .partition(|g| c.placement_of(**g).unwrap().0 == 1);
        assert!(matches!(
            c.read(dead_gids[0], 0, 16),
            Err(ClusterError::ServerUnavailable(1))
        ));
        assert!(c.read(live_gids[0], 0, 16).is_ok());
        // New placements avoid the dead server.
        let fresh = c.create().unwrap();
        assert_eq!(c.placement_of(fresh).unwrap().0, 0);
        // Rejoin: one good heartbeat brings it back and syncs the epoch.
        c.set_link(1, true);
        c.heartbeat_pulse();
        assert!(c.is_alive(1));
        assert_eq!(c.stats().rejoins, 1);
        assert_eq!(c.node_epoch(1), c.epoch());
        assert!(c.read(dead_gids[0], 0, 16).is_ok());
    }

    #[test]
    fn delete_while_dead_gcs_on_rejoin() {
        let mut c = cluster(2);
        let gids = seed_files(&mut c, 4, 2);
        let victim = *gids
            .iter()
            .find(|g| c.placement_of(**g).unwrap().0 == 1)
            .unwrap();
        for g in &gids {
            c.close(*g).unwrap();
        }
        c.set_link(1, false);
        for _ in 0..3 {
            c.heartbeat_pulse();
        }
        assert!(!c.is_alive(1));
        c.delete(victim).unwrap();
        assert_eq!(c.pending_gc(), 1);
        assert!(c.placement_of(victim).is_none());
        c.set_link(1, true);
        c.heartbeat_pulse();
        assert_eq!(c.pending_gc(), 0, "rejoin collects the orphan");
        assert_eq!(c.stats().orphans_collected, 1);
    }

    #[test]
    fn rebalance_moves_hot_files_and_preserves_bytes() {
        let mut c = cluster(2);
        let gids = seed_files(&mut c, 6, 4);
        // Heat up every file on server 0.
        let hot: Vec<u64> = gids
            .iter()
            .copied()
            .filter(|g| c.placement_of(*g).unwrap().0 == 0)
            .collect();
        for _ in 0..50 {
            for g in &hot {
                let _ = c.read(*g, 0, 512).unwrap();
            }
        }
        // Kill server 1's share of the heat by adding two cold servers:
        // server 0 now holds nearly all the load.
        c.add_server();
        c.add_server();
        let fp_before = c.content_fingerprint();
        let report = c.rebalance();
        assert!(report.migrated > 0, "hot server must shed load");
        assert_eq!(report.aborted, 0);
        assert_eq!(c.content_fingerprint(), fp_before, "bytes survive moves");
        assert!(c.files_on(0) < hot.len(), "server 0 shed at least one file");
        // Reads still route correctly after the move.
        for (k, gid) in gids.iter().enumerate() {
            assert_eq!(c.read(*gid, 0, 512).unwrap(), vec![k as u8 + 1; 512]);
        }
    }

    #[test]
    fn decommission_drains_and_removes() {
        let mut c = cluster(3);
        let gids = seed_files(&mut c, 6, 2);
        let fp = c.content_fingerprint();
        c.decommission(2).unwrap();
        assert_eq!(c.files_on(2), 0);
        assert_eq!(c.live_servers(), 2);
        assert_eq!(c.content_fingerprint(), fp);
        for gid in &gids {
            assert!(c.read(*gid, 0, 512).is_ok());
        }
        // The removed server takes no new placements and no heartbeats.
        let before = c.stats().heartbeats;
        c.heartbeat_pulse();
        assert_eq!(c.stats().heartbeats, before + 2);
        let fresh = c.create().unwrap();
        assert_ne!(c.placement_of(fresh).unwrap().0, 2);
    }

    #[test]
    fn lossy_channels_stay_exactly_once() {
        let cfg = ClusterConfig {
            data_net: NetConfig::lossy(0.3, 0.3, 42),
            ..ClusterConfig::default()
        };
        let mut c = Cluster::new(2, cfg);
        c.set_max_attempts(64);
        let gid = c.create().unwrap();
        c.open(gid).unwrap();
        for k in 0..50u64 {
            c.write(gid, k * 8, &k.to_le_bytes()).unwrap();
        }
        for k in 0..50u64 {
            assert_eq!(c.read(gid, k * 8, 8).unwrap(), k.to_le_bytes());
        }
        // Replay caches stay bounded by the synchronous in-flight window.
        assert!(c.replay_entries(0) <= 1);
        assert!(c.replay_entries(1) <= 1);
    }

    #[test]
    fn migration_of_externally_open_file_aborts_cleanly() {
        let mut c = cluster(2);
        let gid = c.create().unwrap();
        c.open(gid).unwrap();
        c.write(gid, 0, &[7u8; 2048]).unwrap();
        c.close(gid).unwrap();
        let (home, local) = c.placement_of(gid).unwrap();
        // A co-located client opens the file outside the master's view.
        let handle = c.server_handle(home);
        handle.lock().file_service_mut().open(local).unwrap();
        let target = 1 - home;
        let err = c.migrate(gid, target).unwrap_err();
        assert!(matches!(err, ClusterError::File(FileServiceError::Busy(_))));
        assert_eq!(c.placement_of(gid).unwrap().0, home, "map unchanged");
        assert_eq!(c.files_on(target), 0, "no partial copy left behind");
        assert_eq!(c.stats().migrations_aborted, 1);
        handle.lock().file_service_mut().close(local).unwrap();
        c.open(gid).unwrap();
        assert_eq!(c.read(gid, 0, 2048).unwrap(), vec![7u8; 2048]);
    }
}
