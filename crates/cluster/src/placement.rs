//! The published placement map: what clients cache, and the epoch that
//! invalidates their cache.
//!
//! The master re-publishes the whole map under a bumped epoch after
//! every placement mutation (create, delete, migration, decommission).
//! Clients hold the [`SharedDirectory`] and compare epochs — an equal
//! epoch means every cached `file → server` binding is still exact, so
//! the data path stays one hop; a moved epoch costs one refresh, exactly
//! like a lease-epoch bump costs one reattach round.

use parking_lot::Mutex;
use rhodos_file_service::FileId;
use std::collections::HashMap;
use std::sync::Arc;

/// A snapshot of the master's placement map, tagged with the placement
/// epoch it was published under.
#[derive(Debug, Default)]
pub struct PlacementDirectory {
    epoch: u64,
    map: HashMap<u64, (usize, FileId)>,
}

impl PlacementDirectory {
    /// The epoch this snapshot was published under. Monotone; equality
    /// with a cached value certifies every cached binding.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Resolves a cluster file id to `(home server, local fid)`.
    pub fn resolve(&self, gid: u64) -> Option<(usize, FileId)> {
        self.map.get(&gid).copied()
    }

    /// Number of placed files.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the namespace is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Replaces the snapshot (master-side; called on every epoch bump).
    pub(crate) fn publish(&mut self, epoch: u64, map: HashMap<u64, (usize, FileId)>) {
        self.epoch = epoch;
        self.map = map;
    }
}

/// The handle the master publishes through and clients resolve against.
pub type SharedDirectory = Arc<Mutex<PlacementDirectory>>;
