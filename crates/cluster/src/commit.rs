//! Cross-shard atomic commit: two-phase commit with presumed abort.
//!
//! The master doubles as the 2PC coordinator (ROADMAP item 4, closing
//! the loop the paper's §6 transaction service left open once files got
//! homes on different servers). Phase one ships each participant's
//! writes in an [`OP_TXN_PREPARE`] batch — the participant runs them
//! under a fresh local transaction, appends a durable `Prepared` record,
//! and votes only after one log force covers the whole batch. Phase two
//! is governed by the coordinator's [`DecisionLog`]: a *commit* is
//! decided by forcing a decision record; everything else is **presumed
//! abort** — no record, no commit, so the coordinator never logs aborts
//! and a torn decision record simply reads as "abort".
//!
//! Two robustness properties are load-bearing here:
//!
//! * **Orphan resolution** — a prepared participant that loses its
//!   coordinator holds locks but never blocks forever:
//!   [`Cluster::recover_coordinator`] replays the decision log and
//!   sweeps every live server's in-doubt list
//!   ([`OP_TXN_PREPARED_LIST`]), re-delivering the durable decision or
//!   the presumed abort.
//! * **Reconfigurable commit** (after Bravo's *Reconfigurable Atomic
//!   Transaction Commit*) — the coordinator snapshots the placement
//!   epoch before phase one and re-checks it before deciding; a file
//!   migrated or failed over mid-prepare aborts the attempt and
//!   re-targets by the new placement, so the transaction still commits
//!   or aborts atomically across the reconfiguration.

use crate::master::{Cluster, ClusterError};
use rhodos_disk_service::codec::{Decoder, Encoder};
use rhodos_file_service::{FileId, FileServiceError};
use rhodos_replication::wire::{
    decode_gtid_list, decode_txn_prepare, decode_votes, encode_error, encode_gtid_list,
    encode_txn_decide, encode_txn_prepare, encode_txn_prepared_list, encode_votes, PrepareTxn,
    OP_TXN_DECIDE, OP_TXN_PREPARE, OP_TXN_PREPARED_LIST, REPLY_ERR, REPLY_OK,
};
use rhodos_txn::{TransactionService, TxnError};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// One write of a cross-shard transaction: `(gid, offset, data)` in
/// cluster ids (the coordinator resolves homes).
pub type CrossOp = (u64, u64, Vec<u8>);

/// Bound on placement-change re-targets per transaction; each retry
/// re-resolves against the current epoch, so two is already enough for
/// any single migration striking mid-prepare.
const MAX_RETARGETS: usize = 4;

// ---- the coordinator's durable decision record -------------------------

/// Marker byte framing each decision record (commit-only: presumed
/// abort means aborts are never logged).
const DECISION_MAGIC: u8 = 0xD5;

/// The coordinator's decision log, with the same crash discipline as
/// the participants' intention logs: appends are cheap and volatile
/// until [`DecisionLog::force`], a crash discards the unforced tail,
/// and a *torn* crash leaves a half-written record that recovery must
/// read as absence (presumed abort).
#[derive(Debug, Default)]
pub struct DecisionLog {
    buf: Vec<u8>,
    durable: usize,
}

impl DecisionLog {
    /// Appends (unforced) the commit decision for `gtid`.
    pub fn append_commit(&mut self, gtid: u64) {
        self.buf.push(DECISION_MAGIC);
        self.buf.extend_from_slice(&gtid.to_le_bytes());
    }

    /// Forces everything appended so far. One force may cover a whole
    /// batch of decisions.
    pub fn force(&mut self) {
        self.durable = self.buf.len();
    }

    /// Simulated coordinator crash: the unforced tail vanishes.
    pub fn crash(&mut self) {
        self.buf.truncate(self.durable);
    }

    /// Simulated crash *during* the force: a prefix of the record being
    /// written reaches stable storage — recovery must treat the torn
    /// record as no decision at all.
    pub fn crash_torn(&mut self) {
        let keep = (self.buf.len() - self.durable).min(4);
        self.buf.truncate(self.durable + keep);
        self.durable = self.buf.len();
    }

    /// Replays the durable log: the set of global transaction ids with
    /// a complete commit record. A torn tail terminates the scan and is
    /// *discarded*, so post-recovery appends start on a record boundary
    /// instead of burying every later decision behind the garbage.
    pub fn recover(&mut self) -> BTreeSet<u64> {
        let mut out = BTreeSet::new();
        let mut i = 0;
        while i + 9 <= self.durable && self.buf[i] == DECISION_MAGIC {
            out.insert(u64::from_le_bytes(
                self.buf[i + 1..i + 9].try_into().expect("8 bytes"),
            ));
            i += 9;
        }
        self.buf.truncate(i);
        self.durable = i;
        out
    }

    /// Durably recorded bytes (tests distinguish torn from clean).
    pub fn durable_len(&self) -> usize {
        self.durable
    }
}

// ---- deterministic crash points ----------------------------------------

/// Deterministic fault schedule for one
/// [`Cluster::commit_cross_shard_chaos`] call — every 2PC step has a
/// crash point before/after its log force. Each armed fault fires at
/// most once (so a re-targeted retry runs clean and the protocol's own
/// recovery is what gets tested). Server-indexed faults name the
/// participant by data-server index.
#[derive(Debug, Default, Clone)]
pub struct CommitChaos {
    /// This participant never receives its prepare (crashed before the
    /// request — nothing of the transaction reaches its log).
    pub crash_participant_before_prepare: Option<usize>,
    /// This participant crashes right after its prepare force (vote
    /// delivered); recovery must rebuild the in-doubt state before the
    /// decision arrives.
    pub crash_participant_after_prepare: Option<usize>,
    /// This participant prepares durably but its vote is lost; the
    /// coordinator presumes abort and never contacts it again — only
    /// the orphan sweep can release it.
    pub lose_prepare_ack: Option<usize>,
    /// Migrate `(gid, target)` after the coordinator snapshots
    /// placements but before the prepares go out: phase one runs
    /// against stale placement and the attempt must re-target.
    pub migrate_mid_prepare: Option<(u64, usize)>,
    /// Coordinator crashes before any decision record is written:
    /// presumed abort.
    pub crash_coordinator_before_decision: bool,
    /// Coordinator crashes mid-force, tearing the decision record:
    /// still presumed abort.
    pub torn_decision: bool,
    /// Coordinator crashes after the decision is durable but before
    /// delivering it: recovery must commit the orphans.
    pub crash_coordinator_after_decision: bool,
    /// This participant crashes before its decide is delivered (the
    /// others get theirs); the sweep finishes it.
    pub crash_participant_before_decide: Option<usize>,
}

/// How one cross-shard commit attempt ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitOutcome {
    /// Decision durable and delivered: every participant applied.
    Committed,
    /// Voted or presumed abort: no participant kept any effect.
    Aborted,
    /// The coordinator crashed mid-protocol. `decision_durable` tells
    /// what its recovery must conclude: `true` re-delivers the commit,
    /// `false` presumes abort.
    CoordinatorCrashed {
        /// The global transaction id left in limbo.
        gtid: u64,
        /// Whether the commit decision reached stable storage.
        decision_durable: bool,
    },
}

// ---- the server side ---------------------------------------------------

/// The transaction-aware server loop: dispatches the 2PC opcodes
/// against the server's [`TransactionService`] and everything else to
/// the plain file-service [`wire::serve`] — one endpoint, both
/// protocols, same at-most-once replay cache.
///
/// [`wire::serve`]: rhodos_replication::wire::serve
pub fn serve_txn(ts: &mut TransactionService, req: &[u8]) -> Vec<u8> {
    let mut d = Decoder::new(req);
    let op = d.u8().expect("self-generated request");
    if op < OP_TXN_PREPARE {
        return rhodos_replication::wire::serve(ts.file_service_mut(), req);
    }
    let result: Result<Vec<u8>, FileServiceError> = match op {
        OP_TXN_PREPARE => {
            let batch = decode_txn_prepare(&mut d);
            Ok(serve_prepare(ts, &batch))
        }
        OP_TXN_DECIDE => {
            let gtid = d.u64().expect("gtid");
            let commit = d.u8().expect("verdict") != 0;
            let orphan = d.u8().expect("origin") != 0;
            let res = if orphan {
                ts.resolve_orphan(gtid, commit)
            } else {
                ts.resolve_prepared(gtid, commit)
            };
            match res {
                Ok(resolved) => Ok(vec![u8::from(resolved)]),
                Err(TxnError::File(e)) => Err(e),
                Err(e) => unreachable!("resolve failures are file-service failures: {e}"),
            }
        }
        OP_TXN_PREPARED_LIST => Ok(encode_gtid_list(&ts.prepared_gtids())),
        _ => unreachable!("unknown txn opcode {op}"),
    };
    let mut e = Encoder::new();
    match result {
        Ok(payload) => {
            e.u8(REPLY_OK).bytes(&payload);
        }
        Err(err) => {
            e.u8(REPLY_ERR);
            encode_error(&mut e, &err);
        }
    }
    e.finish()
}

/// Phase one on the participant: each batched transaction runs under a
/// fresh local transaction (any failure — missing file, lock conflict —
/// is a *no* vote and an immediate local abort), then **one** log force
/// makes every surviving `Prepared` record durable before any vote is
/// reported. This is the group-commit amortisation applied to 2PC:
/// records-per-prepare-flush scales with the batch, not with 1.
fn serve_prepare(ts: &mut TransactionService, batch: &[PrepareTxn]) -> Vec<u8> {
    let mut votes = Vec::with_capacity(batch.len());
    for (gtid, ops) in batch {
        let t = ts.tbegin();
        let mut opened: HashSet<FileId> = HashSet::new();
        let mut ok = true;
        for (fid, offset, data) in ops {
            if opened.insert(*fid) && ts.topen(t, *fid).is_err() {
                ok = false;
                break;
            }
            if ts.twrite(t, *fid, *offset, data).is_err() {
                ok = false;
                break;
            }
        }
        let ok = ok && ts.prepare_participant(t, *gtid).is_ok();
        if !ok {
            let _ = ts.tabort(t);
        }
        votes.push(ok);
    }
    if ts.flush_log().is_err() {
        // Votes that never became durable must not be reported yes.
        for ((gtid, _), vote) in batch.iter().zip(votes.iter_mut()) {
            if *vote {
                let _ = ts.resolve_prepared(*gtid, false);
                *vote = false;
            }
        }
    }
    encode_votes(&votes)
}

// ---- the coordinator ---------------------------------------------------

impl Cluster {
    /// Atomically commits a multi-file transaction whose files may live
    /// on different data servers: full two-phase commit, even when every
    /// file happens to share a home (uniformity keeps the single-shard
    /// ablation byte-identical).
    ///
    /// # Errors
    ///
    /// [`ClusterError::UnknownFile`] for an unmapped gid; transport and
    /// vote failures are *not* errors — they surface as
    /// [`CommitOutcome::Aborted`].
    pub fn commit_cross_shard(&mut self, ops: &[CrossOp]) -> Result<CommitOutcome, ClusterError> {
        self.commit_cross_shard_chaos(ops, &CommitChaos::default())
    }

    /// [`Self::commit_cross_shard`] under a deterministic fault
    /// schedule; each armed fault fires once.
    ///
    /// # Errors
    ///
    /// As [`Self::commit_cross_shard`].
    pub fn commit_cross_shard_chaos(
        &mut self,
        ops: &[CrossOp],
        chaos: &CommitChaos,
    ) -> Result<CommitOutcome, ClusterError> {
        let mut chaos = chaos.clone();
        for _ in 0..MAX_RETARGETS {
            let gtid = self.next_gtid;
            self.next_gtid += 1;
            let epoch0 = self.epoch();

            // Resolve every op against the *current* placement. The
            // snapshot can go stale the moment it is taken — that is
            // what the epoch re-check below is for.
            let mut by_server: BTreeMap<usize, Vec<(FileId, u64, Vec<u8>)>> = BTreeMap::new();
            for (gid, offset, data) in ops {
                let p = self.resolve(*gid)?;
                by_server
                    .entry(p.server)
                    .or_default()
                    .push((p.local, *offset, data.clone()));
            }

            // Mid-prepare reconfiguration: the file moves *after* the
            // snapshot, so phase one below runs against stale placement.
            if let Some((gid, target)) = chaos.migrate_mid_prepare.take() {
                let _ = self.migrate(gid, target);
            }

            // Phase one: one prepare RPC per participant.
            let mut prepared: Vec<usize> = Vec::new();
            let mut orphaned: Vec<usize> = Vec::new();
            let mut all_yes = true;
            for (&server, server_ops) in &by_server {
                if chaos
                    .crash_participant_before_prepare
                    .take_if(|s| *s == server)
                    .is_some()
                {
                    self.crash_server(server);
                    all_yes = false;
                    continue;
                }
                self.stats.prepare_rpcs += 1;
                let batch = [(gtid, server_ops.clone())];
                let vote = match self.call_node_txn(server, &encode_txn_prepare(&batch)) {
                    Ok(payload) => decode_votes(&payload).first().copied().unwrap_or(false),
                    Err(_) => false,
                };
                if vote && chaos.lose_prepare_ack.take_if(|s| *s == server).is_some() {
                    // Durably prepared, vote lost: the coordinator must
                    // presume abort and never contact this orphan again.
                    orphaned.push(server);
                    all_yes = false;
                    continue;
                }
                if vote {
                    prepared.push(server);
                    if chaos
                        .crash_participant_after_prepare
                        .take_if(|s| *s == server)
                        .is_some()
                    {
                        self.crash_server(server);
                    }
                } else {
                    all_yes = false;
                }
            }

            // The reconfiguration check (Bravo): deciding commit against
            // a placement that changed under us could apply half a
            // transaction to a moved file. Abort the prepared votes and
            // re-target by the new epoch.
            if self.epoch() != epoch0 {
                self.decide_abort(gtid, &prepared);
                self.stats.retargets += 1;
                continue;
            }
            if !all_yes {
                self.decide_abort(gtid, &prepared);
                self.stats.cross_aborts += 1;
                debug_assert!(
                    orphaned.iter().all(|s| !prepared.contains(s)),
                    "orphans must not receive the abort"
                );
                return Ok(CommitOutcome::Aborted);
            }

            // Phase two: the decision. Commit exists iff its record is
            // durable in the decision log.
            if chaos.crash_coordinator_before_decision {
                return Ok(CommitOutcome::CoordinatorCrashed {
                    gtid,
                    decision_durable: false,
                });
            }
            self.decision_log.append_commit(gtid);
            if chaos.torn_decision {
                self.decision_log.crash_torn();
                return Ok(CommitOutcome::CoordinatorCrashed {
                    gtid,
                    decision_durable: false,
                });
            }
            self.decision_log.force();
            self.stats.decision_forces += 1;
            if chaos.crash_coordinator_after_decision {
                return Ok(CommitOutcome::CoordinatorCrashed {
                    gtid,
                    decision_durable: true,
                });
            }

            // Completion: deliver the decision (idempotent; a missed
            // participant is the orphan sweep's job).
            for &server in &prepared {
                if chaos
                    .crash_participant_before_decide
                    .take_if(|s| *s == server)
                    .is_some()
                {
                    self.crash_server(server);
                    continue;
                }
                let _ = self.call_node_txn(server, &encode_txn_decide(gtid, true, false));
            }
            self.stats.cross_commits += 1;
            self.note_cross_writes(ops);
            return Ok(CommitOutcome::Committed);
        }
        self.stats.cross_aborts += 1;
        Ok(CommitOutcome::Aborted)
    }

    /// Commits a wave of cross-shard transactions with 2PC batching:
    /// one prepare RPC (and thus one participant log force) per server
    /// for the whole wave, and one decision-log force for every commit
    /// decision. This is E24's amortisation lever — flushes per commit
    /// fall with the wave size exactly as E18's group commit does
    /// locally.
    ///
    /// # Errors
    ///
    /// [`ClusterError::UnknownFile`] for an unmapped gid.
    pub fn commit_batch(
        &mut self,
        txns: &[Vec<CrossOp>],
    ) -> Result<Vec<CommitOutcome>, ClusterError> {
        let epoch0 = self.epoch();
        let first_gtid = self.next_gtid;
        self.next_gtid += txns.len() as u64;

        let mut by_server: BTreeMap<usize, Vec<PrepareTxn>> = BTreeMap::new();
        let mut participants: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); txns.len()];
        for (k, ops) in txns.iter().enumerate() {
            let gtid = first_gtid + k as u64;
            let mut per: BTreeMap<usize, Vec<(FileId, u64, Vec<u8>)>> = BTreeMap::new();
            for (gid, offset, data) in ops {
                let p = self.resolve(*gid)?;
                per.entry(p.server)
                    .or_default()
                    .push((p.local, *offset, data.clone()));
                participants[k].insert(p.server);
            }
            for (server, server_ops) in per {
                by_server
                    .entry(server)
                    .or_default()
                    .push((gtid, server_ops));
            }
        }

        let mut votes: HashMap<(usize, u64), bool> = HashMap::new();
        for (&server, batch) in &by_server {
            self.stats.prepare_rpcs += 1;
            match self.call_node_txn(server, &encode_txn_prepare(batch)) {
                Ok(payload) => {
                    for ((gtid, _), vote) in batch.iter().zip(decode_votes(&payload)) {
                        votes.insert((server, *gtid), vote);
                    }
                }
                Err(_) => {
                    for (gtid, _) in batch {
                        votes.insert((server, *gtid), false);
                    }
                }
            }
        }

        let epoch_ok = self.epoch() == epoch0;
        let committing: Vec<bool> = (0..txns.len())
            .map(|k| {
                let gtid = first_gtid + k as u64;
                epoch_ok
                    && participants[k]
                        .iter()
                        .all(|s| votes.get(&(*s, gtid)) == Some(&true))
            })
            .collect();
        if committing.iter().any(|c| *c) {
            for (k, c) in committing.iter().enumerate() {
                if *c {
                    self.decision_log.append_commit(first_gtid + k as u64);
                }
            }
            // One force covers the whole wave's decisions.
            self.decision_log.force();
            self.stats.decision_forces += 1;
        }

        let mut outcomes = Vec::with_capacity(txns.len());
        for (k, commit) in committing.iter().enumerate() {
            let gtid = first_gtid + k as u64;
            for &server in &participants[k] {
                // A no-voter already rolled back locally; only prepared
                // participants need the decision.
                if votes.get(&(server, gtid)) == Some(&true) {
                    let _ = self.call_node_txn(server, &encode_txn_decide(gtid, *commit, false));
                }
            }
            if *commit {
                self.stats.cross_commits += 1;
                self.note_cross_writes(&txns[k]);
                outcomes.push(CommitOutcome::Committed);
            } else {
                self.stats.cross_aborts += 1;
                outcomes.push(CommitOutcome::Aborted);
            }
        }
        Ok(outcomes)
    }

    /// Coordinator recovery: replays the durable decision log, then
    /// sweeps every live server's in-doubt list and re-delivers each
    /// orphan's fate — the logged commit, or the presumed abort.
    /// Returns `(committed, aborted)` orphan resolutions. Idempotent:
    /// a second sweep finds nothing in doubt.
    pub fn recover_coordinator(&mut self) -> (u64, u64) {
        self.stats.coordinator_recoveries += 1;
        self.decision_log.crash();
        let committed = self.decision_log.recover();
        let mut commits = 0;
        let mut aborts = 0;
        for server in self.live_node_indices() {
            let Ok(payload) = self.call_node_txn(server, &encode_txn_prepared_list()) else {
                continue;
            };
            for gtid in decode_gtid_list(&payload) {
                let commit = committed.contains(&gtid);
                if let Ok(reply) =
                    self.call_node_txn(server, &encode_txn_decide(gtid, commit, true))
                {
                    if reply.first() == Some(&1) {
                        self.stats.orphan_resolutions += 1;
                        if commit {
                            commits += 1;
                        } else {
                            aborts += 1;
                        }
                    }
                }
            }
        }
        (commits, aborts)
    }

    /// Global transaction ids currently in doubt anywhere in the
    /// cluster (empty once every coordinator decision has landed — the
    /// liveness bound of the chaos tests).
    pub fn in_doubt_gtids(&mut self) -> Vec<u64> {
        let mut out: BTreeSet<u64> = BTreeSet::new();
        for server in self.live_node_indices() {
            if let Ok(payload) = self.call_node_txn(server, &encode_txn_prepared_list()) {
                out.extend(decode_gtid_list(&payload));
            }
        }
        out.into_iter().collect()
    }

    /// Presumed abort to every participant that voted yes.
    fn decide_abort(&mut self, gtid: u64, prepared: &[usize]) {
        for &server in prepared {
            let _ = self.call_node_txn(server, &encode_txn_decide(gtid, false, false));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::master::ClusterConfig;

    /// A cluster with one seeded, synced file per server; file `k` lives
    /// on server `k` (least-loaded placement round-robins an empty
    /// cluster) and holds `blocks * 512` bytes of `k + 1`.
    fn cluster_with_files(n: usize, blocks: usize) -> (Cluster, Vec<u64>) {
        let mut c = Cluster::new(n, ClusterConfig::default());
        let gids: Vec<u64> = (0..n)
            .map(|k| {
                let gid = c.create().unwrap();
                c.open(gid).unwrap();
                c.write(gid, 0, &vec![k as u8 + 1; blocks * 512]).unwrap();
                gid
            })
            .collect();
        c.sync_all();
        (c, gids)
    }

    fn two_shard_ops(gids: &[u64]) -> Vec<CrossOp> {
        vec![
            (gids[0], 3, b"alpha".to_vec()),
            (gids[1], 7, b"beta!".to_vec()),
        ]
    }

    fn assert_applied(c: &mut Cluster, gids: &[u64]) {
        assert_eq!(c.read(gids[0], 3, 5).unwrap(), b"alpha");
        assert_eq!(c.read(gids[1], 7, 5).unwrap(), b"beta!");
    }

    fn assert_untouched(c: &mut Cluster, gids: &[u64]) {
        assert_eq!(c.read(gids[0], 3, 5).unwrap(), vec![1u8; 5]);
        assert_eq!(c.read(gids[1], 7, 5).unwrap(), vec![2u8; 5]);
    }

    #[test]
    fn cross_shard_commit_applies_on_every_home() {
        let (mut c, gids) = cluster_with_files(3, 2);
        let out = c.commit_cross_shard(&two_shard_ops(&gids)).unwrap();
        assert_eq!(out, CommitOutcome::Committed);
        assert_applied(&mut c, &gids);
        let s = c.stats();
        assert_eq!(s.cross_commits, 1);
        assert_eq!(s.prepare_rpcs, 2, "one prepare per participant");
        assert_eq!(s.decision_forces, 1);
        assert!(c.in_doubt_gtids().is_empty());
    }

    #[test]
    fn single_shard_txn_still_runs_full_two_phase() {
        // The ablation arm: both ops share a home, yet the protocol is
        // byte-identical — one prepare, one decision force.
        let (mut c, gids) = cluster_with_files(2, 2);
        let ops = vec![
            (gids[0], 0, b"one".to_vec()),
            (gids[0], 512, b"two".to_vec()),
        ];
        assert_eq!(
            c.commit_cross_shard(&ops).unwrap(),
            CommitOutcome::Committed
        );
        assert_eq!(c.read(gids[0], 0, 3).unwrap(), b"one");
        assert_eq!(c.read(gids[0], 512, 3).unwrap(), b"two");
        assert_eq!(c.stats().prepare_rpcs, 1);
        assert_eq!(c.stats().decision_forces, 1);
    }

    #[test]
    fn unreachable_participant_aborts_everywhere() {
        let (mut c, gids) = cluster_with_files(2, 2);
        c.set_max_attempts(2);
        c.set_link(1, false);
        let out = c.commit_cross_shard(&two_shard_ops(&gids)).unwrap();
        assert_eq!(out, CommitOutcome::Aborted);
        c.set_link(1, true);
        assert_untouched(&mut c, &gids);
        assert_eq!(c.stats().cross_aborts, 1);
        assert_eq!(c.stats().cross_commits, 0);
        assert!(
            c.in_doubt_gtids().is_empty(),
            "prepared voter got the abort"
        );
    }

    #[test]
    fn coordinator_crash_before_decision_presumes_abort() {
        let (mut c, gids) = cluster_with_files(2, 2);
        let chaos = CommitChaos {
            crash_coordinator_before_decision: true,
            ..CommitChaos::default()
        };
        let out = c
            .commit_cross_shard_chaos(&two_shard_ops(&gids), &chaos)
            .unwrap();
        assert!(matches!(
            out,
            CommitOutcome::CoordinatorCrashed {
                decision_durable: false,
                ..
            }
        ));
        assert_eq!(c.in_doubt_gtids().len(), 1, "both homes hold one orphan");
        let (commits, aborts) = c.recover_coordinator();
        assert_eq!((commits, aborts), (0, 2), "presumed abort on both homes");
        assert_untouched(&mut c, &gids);
        assert!(c.in_doubt_gtids().is_empty());
        assert_eq!(c.stats().orphan_resolutions, 2);
        assert_eq!(c.stats().coordinator_recoveries, 1);
    }

    #[test]
    fn coordinator_crash_after_decision_commits_orphans() {
        let (mut c, gids) = cluster_with_files(2, 2);
        let chaos = CommitChaos {
            crash_coordinator_after_decision: true,
            ..CommitChaos::default()
        };
        let out = c
            .commit_cross_shard_chaos(&two_shard_ops(&gids), &chaos)
            .unwrap();
        assert!(matches!(
            out,
            CommitOutcome::CoordinatorCrashed {
                decision_durable: true,
                ..
            }
        ));
        let (commits, aborts) = c.recover_coordinator();
        assert_eq!((commits, aborts), (2, 0), "durable decision re-delivered");
        assert_applied(&mut c, &gids);
        assert!(c.in_doubt_gtids().is_empty());
    }

    #[test]
    fn torn_decision_record_reads_as_abort() {
        let (mut c, gids) = cluster_with_files(2, 2);
        let chaos = CommitChaos {
            torn_decision: true,
            ..CommitChaos::default()
        };
        let out = c
            .commit_cross_shard_chaos(&two_shard_ops(&gids), &chaos)
            .unwrap();
        assert!(matches!(
            out,
            CommitOutcome::CoordinatorCrashed {
                decision_durable: false,
                ..
            }
        ));
        let (commits, aborts) = c.recover_coordinator();
        assert_eq!((commits, aborts), (0, 2), "half a record is no decision");
        assert_untouched(&mut c, &gids);
    }

    #[test]
    fn participant_crash_after_prepare_recovers_in_doubt_and_commits() {
        let (mut c, gids) = cluster_with_files(2, 2);
        let chaos = CommitChaos {
            crash_participant_after_prepare: Some(1),
            ..CommitChaos::default()
        };
        let out = c
            .commit_cross_shard_chaos(&two_shard_ops(&gids), &chaos)
            .unwrap();
        // Server 1 crashed after its prepare force; recovery rebuilt the
        // in-doubt participant from the log and the decide landed on it.
        assert_eq!(out, CommitOutcome::Committed);
        assert_applied(&mut c, &gids);
        assert!(c.in_doubt_gtids().is_empty());
    }

    #[test]
    fn participant_crash_before_decide_is_swept_to_commit() {
        let (mut c, gids) = cluster_with_files(2, 2);
        let chaos = CommitChaos {
            crash_participant_before_decide: Some(1),
            ..CommitChaos::default()
        };
        let out = c
            .commit_cross_shard_chaos(&two_shard_ops(&gids), &chaos)
            .unwrap();
        assert_eq!(out, CommitOutcome::Committed);
        // Server 0 applied; server 1 is an orphan until the sweep.
        assert_eq!(c.read(gids[0], 3, 5).unwrap(), b"alpha");
        assert_eq!(c.in_doubt_gtids().len(), 1);
        let (commits, aborts) = c.recover_coordinator();
        assert_eq!((commits, aborts), (1, 0));
        assert_applied(&mut c, &gids);
    }

    #[test]
    fn lost_prepare_ack_leaves_orphan_the_sweep_aborts() {
        let (mut c, gids) = cluster_with_files(2, 2);
        let chaos = CommitChaos {
            lose_prepare_ack: Some(1),
            ..CommitChaos::default()
        };
        let out = c
            .commit_cross_shard_chaos(&two_shard_ops(&gids), &chaos)
            .unwrap();
        assert_eq!(out, CommitOutcome::Aborted);
        // Server 1 prepared durably but the coordinator never learned;
        // presumed abort resolves it without any decision record.
        assert_eq!(c.in_doubt_gtids().len(), 1);
        let (commits, aborts) = c.recover_coordinator();
        assert_eq!((commits, aborts), (0, 1));
        assert_untouched(&mut c, &gids);
        assert_eq!(c.decision_log.durable_len(), 0);
    }

    #[test]
    fn migration_mid_prepare_retargets_and_commits() {
        let (mut c, gids) = cluster_with_files(3, 2);
        let chaos = CommitChaos {
            migrate_mid_prepare: Some((gids[1], 2)),
            ..CommitChaos::default()
        };
        let out = c
            .commit_cross_shard_chaos(&two_shard_ops(&gids), &chaos)
            .unwrap();
        // First attempt ran against stale placement (or a moved epoch)
        // and re-targeted; the retry resolved server 2 as the new home.
        assert_eq!(out, CommitOutcome::Committed);
        assert_eq!(c.placement_of(gids[1]).unwrap().0, 2);
        assert_applied(&mut c, &gids);
        assert!(c.stats().retargets >= 1);
        assert!(c.in_doubt_gtids().is_empty());
        assert_eq!(c.stats().cross_commits, 1);
    }

    #[test]
    fn batch_commit_amortises_prepare_and_decision_forces() {
        // 16 files alternating over 2 servers: each wave transaction
        // touches its own pair, so the wave is conflict-free and every
        // member can ride the shared prepare flush.
        let (mut c, gids) = cluster_with_files(2, 2);
        let extra: Vec<u64> = (0..14)
            .map(|k| {
                let gid = c.create().unwrap();
                c.open(gid).unwrap();
                c.write(gid, 0, &vec![k as u8 + 3; 1024]).unwrap();
                gid
            })
            .collect();
        let gids: Vec<u64> = gids.into_iter().chain(extra).collect();
        let waves: Vec<Vec<CrossOp>> = (0..8u8)
            .map(|k| {
                vec![
                    (gids[2 * k as usize], u64::from(k) * 16, vec![0xA0 | k; 8]),
                    (
                        gids[2 * k as usize + 1],
                        u64::from(k) * 16,
                        vec![0xB0 | k; 8],
                    ),
                ]
            })
            .collect();
        let outs = c.commit_batch(&waves).unwrap();
        assert!(outs.iter().all(|o| *o == CommitOutcome::Committed));
        let s = c.stats();
        assert_eq!(s.cross_commits, 8);
        assert_eq!(s.prepare_rpcs, 2, "one batched prepare per server");
        assert_eq!(s.decision_forces, 1, "one force covers the wave");
        for k in 0..8u8 {
            assert_eq!(
                c.read(gids[2 * k as usize], u64::from(k) * 16, 8).unwrap(),
                vec![0xA0 | k; 8]
            );
            assert_eq!(
                c.read(gids[2 * k as usize + 1], u64::from(k) * 16, 8)
                    .unwrap(),
                vec![0xB0 | k; 8]
            );
        }
        // Participant-side accounting: the wave rode one prepare flush.
        let h = c.server_handle(0);
        let ts = h.lock();
        assert_eq!(ts.stats().prepares, 8);
        assert!(ts.stats().records_per_prepare_flush() > 1.0);
    }

    #[test]
    fn decision_log_recovery_scans_only_complete_records() {
        let mut log = DecisionLog::default();
        log.append_commit(7);
        log.append_commit(9);
        log.force();
        log.append_commit(11);
        log.crash_torn();
        let committed = log.recover();
        assert!(committed.contains(&7) && committed.contains(&9));
        assert!(!committed.contains(&11), "torn record is presumed abort");
        log.crash();
        assert_eq!(log.recover().len(), 2);
    }

    #[test]
    fn conflicting_cross_shard_txns_serialise_by_abort() {
        // Two waves touching the same pages: the in-doubt first txn
        // holds its locks, so batching both into one wave votes no for
        // the second and commits only the first.
        let (mut c, gids) = cluster_with_files(2, 2);
        let waves = vec![two_shard_ops(&gids), two_shard_ops(&gids)];
        let outs = c.commit_batch(&waves).unwrap();
        assert_eq!(outs[0], CommitOutcome::Committed);
        assert_eq!(outs[1], CommitOutcome::Aborted);
        assert_applied(&mut c, &gids);
        assert!(c.in_doubt_gtids().is_empty());
    }

    #[test]
    fn migration_refuses_in_doubt_file_until_decision_lands() {
        // Durable commit decision, then the participant crashes while
        // in doubt: its crash-rebuilt prepared state holds no open
        // count, so only the explicit in-doubt guard stops a migration
        // from deleting the replica the pending commit will apply to.
        let (mut c, gids) = cluster_with_files(2, 2);
        let home = c.placement_of(gids[0]).unwrap().0;
        let chaos = CommitChaos {
            crash_coordinator_after_decision: true,
            ..CommitChaos::default()
        };
        let out = c
            .commit_cross_shard_chaos(&two_shard_ops(&gids), &chaos)
            .unwrap();
        assert!(matches!(
            out,
            CommitOutcome::CoordinatorCrashed {
                decision_durable: true,
                ..
            }
        ));
        c.crash_server(home);
        let err = c.migrate(gids[0], (home + 1) % 2).unwrap_err();
        assert!(
            matches!(err, ClusterError::File(FileServiceError::Busy(_))),
            "in-doubt file must not move: {err:?}"
        );
        let (commits, _) = c.recover_coordinator();
        assert!(commits >= 1, "both orphaned shards resolve to commit");
        assert_applied(&mut c, &gids);
        // Decision applied — the file is free to move again.
        assert!(c.migrate(gids[0], (home + 1) % 2).is_ok());
        assert_applied(&mut c, &gids);
    }
}
