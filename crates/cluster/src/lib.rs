//! Sharded cluster: a placement/metadata master in front of N
//! independent data servers.
//!
//! The paper's file facility is a single server (replicated for
//! availability, PR 3) — this crate spreads the *namespace* across many
//! of them, the way Lustre splits its metadata server from object
//! storage targets. One [`Cluster`] master owns the file → server
//! placement map; each data server is a full `FileService` stack behind
//! its own `rhodos-net` channel speaking the replication wire protocol
//! (`rhodos_replication::wire`), so the data path is the same
//! at-most-once RPC machinery the replica fan-out uses — one hop from
//! client to the file's home server, no master involvement.
//!
//! Coherence of client-side placement caches mirrors the PR 7 lease
//! epochs: every mutation of the placement map bumps a **placement
//! epoch**, published together with the map through a shared
//! [`PlacementDirectory`]. Clients compare their cached epoch against
//! the directory's on every operation and refresh only when it moved —
//! the steady-state data path never pays a master round trip.
//!
//! Liveness is heartbeat-driven: the master probes every data server
//! each [`Cluster::heartbeat_pulse`]; enough consecutive misses mark the
//! server dead (its files stay mapped but unavailable), and a later
//! successful probe rejoins it — synchronising its placement epoch and
//! garbage-collecting any local files the map no longer assigns to it,
//! so a flapping server can neither double-place files nor serve a
//! stale epoch. Background [`Cluster::rebalance`] migrates hot files
//! off busy spindles through chunked, fingerprint-verified copies over
//! the same wire protocol.

mod commit;
mod master;
mod placement;

pub use commit::{serve_txn, CommitChaos, CommitOutcome, CrossOp, DecisionLog};
pub use master::{
    Cluster, ClusterConfig, ClusterError, ClusterStats, RebalanceReport, ServerHandle,
};
pub use placement::{PlacementDirectory, SharedDirectory};
