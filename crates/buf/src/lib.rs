//! Shared block buffers for the zero-copy data path.
//!
//! Every layer of the facility (simulated disk → disk service → file
//! service → agent) moves 2 KiB fragments and 8 KiB blocks. Before this
//! crate each hand-off deep-copied the bytes into a fresh `Vec<u8>`; with
//! [`BlockBuf`] a hand-off is a refcount bump and a cache hit is a
//! `clone()` of a handle, not an 8 KiB memcpy.
//!
//! Ownership rules (see DESIGN.md §4):
//! * A `BlockBuf` is an immutable view `(Arc<Vec<u8>>, offset, len)`.
//!   Cloning and slicing never copy.
//! * Mutation goes through [`BlockBuf::make_mut`], which is copy-on-write:
//!   it copies only when the allocation is shared or the view is a
//!   sub-slice. A uniquely-owned full-range buffer mutates in place.
//! * A contiguous multi-block disk transfer is one allocation; per-block
//!   views are made with [`BlockBuf::slice`]. [`BlockBuf::try_concat`]
//!   reassembles adjacent views of one allocation without copying.

use std::fmt;
use std::ops::{Deref, Range};
use std::sync::Arc;

/// A cheaply clonable, sliceable, copy-on-write byte buffer.
#[derive(Clone)]
pub struct BlockBuf {
    data: Arc<Vec<u8>>,
    off: usize,
    len: usize,
}

impl BlockBuf {
    /// An empty buffer (no allocation is shared; `make_mut` is free).
    pub fn new() -> Self {
        Self::from(Vec::new())
    }

    /// A zero-filled buffer of `len` bytes.
    pub fn zeroed(len: usize) -> Self {
        Self::from(vec![0u8; len])
    }

    /// Length of this view in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The bytes of this view.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.off..self.off + self.len]
    }

    /// A zero-copy sub-view. `range` is relative to this view.
    ///
    /// # Panics
    ///
    /// Panics if `range` is out of bounds.
    pub fn slice(&self, range: Range<usize>) -> Self {
        assert!(
            range.start <= range.end && range.end <= self.len,
            "slice {range:?} out of bounds for BlockBuf of len {}",
            self.len
        );
        Self {
            data: Arc::clone(&self.data),
            off: self.off + range.start,
            len: range.end - range.start,
        }
    }

    /// Whether mutating this buffer would have to copy: the allocation is
    /// shared with other handles, or this view covers only part of it.
    pub fn is_shared(&self) -> bool {
        Arc::strong_count(&self.data) > 1 || self.off != 0 || self.len != self.data.len()
    }

    /// Mutable access, copy-on-write: if the allocation is uniquely owned
    /// and the view covers all of it, mutates in place; otherwise detaches
    /// into a private copy first (use [`Self::is_shared`] to count that
    /// copy at the call site).
    pub fn make_mut(&mut self) -> &mut [u8] {
        if self.is_shared() {
            let detached = self.as_slice().to_vec();
            self.data = Arc::new(detached);
            self.off = 0;
        }
        let len = self.len;
        let v = Arc::get_mut(&mut self.data).expect("detached buffer is uniquely owned");
        &mut v[..len]
    }

    /// Concatenates adjacent views of the *same* allocation without
    /// copying. Returns `None` if the parts come from different
    /// allocations or are not contiguous in their backing store.
    pub fn try_concat(parts: &[BlockBuf]) -> Option<BlockBuf> {
        let first = parts.first()?;
        let mut end = first.off + first.len;
        for p in &parts[1..] {
            if !Arc::ptr_eq(&p.data, &first.data) || p.off != end {
                return None;
            }
            end += p.len;
        }
        Some(BlockBuf {
            data: Arc::clone(&first.data),
            off: first.off,
            len: end - first.off,
        })
    }

    /// Copies this view's bytes into `out`.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != self.len()`.
    pub fn copy_to(&self, out: &mut [u8]) {
        out.copy_from_slice(self.as_slice());
    }
}

impl Default for BlockBuf {
    fn default() -> Self {
        Self::new()
    }
}

impl Deref for BlockBuf {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for BlockBuf {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for BlockBuf {
    /// Adopts the vector's allocation — no copy.
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Self {
            data: Arc::new(v),
            off: 0,
            len,
        }
    }
}

impl From<&[u8]> for BlockBuf {
    fn from(s: &[u8]) -> Self {
        Self::from(s.to_vec())
    }
}

impl From<&Vec<u8>> for BlockBuf {
    fn from(v: &Vec<u8>) -> Self {
        Self::from(v.clone())
    }
}

impl<const N: usize> From<&[u8; N]> for BlockBuf {
    fn from(a: &[u8; N]) -> Self {
        Self::from(a.to_vec())
    }
}

impl From<BlockBuf> for Vec<u8> {
    fn from(b: BlockBuf) -> Vec<u8> {
        match Arc::try_unwrap(b.data) {
            // Sole owner of a full view: hand the allocation back.
            Ok(v) if b.off == 0 && b.len == v.len() => v,
            Ok(v) => v[b.off..b.off + b.len].to_vec(),
            Err(shared) => shared[b.off..b.off + b.len].to_vec(),
        }
    }
}

impl fmt::Debug for BlockBuf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.as_slice();
        let preview = &s[..s.len().min(8)];
        write!(
            f,
            "BlockBuf {{ len: {}, shared: {}, bytes: {:?}{} }}",
            self.len,
            self.is_shared(),
            preview,
            if s.len() > 8 { ", .." } else { "" }
        )
    }
}

impl PartialEq for BlockBuf {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for BlockBuf {}

impl PartialEq<[u8]> for BlockBuf {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for BlockBuf {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for BlockBuf {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<BlockBuf> for Vec<u8> {
    fn eq(&self, other: &BlockBuf) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<BlockBuf> for [u8] {
    fn eq(&self, other: &BlockBuf) -> bool {
        self == other.as_slice()
    }
}

impl<const N: usize> PartialEq<[u8; N]> for BlockBuf {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_and_slice_share_the_allocation() {
        let b = BlockBuf::from(vec![1u8, 2, 3, 4, 5, 6, 7, 8]);
        assert!(!b.is_shared());
        let c = b.clone();
        assert!(b.is_shared() && c.is_shared());
        let s = b.slice(2..6);
        assert_eq!(s, vec![3u8, 4, 5, 6]);
        assert_eq!(s.len(), 4);
        // Slicing a slice composes offsets.
        assert_eq!(s.slice(1..3), vec![4u8, 5]);
    }

    #[test]
    fn make_mut_in_place_when_unique() {
        let mut b = BlockBuf::from(vec![0u8; 4]);
        assert!(!b.is_shared());
        b.make_mut()[0] = 9;
        assert_eq!(b, vec![9u8, 0, 0, 0]);
    }

    #[test]
    fn make_mut_detaches_shared_buffers() {
        let mut b = BlockBuf::from(vec![1u8, 2, 3, 4]);
        let original = b.clone();
        assert!(b.is_shared());
        b.make_mut()[0] = 99;
        assert_eq!(original, vec![1u8, 2, 3, 4]);
        assert_eq!(b, vec![99u8, 2, 3, 4]);
        // After detaching, b is unique again.
        assert!(!b.is_shared());
    }

    #[test]
    fn make_mut_detaches_sub_slices() {
        let base = BlockBuf::from(vec![1u8, 2, 3, 4]);
        let mut s = base.slice(1..3);
        s.make_mut()[0] = 7;
        assert_eq!(s, vec![7u8, 3]);
        assert_eq!(base, vec![1u8, 2, 3, 4]);
    }

    #[test]
    fn try_concat_rejoins_adjacent_views() {
        let run = BlockBuf::from((0u8..16).collect::<Vec<_>>());
        let parts: Vec<_> = (0..4).map(|i| run.slice(i * 4..(i + 1) * 4)).collect();
        let joined = BlockBuf::try_concat(&parts).expect("adjacent views rejoin");
        assert_eq!(joined, run);

        // Views from different allocations do not concat.
        let foreign = BlockBuf::from(vec![0u8; 4]);
        assert!(BlockBuf::try_concat(&[parts[0].clone(), foreign]).is_none());

        // Non-adjacent views of the same allocation do not concat.
        assert!(BlockBuf::try_concat(&[parts[0].clone(), parts[2].clone()]).is_none());
    }

    #[test]
    fn vec_round_trip_recovers_the_allocation() {
        let v = vec![5u8; 1024];
        let p = v.as_ptr();
        let b = BlockBuf::from(v);
        let back: Vec<u8> = b.into();
        assert_eq!(back.as_ptr(), p, "unique full-view round trip is move");
    }
}
