//! # rhodos-net — simulated network and idempotent RPC
//!
//! The RHODOS facility is client–server: agents on each machine talk to
//! the file, transaction and naming services by message passing. The paper
//! claims that "certain errors caused by computer failures and
//! communication delays may lead to repeated execution of some operations.
//! However, their repetition in RHODOS does not produce any uncertain
//! effect. This is because the semantics of the messages exchanged ...
//! constitute idempotent operations. Due to idempotent file operations, a
//! file agent maintains both the state of files ... and the information
//! about all past requests. As a consequence, the RHODOS file service is
//! 'nearly' stateless." (§3)
//!
//! This crate substitutes the RHODOS microkernel transport with a
//! deterministic lossy channel ([`SimNetwork`]) and provides the two
//! halves of the idempotency machinery:
//!
//! * [`RpcClient`] — stamps each logical operation with a request id and
//!   retries until a reply arrives;
//! * [`ReplayCache`] — the server side's "information about all past
//!   requests": executes an operation at most once per request id and
//!   replays the recorded reply for duplicates.
//!
//! Experiment **E9** drives file operations through this machinery with
//! duplication and loss enabled and checks that effects are exactly-once.
//!
//! # Example
//!
//! ```
//! use rhodos_net::{NetConfig, ReplayCache, RpcClient, SimNetwork};
//! use rhodos_simdisk::SimClock;
//!
//! let mut net = SimNetwork::new(SimClock::new(), NetConfig::lossy(0.3, 0.3, 7));
//! let mut client = RpcClient::new(1);
//! let mut cache = ReplayCache::new();
//! let mut counter = 0u32; // server-side effect
//!
//! let reply = client
//!     .call(&mut net, |req_id| {
//!         cache.execute(req_id, || {
//!             counter += 1; // must happen exactly once
//!             counter.to_le_bytes().to_vec()
//!         })
//!     })
//!     .unwrap();
//! assert_eq!(counter, 1);
//! assert_eq!(reply, 1u32.to_le_bytes().to_vec());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rhodos_simdisk::SimClock;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Behaviour of the simulated network.
#[derive(Debug, Clone, Copy)]
pub struct NetConfig {
    /// Base one-way delay, virtual microseconds.
    pub delay_us: u64,
    /// Uniform extra jitter added to each transmission, microseconds.
    pub jitter_us: u64,
    /// Probability a transmission is lost entirely.
    pub drop_prob: f64,
    /// Loss probability for the *reply* leg of an RPC exchange, when it
    /// differs from the request leg. `None` keeps the lane symmetric
    /// (replies drop with `drop_prob`). A one-way-lossy lane
    /// (`drop_prob = 0`, `reply_drop_prob = Some(p)`) is the worst case
    /// for server replay state: every operation executes, but its reply
    /// — and the piggybacked ack it would have confirmed — keeps
    /// getting lost.
    pub reply_drop_prob: Option<f64>,
    /// Probability a delivered transmission arrives twice.
    pub duplicate_prob: f64,
    /// RNG seed — simulations are deterministic per seed.
    pub seed: u64,
}

impl Default for NetConfig {
    fn default() -> Self {
        Self {
            delay_us: 500,
            jitter_us: 100,
            drop_prob: 0.0,
            reply_drop_prob: None,
            duplicate_prob: 0.0,
            seed: 0,
        }
    }
}

impl NetConfig {
    /// A reliable network (no loss, no duplication).
    pub fn reliable() -> Self {
        Self::default()
    }

    /// A faulty network with the given loss and duplication probabilities.
    pub fn lossy(drop_prob: f64, duplicate_prob: f64, seed: u64) -> Self {
        Self {
            drop_prob,
            duplicate_prob,
            seed,
            ..Self::default()
        }
    }

    /// A one-way-lossy lane: requests always arrive, replies drop with
    /// `reply_drop_prob`. Every operation executes server-side but its
    /// acknowledgement keeps getting lost — the adversarial case for
    /// replay-cache boundedness.
    pub fn reply_lossy(reply_drop_prob: f64, seed: u64) -> Self {
        Self {
            reply_drop_prob: Some(reply_drop_prob),
            seed,
            ..Self::default()
        }
    }
}

/// The fate of one transmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery {
    /// Arrived; `copies` is 1, or 2 when duplicated.
    Delivered {
        /// Number of copies that arrived.
        copies: u32,
    },
    /// Lost in transit.
    Lost,
}

/// Counters of network behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Transmissions attempted.
    pub sent: u64,
    /// Transmissions lost.
    pub lost: u64,
    /// Extra duplicate copies created.
    pub duplicated: u64,
    /// Total virtual time spent in transit.
    pub transit_us: u64,
}

/// A deterministic lossy channel that advances the shared virtual clock
/// for every transmission.
#[derive(Debug)]
pub struct SimNetwork {
    clock: SimClock,
    config: NetConfig,
    rng: StdRng,
    stats: NetStats,
}

impl SimNetwork {
    /// Creates a network over the shared clock.
    pub fn new(clock: SimClock, config: NetConfig) -> Self {
        Self {
            clock,
            rng: StdRng::seed_from_u64(config.seed),
            config,
            stats: NetStats::default(),
        }
    }

    /// Statistics so far.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// The shared clock.
    pub fn clock(&self) -> SimClock {
        self.clock.clone()
    }

    /// Sends one message, advancing the clock by its transit time (or the
    /// timeout-equivalent delay when it is lost).
    pub fn transmit(&mut self) -> Delivery {
        let p = self.config.drop_prob;
        self.transmit_with(p)
    }

    /// Sends one *reply-leg* message: drops with `reply_drop_prob` when
    /// the lane is asymmetric, with `drop_prob` otherwise. RNG draw order
    /// is identical to [`Self::transmit`], so symmetric configurations
    /// stay byte-for-byte deterministic with earlier traces.
    pub fn transmit_reply(&mut self) -> Delivery {
        let p = self.config.reply_drop_prob.unwrap_or(self.config.drop_prob);
        self.transmit_with(p)
    }

    fn transmit_with(&mut self, drop_prob: f64) -> Delivery {
        self.stats.sent += 1;
        let jitter = if self.config.jitter_us > 0 {
            self.rng.gen_range(0..=self.config.jitter_us)
        } else {
            0
        };
        let cost = self.config.delay_us + jitter;
        self.clock.advance(cost);
        self.stats.transit_us += cost;
        if self.rng.gen_bool(drop_prob.clamp(0.0, 1.0)) {
            self.stats.lost += 1;
            return Delivery::Lost;
        }
        let copies = if self
            .rng
            .gen_bool(self.config.duplicate_prob.clamp(0.0, 1.0))
        {
            self.stats.duplicated += 1;
            2
        } else {
            1
        };
        Delivery::Delivered { copies }
    }
}

/// Exponential-backoff policy applied between RPC retries.
///
/// A blind tight retry loop floods an already lossy channel; real RPC
/// stacks (and the failover designs in the related literature) space
/// retries out exponentially with randomised jitter so concurrent
/// clients do not resynchronise into retry storms. Delays are charged to
/// the simulation's [`SimClock`], so retry cost shows up in virtual time
/// exactly like disk seeks and message transit do.
///
/// The `n`-th retry waits `min(cap_us, base_us * 2^(n-1))` microseconds,
/// "equal-jitter" randomised into `[delay/2, delay]` with the client's
/// own deterministic RNG.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffConfig {
    /// Nominal delay before the first retry, virtual microseconds.
    pub base_us: u64,
    /// Ceiling on any single retry delay.
    pub cap_us: u64,
}

impl Default for BackoffConfig {
    fn default() -> Self {
        Self {
            base_us: 500,
            cap_us: 64_000,
        }
    }
}

impl BackoffConfig {
    /// The jittered delay of the `nth_retry`-th retry (1-based), drawn
    /// from `rng`.
    fn delay_us(&self, nth_retry: u32, rng: &mut StdRng) -> u64 {
        let shift = (nth_retry - 1).min(32);
        let nominal = self
            .base_us
            .saturating_mul(1u64 << shift)
            .min(self.cap_us)
            .max(1);
        let half = nominal / 2;
        half + rng.gen_range(0..=nominal - half)
    }
}

/// Counters of one client's RPC behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RpcClientStats {
    /// Logical operations issued.
    pub calls: u64,
    /// Extra attempts beyond the first (request or reply leg lost).
    pub retries: u64,
    /// Total virtual time spent backing off between attempts.
    pub backoff_us: u64,
}

/// Error returned when every retry of an RPC was lost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RpcExhausted {
    /// Attempts made (original + retries).
    pub attempts: u32,
}

impl fmt::Display for RpcExhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rpc failed after {} attempts", self.attempts)
    }
}

impl Error for RpcExhausted {}

/// Client half of the idempotent RPC machinery: stamps request ids and
/// retries lost exchanges.
#[derive(Debug)]
pub struct RpcClient {
    client_id: u64,
    next_seq: u64,
    rng: StdRng,
    stats: RpcClientStats,
    /// Attempts per call before giving up (original + retries).
    pub max_attempts: u32,
    /// Retry spacing; `None` retries back-to-back (the pre-backoff
    /// behaviour, kept for ablations).
    pub backoff: Option<BackoffConfig>,
}

impl RpcClient {
    /// Creates a client with identity `client_id` (part of the request-id
    /// space so ids never collide across clients). Retries back off
    /// exponentially by default.
    pub fn new(client_id: u64) -> Self {
        Self {
            client_id,
            next_seq: 1,
            rng: StdRng::seed_from_u64(client_id ^ 0x9E37_79B9_7F4A_7C15),
            stats: RpcClientStats::default(),
            max_attempts: 16,
            backoff: Some(BackoffConfig::default()),
        }
    }

    /// Statistics so far.
    pub fn stats(&self) -> RpcClientStats {
        self.stats
    }

    /// Performs one logical operation through `net`. The `server` closure
    /// is invoked once per *arriving copy* of the request with the request
    /// id; it must return the reply bytes (typically via
    /// [`ReplayCache::execute`]). Returns the reply, retrying while
    /// requests or replies are lost.
    ///
    /// # Errors
    ///
    /// [`RpcExhausted`] if `max_attempts` exchanges were all lost.
    pub fn call<F>(&mut self, net: &mut SimNetwork, mut server: F) -> Result<Vec<u8>, RpcExhausted>
    where
        F: FnMut(RequestId) -> Vec<u8>,
    {
        self.call_with_ack(net, |req_id, _| server(req_id))
    }

    /// Like [`Self::call`], but each request also piggybacks the lowest
    /// sequence number still in flight for this client (here: the request's
    /// own, because calls are synchronous — every earlier operation has
    /// completed). The server passes it to [`ReplayCache::execute_acked`],
    /// which prunes replies for acknowledged requests so server-side
    /// replay state stays bounded by the in-flight window ("'nearly'
    /// stateless", §3).
    ///
    /// # Errors
    ///
    /// [`RpcExhausted`] if `max_attempts` exchanges were all lost.
    pub fn call_with_ack<F>(
        &mut self,
        net: &mut SimNetwork,
        mut server: F,
    ) -> Result<Vec<u8>, RpcExhausted>
    where
        F: FnMut(RequestId, u64) -> Vec<u8>,
    {
        let req_id = RequestId {
            client: self.client_id,
            seq: self.next_seq,
        };
        self.next_seq += 1;
        self.stats.calls += 1;
        let min_live_seq = req_id.seq;
        for attempt in 1..=self.max_attempts {
            if attempt > 1 {
                // A lost leg means the channel (or server) is struggling:
                // space the retry out instead of hammering.
                self.stats.retries += 1;
                if let Some(cfg) = self.backoff {
                    let delay = cfg.delay_us(attempt - 1, &mut self.rng);
                    net.clock().advance(delay);
                    self.stats.backoff_us += delay;
                }
            }
            // Request leg.
            let copies = match net.transmit() {
                Delivery::Delivered { copies } => copies,
                Delivery::Lost => continue,
            };
            let mut reply = Vec::new();
            for _ in 0..copies {
                reply = server(req_id, min_live_seq);
            }
            // Reply leg.
            match net.transmit_reply() {
                Delivery::Delivered { .. } => return Ok(reply),
                Delivery::Lost => continue,
            }
        }
        Err(RpcExhausted {
            attempts: self.max_attempts,
        })
    }
}

/// Identity of one logical request: client × sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RequestId {
    /// Issuing client.
    pub client: u64,
    /// Per-client sequence number.
    pub seq: u64,
}

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "req:{}:{}", self.client, self.seq)
    }
}

/// Statistics of a replay cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayStats {
    /// Operations actually executed.
    pub executed: u64,
    /// Duplicate requests answered from the cache.
    pub replayed: u64,
    /// High-water mark of recorded replies — the "nearly stateless" claim
    /// is that piggybacked acks keep this bounded by the in-flight window.
    pub peak_entries: u64,
}

/// Server half of the idempotency machinery: "information about all past
/// requests". An operation runs at most once per [`RequestId`]; duplicate
/// arrivals get the recorded reply.
#[derive(Debug, Default)]
pub struct ReplayCache {
    replies: HashMap<RequestId, Vec<u8>>,
    stats: ReplayStats,
}

impl ReplayCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Executes `op` for `req_id` unless a reply is already recorded, in
    /// which case the recorded reply is returned and `op` is not run.
    pub fn execute<F>(&mut self, req_id: RequestId, op: F) -> Vec<u8>
    where
        F: FnOnce() -> Vec<u8>,
    {
        if let Some(hit) = self.replies.get(&req_id) {
            self.stats.replayed += 1;
            return hit.clone();
        }
        self.stats.executed += 1;
        let reply = op();
        self.replies.insert(req_id, reply.clone());
        self.stats.peak_entries = self.stats.peak_entries.max(self.replies.len() as u64);
        reply
    }

    /// [`Self::execute`] preceded by pruning this client's acknowledged
    /// requests: `min_live_seq` is the lowest sequence number the client
    /// still has in flight (piggybacked on the request by
    /// [`RpcClient::call_with_ack`]), so everything older can be forgotten.
    pub fn execute_acked<F>(&mut self, req_id: RequestId, min_live_seq: u64, op: F) -> Vec<u8>
    where
        F: FnOnce() -> Vec<u8>,
    {
        self.prune(req_id.client, min_live_seq);
        self.execute(req_id, op)
    }

    /// Statistics so far.
    pub fn stats(&self) -> ReplayStats {
        self.stats
    }

    /// Number of recorded replies ("nearly stateless": this, plus nothing
    /// else, is what the server remembers about clients).
    pub fn len(&self) -> usize {
        self.replies.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.replies.is_empty()
    }

    /// Forgets requests older than `min_seq` for `client` (the agent tells
    /// the server how far it has advanced, bounding server state).
    pub fn prune(&mut self, client: u64, min_seq: u64) {
        self.replies
            .retain(|id, _| id.client != client || id.seq >= min_seq);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(drop: f64, dup: f64, seed: u64) -> SimNetwork {
        SimNetwork::new(SimClock::new(), NetConfig::lossy(drop, dup, seed))
    }

    #[test]
    fn reliable_network_delivers_once() {
        let mut n = SimNetwork::new(SimClock::new(), NetConfig::reliable());
        for _ in 0..100 {
            assert_eq!(n.transmit(), Delivery::Delivered { copies: 1 });
        }
        assert_eq!(n.stats().lost, 0);
        assert!(n.clock().now_us() > 0);
    }

    #[test]
    fn lossy_network_loses_and_duplicates() {
        let mut n = net(0.3, 0.3, 42);
        for _ in 0..500 {
            n.transmit();
        }
        let s = n.stats();
        assert!(s.lost > 50, "lost {}", s.lost);
        assert!(s.duplicated > 50, "dup {}", s.duplicated);
    }

    #[test]
    fn determinism_per_seed() {
        let mut a = net(0.2, 0.2, 9);
        let mut b = net(0.2, 0.2, 9);
        for _ in 0..100 {
            assert_eq!(a.transmit(), b.transmit());
        }
    }

    #[test]
    fn rpc_executes_exactly_once_under_faults() {
        for seed in 0..20 {
            let mut n = net(0.3, 0.4, seed);
            let mut client = RpcClient::new(7);
            let mut cache = ReplayCache::new();
            let mut counter = 0u64;
            for i in 0..50u64 {
                let reply = client
                    .call(&mut n, |rid| {
                        cache.execute(rid, || {
                            counter += 1;
                            counter.to_le_bytes().to_vec()
                        })
                    })
                    .expect("attempts exhausted");
                assert_eq!(u64::from_le_bytes(reply.try_into().unwrap()), i + 1);
            }
            assert_eq!(counter, 50, "seed {seed}: non-idempotent execution");
            assert!(cache.stats().replayed + cache.stats().executed >= 50);
        }
    }

    #[test]
    fn without_replay_cache_duplicates_corrupt_state() {
        // The baseline of experiment E9: a non-idempotent server.
        let mut n = net(0.3, 0.4, 3);
        let mut client = RpcClient::new(7);
        let mut counter = 0u64;
        for _ in 0..50u64 {
            let _ = client.call(&mut n, |_| {
                counter += 1; // executed once per arriving copy & retry
                counter.to_le_bytes().to_vec()
            });
        }
        assert!(counter > 50, "faults should over-execute the baseline");
    }

    #[test]
    fn exhaustion_reported() {
        let mut n = net(1.0, 0.0, 0); // everything lost
        let mut client = RpcClient::new(1);
        client.max_attempts = 3;
        let err = client.call(&mut n, |_| Vec::new()).unwrap_err();
        assert_eq!(err.attempts, 3);
    }

    #[test]
    fn prune_bounds_server_state() {
        let mut cache = ReplayCache::new();
        for seq in 1..=10 {
            cache.execute(RequestId { client: 1, seq }, Vec::new);
        }
        cache.execute(RequestId { client: 2, seq: 1 }, Vec::new);
        cache.prune(1, 9);
        assert_eq!(cache.len(), 3); // client 1: seqs 9,10; client 2: 1
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;

    fn net(drop: f64, dup: f64, seed: u64) -> SimNetwork {
        SimNetwork::new(SimClock::new(), NetConfig::lossy(drop, dup, seed))
    }

    #[test]
    fn request_id_display() {
        let id = RequestId { client: 3, seq: 9 };
        assert_eq!(id.to_string(), "req:3:9");
    }

    #[test]
    fn transit_time_accumulates_on_the_shared_clock() {
        let clock = SimClock::new();
        let mut n = SimNetwork::new(clock.clone(), NetConfig::reliable());
        for _ in 0..10 {
            n.transmit();
        }
        assert_eq!(n.stats().transit_us, clock.now_us());
        assert!(clock.now_us() >= 10 * 500);
    }

    #[test]
    fn zero_jitter_network_is_constant_latency() {
        let cfg = NetConfig {
            delay_us: 250,
            jitter_us: 0,
            ..NetConfig::reliable()
        };
        let clock = SimClock::new();
        let mut n = SimNetwork::new(clock.clone(), cfg);
        n.transmit();
        assert_eq!(clock.now_us(), 250);
        n.transmit();
        assert_eq!(clock.now_us(), 500);
    }

    #[test]
    fn replay_cache_is_empty_then_not() {
        let mut c = ReplayCache::new();
        assert!(c.is_empty());
        c.execute(RequestId { client: 1, seq: 1 }, || vec![1]);
        assert!(!c.is_empty());
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn retries_back_off_on_the_sim_clock() {
        // Same loss pattern with and without backoff: the backoff client
        // must spend extra virtual time between attempts, and report it.
        let clock_tight = SimClock::new();
        let mut tight_net = SimNetwork::new(clock_tight.clone(), NetConfig::lossy(0.5, 0.0, 11));
        let mut tight = RpcClient::new(4);
        tight.backoff = None;

        let clock_spaced = SimClock::new();
        let mut spaced_net = SimNetwork::new(clock_spaced.clone(), NetConfig::lossy(0.5, 0.0, 11));
        let mut spaced = RpcClient::new(4);
        assert!(spaced.backoff.is_some(), "backoff is the default");

        let mut cache_a = ReplayCache::new();
        let mut cache_b = ReplayCache::new();
        for _ in 0..30 {
            tight
                .call(&mut tight_net, |rid| cache_a.execute(rid, Vec::new))
                .unwrap();
            spaced
                .call(&mut spaced_net, |rid| cache_b.execute(rid, Vec::new))
                .unwrap();
        }
        // Identical seeds → identical transmission fates → same retries.
        assert_eq!(tight.stats().retries, spaced.stats().retries);
        assert!(spaced.stats().retries > 0, "seed 11 must force retries");
        assert_eq!(tight.stats().backoff_us, 0);
        assert!(spaced.stats().backoff_us > 0);
        assert_eq!(
            clock_spaced.now_us(),
            clock_tight.now_us() + spaced.stats().backoff_us,
            "backoff time is charged to the virtual clock"
        );
    }

    #[test]
    fn backoff_delays_grow_exponentially_and_cap() {
        let cfg = BackoffConfig {
            base_us: 100,
            cap_us: 1_000,
        };
        let mut rng = StdRng::seed_from_u64(1);
        let mut prev_nominal = 0;
        for nth in 1..=8u32 {
            let d = cfg.delay_us(nth, &mut rng);
            let nominal = (100u64 << (nth - 1)).min(1_000);
            assert!(d >= nominal / 2 && d <= nominal, "retry {nth}: {d}");
            assert!(nominal >= prev_nominal);
            prev_nominal = nominal;
        }
        // Far past the cap the shift must not overflow.
        assert!(cfg.delay_us(60, &mut rng) <= 1_000);
    }

    #[test]
    fn piggybacked_acks_bound_replay_state() {
        let mut n = net(0.3, 0.3, 5);
        let mut client = RpcClient::new(9);
        client.max_attempts = 64;
        let mut cache = ReplayCache::new();
        let mut counter = 0u64;
        for _ in 0..1_000u64 {
            client
                .call_with_ack(&mut n, |rid, ack| {
                    cache.execute_acked(rid, ack, || {
                        counter += 1;
                        counter.to_le_bytes().to_vec()
                    })
                })
                .expect("attempts exhausted");
            // One synchronous call in flight → at most its own entry
            // survives each prune.
            assert!(cache.len() <= 1, "cache grew to {}", cache.len());
        }
        assert_eq!(counter, 1_000, "still exactly-once under pruning");
        assert!(cache.stats().peak_entries <= 1);
        assert!(cache.stats().replayed > 0, "seed 5 must duplicate");
    }

    #[test]
    fn one_way_lossy_lane_drops_only_replies() {
        // reply_drop_prob = 1.0, drop_prob = 0.0: every request arrives
        // and executes, every reply is lost. The call exhausts its
        // attempts, but the replay cache holds exactly one entry — each
        // retry replays the same logical request id.
        let mut n = SimNetwork::new(SimClock::new(), NetConfig::reply_lossy(1.0, 11));
        let mut client = RpcClient::new(3);
        client.max_attempts = 8;
        let mut cache = ReplayCache::new();
        let mut executed = 0u32;
        let err = client
            .call_with_ack(&mut n, |rid, ack| {
                cache.execute_acked(rid, ack, || {
                    executed += 1;
                    vec![7]
                })
            })
            .unwrap_err();
        assert_eq!(err.attempts, 8);
        assert_eq!(executed, 1, "retries of one call replay, not re-execute");
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().replayed, 7);
        // Symmetric configs are untouched: reply_lossy drops no requests.
        assert_eq!(n.stats().lost, 8, "only the 8 reply legs were lost");
    }

    #[test]
    fn duplicate_arrivals_within_one_call_are_suppressed() {
        // duplicate_prob = 1.0: every delivery arrives twice; the replay
        // cache must still execute once per logical call.
        let mut n = SimNetwork::new(SimClock::new(), NetConfig::lossy(0.0, 1.0, 4));
        let mut client = RpcClient::new(2);
        let mut cache = ReplayCache::new();
        let mut count = 0u32;
        for _ in 0..20 {
            client
                .call(&mut n, |rid| {
                    cache.execute(rid, || {
                        count += 1;
                        vec![]
                    })
                })
                .unwrap();
        }
        assert_eq!(count, 20);
        assert_eq!(cache.stats().replayed, 20, "each duplicate replayed");
    }
}
