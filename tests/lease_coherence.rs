//! Property suite for the lease-based client cache coherence tentpole
//! (PR 7): random multi-agent read/write scripts run twice — once with
//! [`LeaseConfig::Auto`] (delegations, recalls, fencing) and once with
//! the leaseless [`LeaseConfig::Never`] ablation (every read an RPC,
//! every write write-through) — and the two byte histories must agree:
//!
//! 1. with a **reliable** recall lane, scripts may leave delegated
//!    writes buffered dirty at the client: every recall hand-off must
//!    surrender them, so reads and final server images stay
//!    byte-identical to the ablation;
//! 2. with a **lossy, duplicating** recall lane, recalls fail and
//!    holders get fenced: as long as the script flushes each write in
//!    place (no dirty window across other agents' operations), fencing
//!    must only ever cost re-acquisition — never a stale byte;
//! 3. a server crash + recovery wipes the grant table: every client's
//!    `reattach_leases` must reconstruct its grants inside the reattach
//!    window, keep hot re-reads at zero RPCs, and leave recall-on-
//!    conflict working against the reconstructed state;
//! 4. an unresponsive write-delegation holder is fenced by waiting out
//!    its term: the surrendered-nothing bytes stay invisible, and the
//!    holder's eventual stale write-back is rejected
//!    ([`FileServiceError::LeaseFenced`]), its buffered data dropped.
//!
//! The fast subset runs in the normal test job; the full sweeps are
//! `#[ignore]`d and driven with `--ignored` under a pinned
//! `PROPTEST_BASE_SEED` matrix ({1, 7, 42}) in CI's bench-smoke step.

use parking_lot::Mutex;
use proptest::prelude::*;
use rhodos_agent::{AgentError, FileAgent, LeaseConfig, ServerHandle};
use rhodos_disk_service::BLOCK_SIZE;
use rhodos_file_service::{FileService, FileServiceConfig, FileServiceError};
use rhodos_naming::{AttributedName, NamingService};
use rhodos_net::{NetConfig, SimNetwork};
use rhodos_simdisk::{DiskGeometry, LatencyModel, SimClock};
use rhodos_txn::{TransactionService, TxnConfig};
use std::sync::Arc;

const AGENTS: usize = 3;
const FILES: usize = 2;
const FILE_BLOCKS: usize = 3;

/// One scripted operation. `write: None` is a read; `flush` pushes the
/// write in place (the write-through-equivalent shape loss tolerates).
#[derive(Debug, Clone, Copy)]
struct Step {
    agent: usize,
    file: usize,
    off: usize,
    len: usize,
    write: Option<u8>,
    flush: bool,
}

fn steps(max: usize, always_flush: bool) -> impl Strategy<Value = Vec<Step>> {
    proptest::collection::vec(
        (
            0..AGENTS,
            0..FILES,
            0..FILE_BLOCKS * BLOCK_SIZE - 1,
            1..=2 * BLOCK_SIZE,
            any::<u8>(),
            0u8..4,
        )
            .prop_map(move |(agent, file, off, len, byte, kind)| Step {
                agent,
                file,
                off,
                len,
                // kind 0–1: read; 2: buffered write; 3: write + flush.
                write: (kind >= 2).then_some(byte),
                flush: always_flush || kind == 3,
            }),
        1..max,
    )
}

/// A cluster of `AGENTS` agents on one server: agent 0 creates and seeds
/// `FILES` files of `FILE_BLOCKS` blocks, the rest open them by fid.
fn cluster(
    lease: LeaseConfig,
    station_net: NetConfig,
) -> (Vec<FileAgent>, Vec<Vec<u64>>, ServerHandle) {
    let clock = SimClock::new();
    let fs = FileService::single_disk(
        DiskGeometry::medium(),
        LatencyModel::instant(),
        clock.clone(),
        FileServiceConfig::default(),
    )
    .unwrap();
    let server: ServerHandle = Arc::new(Mutex::new(
        TransactionService::new(fs, TxnConfig::default()).unwrap(),
    ));
    let naming = Arc::new(Mutex::new(NamingService::new()));
    let mut agents: Vec<FileAgent> = (0..AGENTS)
        .map(|m| {
            FileAgent::with_lease_config(
                m as u32,
                vec![server.clone()],
                naming.clone(),
                SimNetwork::new(clock.clone(), NetConfig::reliable()),
                FILES * FILE_BLOCKS + 4,
                lease,
                station_net,
            )
        })
        .collect();
    let mut ods = vec![Vec::new(); AGENTS];
    let mut fids = Vec::new();
    for f in 0..FILES {
        let name = AttributedName::parse(&format!("name=lc-{f}")).unwrap();
        let fid = agents[0].create(&name).unwrap();
        let od = agents[0].open_fid(fid).unwrap();
        agents[0]
            .pwrite(od, 0, &vec![0xA5u8; FILE_BLOCKS * BLOCK_SIZE])
            .unwrap();
        agents[0].flush(od).unwrap();
        ods[0].push(od);
        fids.push(fid);
    }
    for (a, agent) in agents.iter_mut().enumerate().skip(1) {
        for &fid in &fids {
            ods[a].push(agent.open_fid(fid).unwrap());
        }
    }
    (agents, ods, server)
}

/// Every read's bytes, plus the final server-side image of each file.
type ByteHistory = (Vec<Vec<u8>>, Vec<Vec<u8>>);

/// Runs `script` on a fresh cluster; returns every read's bytes plus the
/// final server-side image of each file (after flushing all agents).
fn run_script(
    script: &[Step],
    lease: LeaseConfig,
    station_net: NetConfig,
) -> Result<ByteHistory, AgentError> {
    let (mut agents, ods, server) = cluster(lease, station_net);
    let mut reads = Vec::new();
    for s in script {
        let od = ods[s.agent][s.file];
        match s.write {
            None => reads.push(agents[s.agent].pread(od, s.off as u64, s.len)?),
            Some(b) => {
                agents[s.agent].pwrite(od, s.off as u64, &vec![b; s.len])?;
                if s.flush {
                    agents[s.agent].flush(od)?;
                }
            }
        }
    }
    for (a, agent_ods) in ods.iter().enumerate() {
        for &od in agent_ods {
            agents[a].flush(od)?;
        }
    }
    let mut images = Vec::new();
    let mut srv = server.lock();
    let fs = srv.file_service_mut();
    for &od in &ods[0] {
        let fid = agents[0].fid_of(od).unwrap();
        let size = fs.get_attribute(fid).unwrap().size as usize;
        images.push(fs.read(fid, 0, size).unwrap());
    }
    Ok((reads, images))
}

fn identical_histories(
    script: &[Step],
    station_net: NetConfig,
) -> Result<(), proptest::test_runner::TestCaseError> {
    let (auto_reads, auto_images) =
        run_script(script, LeaseConfig::Auto, station_net).expect("auto arm");
    let (never_reads, never_images) =
        run_script(script, LeaseConfig::Never, NetConfig::reliable()).expect("never arm");
    prop_assert_eq!(
        auto_reads,
        never_reads,
        "a leased read returned stale bytes"
    );
    prop_assert_eq!(
        auto_images,
        never_images,
        "final server images diverged from the write-through ablation"
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Reliable recall lane, delegated writes left dirty across other
    /// agents' operations: every hand-off goes through a recall and the
    /// byte history must match the leaseless ablation exactly.
    #[test]
    fn delegated_dirty_writes_stay_coherent(script in steps(16, false)) {
        identical_histories(&script, NetConfig::reliable())?;
    }

    /// Lossy + duplicating recall lane: recalls get dropped (holders are
    /// fenced, leases expire, clients re-acquire) and recall deliveries
    /// get duplicated (acks must be idempotent) — still no stale byte as
    /// long as writes flush in place.
    #[test]
    fn lossy_recalls_fence_but_never_leak_stale_bytes(
        script in steps(16, true),
        seed in any::<u64>(),
    ) {
        identical_histories(&script, NetConfig::lossy(0.3, 0.3, seed))?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Full sweep of the reliable-lane property. Run with `--ignored`
    /// under the pinned `PROPTEST_BASE_SEED` matrix in CI.
    #[test]
    #[ignore = "full lease-coherence sweep; CI runs it with --ignored"]
    fn delegated_dirty_writes_stay_coherent_full(script in steps(48, false)) {
        identical_histories(&script, NetConfig::reliable())?;
    }

    /// Full sweep of the lossy-lane property.
    #[test]
    #[ignore = "full lease-coherence sweep; CI runs it with --ignored"]
    fn lossy_recalls_fence_but_never_leak_stale_bytes_full(
        script in steps(48, true),
        seed in any::<u64>(),
    ) {
        identical_histories(&script, NetConfig::lossy(0.3, 0.3, seed))?;
    }
}

// ---------------------------------------------------- crash + reattach --

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// A server crash wipes the grant table; every client's reattach must
    /// reconstruct exactly the grants it held (one per distinct file it
    /// touched), keep its cache hot (zero-RPC re-reads of the same
    /// bytes), and leave recall-on-conflict working against the
    /// reconstructed grant set.
    #[test]
    fn crash_reattach_reconstructs_the_grant_set(
        touches in proptest::collection::vec((0..AGENTS, 0..FILES), 1..12),
    ) {
        let (mut agents, ods, server) = cluster(LeaseConfig::Auto, NetConfig::reliable());
        // Populate: reads only. Agent 0 still holds the write delegations
        // it took while seeding, so the first foreign read of a file
        // recalls that delegation — the authoritative per-agent grant
        // count is the agent's own live-lease tally, not the touch list.
        let mut touched = vec![std::collections::BTreeSet::new(); AGENTS];
        for &(a, f) in &touches {
            let _ = agents[a].pread(ods[a][f], 0, BLOCK_SIZE).unwrap();
            touched[a].insert(f);
        }
        let held: Vec<usize> = agents.iter().map(FileAgent::held_leases).collect();
        for (a, agent) in agents.iter().enumerate().skip(1) {
            // Read leases are shared: nothing recalls a reader, so every
            // non-seeding agent holds exactly one grant per touched file.
            prop_assert_eq!(agent.held_leases(), touched[a].len());
        }
        {
            let mut srv = server.lock();
            let fs = srv.file_service_mut();
            fs.simulate_crash();
            fs.recover().unwrap();
            // The crash dropped server-side open state; reopen every fid.
            for &od in &ods[0] {
                fs.open(agents[0].fid_of(od).unwrap()).unwrap();
            }
        }
        for (a, agent) in agents.iter_mut().enumerate() {
            prop_assert_eq!(
                agent.reattach_leases().unwrap(),
                held[a],
                "reattach must reconstruct every live grant"
            );
        }
        // Hot re-reads stay zero-RPC and serve the seeded bytes — but only
        // where the lease survived: agent 0's leftover *write* delegations
        // get recalled by the first foreign read, so only the foreign
        // readers' shared read leases are guaranteed to still stand.
        for &(a, f) in &touches {
            if a == 0 {
                continue;
            }
            let before = agents[a].stats().round_trips;
            let data = agents[a].pread(ods[a][f], 0, BLOCK_SIZE).unwrap();
            prop_assert_eq!(&data, &vec![0xA5u8; BLOCK_SIZE]);
            prop_assert_eq!(agents[a].stats().round_trips, before);
        }
        // The reconstructed grant set still drives recalls: a conflicting
        // write recalls the read holders and is visible everywhere.
        let recalls_before: u64 = agents.iter().map(|a| a.stats().recalls).sum();
        let foreign_readers = (1..AGENTS).filter(|a| touched[*a].contains(&0)).count();
        agents[0].pwrite(ods[0][0], 0, b"post-crash write").unwrap();
        agents[0].flush(ods[0][0]).unwrap();
        for a in 0..AGENTS {
            prop_assert_eq!(agents[a].pread(ods[a][0], 0, 16).unwrap(), b"post-crash write");
        }
        let recalls_after: u64 = agents.iter().map(|a| a.stats().recalls).sum();
        if foreign_readers > 0 {
            prop_assert!(
                recalls_after > recalls_before,
                "a conflicting write must recall the reconstructed read grants"
            );
        }
    }
}

// -------------------------------------------------- fencing the silent --

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// An unresponsive write-delegation holder gets fenced by waiting out
    /// its term: its buffered bytes stay invisible, the new owner's bytes
    /// win, and the fenced holder's late write-back is rejected with its
    /// dirty data dropped.
    #[test]
    fn fenced_holder_cannot_push_stale_delegated_writes(
        f in 0..FILES,
        off in 0..(FILE_BLOCKS - 1) * BLOCK_SIZE,
        len in 1..=BLOCK_SIZE,
        doomed in any::<u8>(),
    ) {
        prop_assume!(doomed != 0xA5 && doomed != 0x42);
        let (mut agents, ods, _server) = cluster(LeaseConfig::Auto, NetConfig::reliable());
        agents[1].pwrite(ods[1][f], off as u64, &vec![doomed; len]).unwrap();
        agents[1].set_responsive(false);
        // Agent 2's conflicting read waits out the recall timeout plus
        // agent 1's term, then proceeds without the surrendered bytes.
        let read = agents[2].pread(ods[2][f], off as u64, len).unwrap();
        prop_assert_eq!(&read, &vec![0xA5u8; len], "fenced bytes must stay invisible");
        agents[2].pwrite(ods[2][f], off as u64, &vec![0x42u8; len]).unwrap();
        agents[2].flush(ods[2][f]).unwrap();
        // The fenced holder comes back: its stale write-back is rejected.
        agents[1].set_responsive(true);
        prop_assert!(matches!(
            agents[1].flush(ods[1][f]),
            Err(AgentError::File(FileServiceError::LeaseFenced(_)))
        ));
        prop_assert_eq!(
            agents[1].pread(ods[1][f], off as u64, len).unwrap(),
            vec![0x42u8; len],
            "the fenced holder re-reads the new owner's bytes"
        );
    }
}

// ------------------------------------------------------------ hot path --

/// The tentpole's headline: once a read lease covers a file, re-reading
/// it touches no network at all (acceptance criterion "leases-on re-read
/// of a hot file is 0 RPCs").
#[test]
fn hot_reread_is_zero_rpc_under_a_live_lease() {
    let (mut agents, ods, _server) = cluster(LeaseConfig::Auto, NetConfig::reliable());
    let _ = agents[1]
        .pread(ods[1][0], 0, FILE_BLOCKS * BLOCK_SIZE)
        .unwrap();
    let trips = agents[1].stats().round_trips;
    let sent = agents[1].net_stats().sent;
    for _ in 0..20 {
        let data = agents[1]
            .pread(ods[1][0], 0, FILE_BLOCKS * BLOCK_SIZE)
            .unwrap();
        assert_eq!(data, vec![0xA5u8; FILE_BLOCKS * BLOCK_SIZE]);
    }
    assert_eq!(agents[1].stats().round_trips, trips, "zero round trips");
    assert_eq!(agents[1].net_stats().sent, sent, "zero packets");
    assert!(agents[1].stats().rpcs_avoided_by_lease >= 20);
}

// --------------------------------------------- reattach/regrant fencing --

/// Pinned regression for the PR 8 reattach audit: after a crash, stale
/// claims from the previous epoch arrive in arbitrary order, and a write
/// reattach whose grant stamp post-dates several already-reattached read
/// claims must fence *all* of them. The original `LeaseManager::reattach`
/// stopped at the first rival it found, so a second reattached reader
/// survived alongside the freshly accepted exclusive write — two live
/// holders where single-writer was promised.
#[test]
fn write_reattach_cannot_coexist_with_any_prior_regrant() {
    use rhodos_file_service::{LeaseManager, LeaseMode, LeaseParams};

    let clock = SimClock::new();
    let mut m = LeaseManager::new(clock.clone(), LeaseParams::default());
    let f = rhodos_file_service::FileId(1);
    // Old-epoch history: clients 2 and 3 share a read lease; client 1
    // later recalls them and takes the write — but the fence messages
    // race the crash, so all three clients still believe they hold live
    // grants and will re-present them.
    let r2 = m
        .try_acquire(clock.now_us(), 2, f, LeaseMode::Read)
        .unwrap();
    let r3 = m
        .try_acquire(clock.now_us(), 3, f, LeaseMode::Read)
        .unwrap();
    clock.advance(10);
    for c in m
        .try_acquire(clock.now_us(), 1, f, LeaseMode::Write)
        .unwrap_err()
    {
        m.fence(f, c.client, c.seq);
    }
    let w = m
        .try_acquire(clock.now_us(), 1, f, LeaseMode::Write)
        .unwrap();
    m.server_crashed(clock.now_us());
    // The stale read claims land first and are (provisionally) regranted
    // in the new epoch.
    let g2 = m
        .reattach(clock.now_us(), &r2.token, r2.mode, r2.stamp)
        .expect("read regrant");
    let g3 = m
        .reattach(clock.now_us(), &r3.token, r3.mode, r3.stamp)
        .expect("read regrant");
    // The write claim carries the latest HLC stamp: it must win, and it
    // must fence BOTH regranted readers, not just the first.
    let winner = m
        .reattach(clock.now_us(), &w.token, w.mode, w.stamp)
        .expect("latest-stamped write claim wins the reattach race");
    assert_eq!(winner.mode, LeaseMode::Write);
    let live = m.grant_set();
    assert_eq!(
        live.len(),
        1,
        "exactly one live holder after a write reattach: {live:?}"
    );
    assert_eq!(live[0].1, 1, "the write claimant is the survivor");
    // And the regranted reader tokens are dead: their next validate
    // fails, forcing a clean re-acquire instead of serving stale bytes.
    assert!(!m.validate(&g2.token, clock.now_us(), false));
    assert!(!m.validate(&g3.token, clock.now_us(), false));
}
