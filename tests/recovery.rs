//! Cross-crate recovery integration: crashes at randomized points in a
//! transactional workload, media failures under replication, and the
//! idempotent-RPC machinery driving real file operations (experiment E9's
//! correctness side).

use proptest::prelude::*;
use rhodos_file_service::{FileId, FileService, FileServiceConfig, LockLevel, ServiceType};
use rhodos_net::{NetConfig, ReplayCache, RpcClient, SimNetwork};
use rhodos_replication::{ReplicatedFiles, ReplicationConfig};
use rhodos_simdisk::{DiskGeometry, LatencyModel, SimClock};
use rhodos_txn::{TransactionService, TxnConfig};

fn service() -> TransactionService {
    let fs = FileService::single_disk(
        DiskGeometry::medium(),
        LatencyModel::instant(),
        SimClock::new(),
        FileServiceConfig::default(),
    )
    .unwrap();
    TransactionService::new(fs, TxnConfig::default()).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Crash after a random number of committed transactions: recovery
    /// always yields exactly the committed prefix.
    #[test]
    fn committed_prefix_survives_random_crash_points(
        crash_after in 0usize..12,
        level in 0u8..3,
    ) {
        let level = match level {
            0 => LockLevel::Record,
            1 => LockLevel::Page,
            _ => LockLevel::File,
        };
        let mut ts = service();
        let fid = ts.tcreate(level).unwrap();
        let total = 12usize;
        for i in 0..total {
            let t = ts.tbegin();
            ts.topen(t, fid).unwrap();
            ts.twrite(t, fid, (i * 8) as u64, &(i as u64).to_le_bytes()).unwrap();
            ts.tend(t).unwrap();
            if i + 1 == crash_after {
                ts.file_service_mut().simulate_crash();
                ts.recover().unwrap();
            }
        }
        // One more crash at the end.
        ts.file_service_mut().simulate_crash();
        ts.recover().unwrap();
        let t = ts.tbegin();
        ts.topen(t, fid).unwrap();
        for i in 0..total {
            let raw = ts.tread(t, fid, (i * 8) as u64, 8).unwrap();
            prop_assert_eq!(u64::from_le_bytes(raw.try_into().unwrap()), i as u64);
        }
        ts.tend(t).unwrap();
    }
}

#[test]
fn replicated_store_survives_one_media_failure_per_round() {
    let clock = SimClock::new();
    let mk = || {
        FileService::single_disk(
            DiskGeometry::medium(),
            LatencyModel::instant(),
            clock.clone(),
            FileServiceConfig::default(),
        )
        .unwrap()
    };
    let mut rf = ReplicatedFiles::new(vec![mk(), mk(), mk()], ReplicationConfig::default());
    let fid = rf.create(ServiceType::Basic).unwrap();
    rf.open(fid).unwrap();
    for round in 0..3usize {
        let payload = format!("round {round} payload");
        rf.write(fid, 0, payload.as_bytes()).unwrap();
        for i in 0..3 {
            rf.replica_mut(i).flush_all().unwrap();
        }
        // Kill one replica's data copy each round.
        let victim = round % 3;
        let descs = rf.replica_mut(victim).block_descriptors(fid).unwrap();
        for d in descs {
            rf.replica_mut(victim)
                .disk_mut(d.disk as usize)
                .disk_mut()
                .corrupt_sector(d.addr)
                .unwrap();
        }
        rf.replica_mut(victim).simulate_crash();
        rf.replica_mut(victim).recover().unwrap();
        rf.replica_mut(victim).open(fid).unwrap();
        // Reads still succeed via failover (enough reads that the
        // round-robin is guaranteed to try the damaged replica).
        for _ in 0..4 {
            assert_eq!(rf.read(fid, 0, payload.len()).unwrap(), payload.as_bytes());
        }
        // Repair and rejoin.
        rf.resync(victim).unwrap();
        assert_eq!(rf.live_replicas(), 3);
    }
    assert!(rf.stats().failovers >= 1);
    assert_eq!(rf.stats().resyncs, 3);
}

#[test]
fn idempotent_rpc_drives_exactly_once_file_appends() {
    // E9's correctness half: duplicated/lost messages around real file
    // operations leave the file exactly as if each append ran once.
    for seed in [1u64, 7, 42] {
        let clock = SimClock::new();
        let mut fs = FileService::single_disk(
            DiskGeometry::medium(),
            LatencyModel::instant(),
            clock.clone(),
            FileServiceConfig::default(),
        )
        .unwrap();
        let fid = fs.create(ServiceType::Basic).unwrap();
        fs.open(fid).unwrap();
        let mut net = SimNetwork::new(clock, NetConfig::lossy(0.25, 0.35, seed));
        let mut client = RpcClient::new(9);
        let mut replay = ReplayCache::new();
        for i in 0..40u8 {
            let fs_ref = &mut fs;
            let offset = i as u64;
            let reply = client
                .call(&mut net, |rid| {
                    replay.execute(rid, || {
                        // The operation body runs at most once per request.
                        fs_ref.write(fid, offset, &[i]).unwrap();
                        vec![1]
                    })
                })
                .expect("rpc exhausted");
            assert_eq!(reply, vec![1]);
        }
        let data = fs.read(fid, 0, 40).unwrap();
        let want: Vec<u8> = (0..40u8).collect();
        assert_eq!(data, want, "seed {seed}: duplicates corrupted the file");
        assert_eq!(fs.get_attribute(fid).unwrap().size, 40);
        assert!(
            net.stats().lost + net.stats().duplicated > 0,
            "faults occurred"
        );
    }
}

#[test]
fn torn_log_tail_never_redoes_a_partial_commit() {
    // Crash the disk mid-way through writing the commit record: the torn
    // record must be treated as "never committed".
    let mut ts = service();
    let fid = ts.tcreate(LockLevel::Page).unwrap();
    let t0 = ts.tbegin();
    ts.topen(t0, fid).unwrap();
    ts.twrite(t0, fid, 0, b"stable base").unwrap();
    ts.tend(t0).unwrap();
    // Arrange a crash after 1 more sector write on disk 0 — the next
    // commit record write will tear.
    ts.file_service_mut()
        .disk_mut(0)
        .disk_mut()
        .faults_mut()
        .crash_after_sector_writes(1);
    let t1 = ts.tbegin();
    ts.topen(t1, fid).unwrap();
    let r = ts
        .twrite(t1, fid, 0, b"torn commit")
        .and_then(|_| ts.tend(t1));
    assert!(r.is_err(), "the injected crash must surface");
    ts.file_service_mut().simulate_crash();
    ts.recover().unwrap();
    let t2 = ts.tbegin();
    ts.topen(t2, fid).unwrap();
    let back = ts.tread(t2, fid, 0, 11).unwrap();
    ts.tend(t2).unwrap();
    assert_eq!(
        back, b"stable base",
        "a torn commit record must roll back, not replay garbage"
    );
}

#[test]
fn stable_storage_protects_the_fit_against_media_failure() {
    // "A copy of the file index table is always available in stable
    // storage" — destroy the primary FIT fragment and recover.
    let mut fs = FileService::single_disk(
        DiskGeometry::medium(),
        LatencyModel::instant(),
        SimClock::new(),
        FileServiceConfig::default(),
    )
    .unwrap();
    let fid = fs.create(ServiceType::Basic).unwrap();
    fs.open(fid).unwrap();
    fs.write(fid, 0, b"metadata matters").unwrap();
    fs.flush_all().unwrap();
    fs.close(fid).unwrap();
    // Find and corrupt the FIT fragment (it precedes the first data block).
    let descs = fs.block_descriptors(fid).unwrap();
    let fit_frag = descs[0].addr - 1;
    fs.disk_mut(0).disk_mut().corrupt_sector(fit_frag).unwrap();
    fs.simulate_crash();
    fs.recover().unwrap();
    fs.open(fid).unwrap();
    assert_eq!(fs.read(fid, 0, 16).unwrap(), b"metadata matters");
    let _ = FileId(0);
}
