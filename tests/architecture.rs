//! Experiment E2 (Figure 1): the layered architecture is wired end to end
//! and caching exists — and is observable — at every level: the client
//! agent, the file service, and the disk service.

use rhodos::prelude::*;
use rhodos_naming::AttributedName;

#[test]
fn all_layers_cooperate_with_caching_at_each_level() {
    let mut cluster = Cluster::builder().machines(1).build().unwrap();
    let name = AttributedName::parse("name=arch,type=probe").unwrap();

    // Through the whole stack: naming → file agent → file service → disk.
    cluster
        .machine_mut(0)
        .file_agent_mut()
        .create(&name)
        .unwrap();
    let od = cluster.machine_mut(0).file_agent_mut().open(&name).unwrap();
    let blob = vec![0x5Au8; 64 * 1024];
    cluster
        .machine_mut(0)
        .file_agent_mut()
        .write(od, &blob)
        .unwrap();
    cluster.machine_mut(0).file_agent_mut().flush(od).unwrap();

    // Re-read several times: the agent cache should absorb repeats.
    for _ in 0..5 {
        let back = cluster
            .machine_mut(0)
            .file_agent_mut()
            .pread(od, 0, blob.len())
            .unwrap();
        assert_eq!(back, blob);
    }
    let agent_stats = cluster.machine_mut(0).file_agent_mut().stats();
    assert!(agent_stats.cache.hits > 0, "level 1: agent cache used");

    // The file service cache below it: read server-side (bypassing the
    // agent cache) so the block pool is exercised.
    let server = cluster.server();
    let mut guard = server.lock();
    let fid = {
        let fs = guard.file_service_mut();
        let fid = fs.file_ids().into_iter().last().unwrap();
        fs.open(fid).unwrap();
        for _ in 0..3 {
            let _ = fs.read(fid, 0, blob.len()).unwrap();
        }
        fs.close(fid).unwrap();
        fid
    };
    let fs_stats = guard.file_service_mut().stats();
    assert!(
        fs_stats.cache.hits + fs_stats.cache.misses > 0,
        "level 2: file service block pool used"
    );
    // The disk service track cache at the bottom: cold-start the server so
    // reads actually descend to the disk layer.
    {
        let fs = guard.file_service_mut();
        fs.flush_all().unwrap();
        fs.simulate_crash();
        fs.recover().unwrap();
        fs.open(fid).unwrap();
        let _ = fs.read(fid, 0, blob.len()).unwrap();
        fs.close(fid).unwrap();
    }
    let fs_stats = guard.file_service_mut().stats();
    let disk_cache = fs_stats.disks[0].cache;
    assert!(
        disk_cache.fragment_hits + disk_cache.fragment_misses > 0,
        "level 3: disk track cache used"
    );
    drop(guard);

    // The server crash invalidated open handles ("user processes and
    // servers must be able to recover easily from computer crashes"): the
    // agent's stale descriptor is now refused rather than misbehaving.
    assert!(cluster.machine_mut(0).file_agent_mut().close(od).is_err());
}

#[test]
fn descriptor_spaces_follow_the_hundred_thousand_split() {
    let mut cluster = Cluster::builder().machines(1).build().unwrap();
    let name = AttributedName::parse("name=odsplit").unwrap();
    cluster
        .machine_mut(0)
        .file_agent_mut()
        .create(&name)
        .unwrap();
    let file_od = cluster.machine_mut(0).file_agent_mut().open(&name).unwrap();
    assert!(file_od > 100_000, "file agent descriptors above 100000");

    let m = cluster.machine_mut(0);
    let dev = m
        .device_agent_mut()
        .register(rhodos_agent::Device::new("tty9"));
    let dev_od = m.device_agent_mut().open(dev).unwrap();
    assert!(dev_od < 100_000, "device agent descriptors below 100000");

    // Standard stream redirection values.
    let pid = m.processes_mut().spawn();
    m.processes_mut().redirect(pid, true, true, true).unwrap();
    let p = m.processes_mut().get(pid).unwrap().clone();
    assert_eq!((p.stdout, p.stdin, p.stderr), (100_001, 100_002, 100_003));
}

#[test]
fn naming_service_resolves_and_caches() {
    let mut cluster = Cluster::builder().machines(2).build().unwrap();
    let full = AttributedName::parse("name=db,owner=ops,version=3").unwrap();
    cluster
        .machine_mut(0)
        .file_agent_mut()
        .create(&full)
        .unwrap();
    // Resolve by two different attribute subsets from another machine.
    for q in ["name=db", "owner=ops,version=3"] {
        let query = AttributedName::parse(q).unwrap();
        let od = cluster
            .machine_mut(1)
            .file_agent_mut()
            .open(&query)
            .unwrap();
        cluster.machine_mut(1).file_agent_mut().close(od).unwrap();
    }
    let stats = cluster.naming().lock().stats();
    assert_eq!(stats.registered, 1);
    assert!(stats.cache_misses >= 2);
}

#[test]
fn basic_and_transactional_semantics_coexist_per_file() {
    // "At any moment a file can be used either as a basic file ... or as a
    // transaction file" — the same facility serves both, through different
    // interfaces.
    let mut cluster = Cluster::builder().machines(1).build().unwrap();
    // Transactional file.
    let t = cluster.machine_mut(0).tbegin();
    let tfid = {
        let agent = cluster.machine_mut(0).txn_agent_mut().unwrap();
        let tfid = agent.tcreate(rhodos_file_service::LockLevel::File).unwrap();
        let tod = agent.topen(t, tfid).unwrap();
        agent.twrite(tod, b"transactional").unwrap();
        tfid
    };
    cluster.machine_mut(0).tend(t).unwrap();
    // Basic file, same facility.
    let bname = AttributedName::parse("name=plain").unwrap();
    cluster
        .machine_mut(0)
        .file_agent_mut()
        .create(&bname)
        .unwrap();
    let od = cluster
        .machine_mut(0)
        .file_agent_mut()
        .open(&bname)
        .unwrap();
    cluster
        .machine_mut(0)
        .file_agent_mut()
        .write(od, b"basic")
        .unwrap();
    cluster.machine_mut(0).file_agent_mut().close(od).unwrap();
    // Both readable; service types recorded in the FITs.
    let server = cluster.server();
    let mut guard = server.lock();
    let fs = guard.file_service_mut();
    let t_attrs = fs.get_attribute(tfid).unwrap();
    assert_eq!(
        t_attrs.service_type,
        rhodos_file_service::ServiceType::Transaction
    );
    assert_eq!(t_attrs.lock_level, rhodos_file_service::LockLevel::File);
}
