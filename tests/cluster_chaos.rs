//! Chaos sweep for the sharded-cluster tentpole: heartbeat-driven
//! death and rejoin of flapping data servers, deletes racing death,
//! migrations under partial connectivity, and one-way-lossy channels,
//! with three invariants checked throughout —
//!
//! 1. the placement map never double-places: every cluster file
//!    resolves to a unique `(server, local fid)` binding;
//! 2. a rejoining server synchronises to the current placement epoch
//!    and its orphaned local copies are garbage-collected — a flapping
//!    server can neither serve a stale epoch nor leak placements;
//! 3. every data server's at-most-once replay cache stays bounded by
//!    the in-flight window (one synchronous client per channel) even
//!    when *only replies* are lost — the adversarial lane for replay
//!    state, because every request executes and every ack is at risk.
//!
//! The fast subsets run in the normal test job; the full sweeps are
//! `#[ignore]`d and driven with `--ignored` (pinned `PROPTEST_BASE_SEED`
//! matrix) in the CI bench-smoke step.

use proptest::prelude::*;
use rhodos_cluster::{Cluster, ClusterConfig, ClusterError};
use rhodos_net::NetConfig;
use std::collections::{HashMap, HashSet};

/// Every mapped cluster file must resolve to a distinct `(server, fid)`
/// binding — the "no double-placed files" invariant.
fn assert_no_double_placement(c: &Cluster, gids: &[u64]) {
    let dir = c.directory();
    let dir = dir.lock();
    let mut seen = HashSet::new();
    let mut mapped = 0;
    for &gid in gids {
        if let Some(binding) = dir.resolve(gid) {
            mapped += 1;
            assert!(
                seen.insert(binding),
                "gid {gid} shares binding {binding:?} with another file"
            );
        }
    }
    assert_eq!(dir.len(), mapped, "directory holds unknown placements");
    let per_server: usize = (0..c.server_count()).map(|i| c.files_on(i)).sum();
    assert_eq!(per_server, mapped, "master map and directory disagree");
}

/// Deterministic bytes for one generation of one file.
fn payload(gid: u64, generation: u64) -> Vec<u8> {
    let len = 64 + (gid as usize % 3) * 32;
    (0..len)
        .map(|i| (gid.wrapping_mul(31) ^ generation.wrapping_mul(7) ^ i as u64) as u8)
        .collect()
}

/// The acceptance scenario from the issue: a data server flaps
/// (dead, then rejoins) while the namespace keeps moving — no file may
/// end up double-placed, no stale placement epoch may survive the
/// rejoin, and the orphan queue must drain.
#[test]
fn dead_then_rejoin_server_leaves_no_double_placement_and_no_stale_epoch() {
    let mut c = Cluster::new(3, ClusterConfig::default());
    let mut gids: Vec<u64> = Vec::new();
    for _ in 0..6 {
        let gid = c.create().unwrap();
        c.open(gid).unwrap();
        c.write(gid, 0, &payload(gid, 0)).unwrap();
        gids.push(gid);
    }
    let victim = gids
        .iter()
        .copied()
        .find(|&g| c.placement_of(g).unwrap().0 == 1)
        .expect("round-robin placement homes files on server 1");

    // Sever the link; enough missed heartbeats mark the server dead.
    c.set_link(1, false);
    for _ in 0..3 {
        c.heartbeat_pulse();
    }
    assert!(!c.is_alive(1), "miss limit must declare the server dead");
    assert!(matches!(
        c.read(victim, 0, 4),
        Err(ClusterError::ServerUnavailable(1))
    ));

    // The namespace keeps moving while the server is dead: creates land
    // on live servers only; deleting a dead-homed file removes the
    // mapping now and queues the unreachable local copy for GC.
    let fresh = c.create().unwrap();
    assert_ne!(c.placement_of(fresh).unwrap().0, 1);
    gids.push(fresh);
    c.delete(victim).unwrap();
    assert!(c.placement_of(victim).is_none());
    assert_eq!(c.pending_gc(), 1, "dead-homed delete must queue GC");
    gids.retain(|&g| g != victim);

    // Heal the link: the next heartbeat rejoins the server, syncs its
    // placement epoch, and collects the orphan.
    c.set_link(1, true);
    c.heartbeat_pulse();
    assert!(c.is_alive(1));
    assert_eq!(
        c.node_epoch(1),
        c.epoch(),
        "rejoin must synchronise the placement epoch"
    );
    assert_eq!(c.pending_gc(), 0, "orphan GC must drain on rejoin");
    assert!(c.stats().orphans_collected >= 1);
    assert_eq!(c.stats().deaths, 1);
    assert_eq!(c.stats().rejoins, 1);

    assert_no_double_placement(&c, &gids);
    for &gid in &gids {
        if gid == fresh {
            continue;
        }
        let want = payload(gid, 0);
        assert_eq!(
            c.read(gid, 0, want.len()).unwrap(),
            want,
            "surviving file {gid} lost bytes across the flap"
        );
    }
}

/// One scripted flap-chaos case: random creates/writes/reads/deletes/
/// migrations interleaved with link cuts, link heals and heartbeat
/// rounds; a content model tracks every acknowledged write. After the
/// script the cluster is healed and must converge: epochs synced,
/// orphans collected, placements bijective, every byte intact.
fn flap_case(script: &[(u8, u8, u16)], seed: u64) -> Result<(), TestCaseError> {
    const SERVERS: usize = 3;
    let mut c = Cluster::new(SERVERS, ClusterConfig::default());
    let mut model: HashMap<u64, Vec<u8>> = HashMap::new();
    let mut generation = seed;
    for &(action, srv, pick) in script {
        generation = generation.wrapping_add(1);
        let srv = srv as usize % SERVERS;
        let chosen = |m: &HashMap<u64, Vec<u8>>| -> Option<u64> {
            if m.is_empty() {
                None
            } else {
                let mut keys: Vec<u64> = m.keys().copied().collect();
                keys.sort_unstable();
                Some(keys[pick as usize % keys.len()])
            }
        };
        match action % 8 {
            0 => {
                if let Ok(gid) = c.create() {
                    if c.open(gid).is_ok() && c.write(gid, 0, &payload(gid, generation)).is_ok() {
                        model.insert(gid, payload(gid, generation));
                    } else {
                        // Unreachable mid-setup: forget it; GC owns the rest.
                        let _ = c.delete(gid);
                    }
                }
            }
            1 => {
                if let Some(gid) = chosen(&model) {
                    if c.write(gid, 0, &payload(gid, generation)).is_ok() {
                        model.insert(gid, payload(gid, generation));
                    }
                }
            }
            2 => {
                if let Some(gid) = chosen(&model) {
                    let want = &model[&gid];
                    if let Ok(got) = c.read(gid, 0, want.len()) {
                        prop_assert_eq!(&got, want, "read of {} diverged from model", gid);
                    }
                }
            }
            3 => {
                if let Some(gid) = chosen(&model) {
                    if c.delete(gid).is_ok() {
                        model.remove(&gid);
                    }
                }
            }
            4 => c.set_link(srv, false),
            5 => c.set_link(srv, true),
            6 => c.heartbeat_pulse(),
            _ => {
                if let Some(gid) = chosen(&model) {
                    // Migration may fail under chaos (dead source or
                    // target); it must never corrupt — checked after.
                    let _ = c.migrate(gid, srv);
                }
            }
        }
        let gids: Vec<u64> = model.keys().copied().collect();
        assert_no_double_placement(&c, &gids);
    }

    // Heal and converge.
    for i in 0..SERVERS {
        c.set_link(i, true);
    }
    for _ in 0..4 {
        c.heartbeat_pulse();
    }
    prop_assert_eq!(c.pending_gc(), 0, "orphan queue must drain once healed");
    for i in 0..SERVERS {
        prop_assert!(c.is_alive(i));
        prop_assert_eq!(
            c.node_epoch(i),
            c.epoch(),
            "server {} still holds a stale placement epoch",
            i
        );
    }
    let gids: Vec<u64> = model.keys().copied().collect();
    assert_no_double_placement(&c, &gids);
    for (gid, want) in &model {
        let got = c
            .read(*gid, 0, want.len())
            .map_err(|e| TestCaseError::fail(format!("healed read of {gid} failed: {e:?}")))?;
        prop_assert_eq!(&got, want, "file {} lost bytes across the chaos", gid);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Fast flap-chaos subset for the normal test job.
    #[test]
    fn chaos_flapping_servers_never_double_place_or_lose_bytes(
        script in proptest::collection::vec((0u8..16, 0u8..3, 0u16..64), 8..24),
        seed: u64,
    ) {
        flap_case(&script, seed)?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Full sweep: longer scripts. Run with `--ignored` under a pinned
    /// `PROPTEST_BASE_SEED` matrix in CI's bench-smoke step.
    #[test]
    #[ignore = "full cluster chaos sweep; CI runs it with --ignored"]
    fn chaos_flap_full_sweep(
        script in proptest::collection::vec((0u8..16, 0u8..3, 0u16..64), 24..64),
        seed: u64,
    ) {
        flap_case(&script, seed)?;
    }
}

/// One-way-lossy boundedness case: every request crosses, a fraction of
/// replies (and acks) is lost. Requests therefore always execute and the
/// replay cache absorbs every retry — the worst case for replay state.
/// The synchronous master pipelines one request per channel, so no
/// server may ever hold more than one cached reply.
fn reply_lossy_case(reply_drop_pm: u16, ops: usize, seed: u64) -> Result<(), TestCaseError> {
    const SERVERS: usize = 3;
    let mut c = Cluster::new(
        SERVERS,
        ClusterConfig {
            data_net: NetConfig::reply_lossy(f64::from(reply_drop_pm) / 1000.0, seed),
            ..ClusterConfig::default()
        },
    );
    c.set_max_attempts(64);
    let mut gids = Vec::new();
    for _ in 0..SERVERS {
        let gid = c
            .create()
            .map_err(|e| TestCaseError::fail(format!("create under reply loss failed: {e:?}")))?;
        c.open(gid)
            .map_err(|e| TestCaseError::fail(format!("open under reply loss failed: {e:?}")))?;
        gids.push(gid);
    }
    for i in 0..ops {
        let gid = gids[i % gids.len()];
        let r = match i % 3 {
            0 => c.write(gid, (i as u64 % 16) * 8, &(i as u64).to_le_bytes()),
            1 => c.read(gid, 0, 8).map(|_| ()),
            _ => c.get_attr(gid).map(|_| ()),
        };
        r.map_err(|e| TestCaseError::fail(format!("op {i} failed: {e:?}")))?;
        for s in 0..SERVERS {
            prop_assert!(
                c.replay_entries(s) <= 1,
                "op {}: server {} holds {} cached replies",
                i,
                s,
                c.replay_entries(s)
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Fast one-way-lossy boundedness subset.
    #[test]
    fn replay_caches_stay_bounded_when_only_replies_are_lost(
        reply_drop_pm in 0u16..700,
        seed: u64,
    ) {
        reply_lossy_case(reply_drop_pm, 60, seed)?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Full sweep: harsher loss, longer runs. Run with `--ignored` under
    /// the pinned `PROPTEST_BASE_SEED` matrix.
    #[test]
    #[ignore = "full one-way-lossy sweep; CI runs it with --ignored"]
    fn replay_bounded_reply_loss_full_sweep(
        reply_drop_pm in 0u16..850,
        seed: u64,
    ) {
        reply_lossy_case(reply_drop_pm, 300, seed)?;
    }
}
