//! Property-based tests for the self-healing pipeline: random file
//! operations with injected latent media faults (bad sectors and silent
//! corruption caught by the checksum lane), crashes, and
//! allocation-metadata drift, then background scrubbing and
//! `fsck_repair`, asserting —
//!
//! 1. corrupted bytes are NEVER served: a read either matches the model
//!    of committed data or reports an error;
//! 2. every fault with a redundant copy (block pool, stable mirror, or a
//!    peer replica) is repaired and the data converges byte-identical to
//!    the model;
//! 3. faults with no surviving copy are reported as unrecoverable, never
//!    silently dropped;
//! 4. the on-disk structures converge fsck-clean, with leaked and
//!    double-allocated extents repaired.
//!
//! The fast subsets run in the normal test job; the full sweeps are
//! `#[ignore]`d and driven with `--ignored` (pinned `PROPTEST_BASE_SEED`
//! matrix) in the CI bench-smoke step.

use proptest::prelude::*;
use rhodos_disk_service::BLOCK_SIZE;
use rhodos_file_service::{
    FileService, FileServiceConfig, Redundancy, ScrubOwner, ServiceType, WritePolicy,
};
use rhodos_replication::{ReplicatedFiles, ReplicationConfig};
use rhodos_simdisk::{DiskGeometry, LatencyModel, SimClock};

// ---------------------------------------------------------- single service --

#[derive(Debug, Clone)]
enum Op {
    Write {
        offset: u16,
        data: Vec<u8>,
    },
    Read {
        offset: u16,
        len: u16,
    },
    Flush,
    /// Scrub-then-crash-then-recover: the background scrubber runs before
    /// the crash (while the block pool still holds every redundant copy),
    /// so every latent fault injected since the last crash is healable.
    CrashRecover,
    /// Silent corruption of an allocated sector (stale checksum).
    InjectSilent {
        pick: u16,
    },
    /// A sector that went bad after it was written.
    InjectBad {
        pick: u16,
    },
    /// Bitmap allocation behind the file service's back (a leak).
    LeakExtent {
        len: u8,
    },
    /// A budgeted background-scrub tick.
    ScrubTick {
        budget: u8,
    },
}

fn ops(max: usize) -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            4 => (0u16..16_000, proptest::collection::vec(any::<u8>(), 1..300))
                .prop_map(|(offset, data)| Op::Write { offset, data }),
            3 => (0u16..16_000, 0u16..400).prop_map(|(offset, len)| Op::Read { offset, len }),
            1 => Just(Op::Flush),
            1 => Just(Op::CrashRecover),
            2 => (0u16..u16::MAX).prop_map(|pick| Op::InjectSilent { pick }),
            2 => (0u16..u16::MAX).prop_map(|pick| Op::InjectBad { pick }),
            1 => (1u8..4).prop_map(|len| Op::LeakExtent { len }),
            2 => (1u8..32).prop_map(|budget| Op::ScrubTick { budget }),
        ],
        1..max,
    )
}

/// Picks a corruptible allocated sector: a data-block fragment, or (one
/// pick in eight) the file's first FIT fragment.
fn fault_addr(fs: &mut FileService, fid: rhodos_file_service::FileId, pick: u16) -> Option<u64> {
    let descs = fs.block_descriptors(fid).ok()?;
    if descs.is_empty() {
        return None;
    }
    if pick % 8 == 7 {
        Some(descs[0].addr - 1) // the FIT fragment preceding block 0
    } else {
        Some(descs[pick as usize % descs.len()].addr)
    }
}

/// Single-service injection: a fault is only "healable" while a redundant
/// copy exists, so this targets blocks the model covers and warms the
/// block pool (a one-byte read) before corrupting the platter — the FIT
/// option needs no warming, its redundant copy is the stable mirror. The
/// warm read itself may trip over an earlier latent fault sharing the
/// track (the checksum lane erroring rather than serving garbage); the
/// injection is then skipped. `outstanding` counts injected-but-not-yet-
/// scrubbed faults (a superset: overwrites may cure some).
fn inject_healable(
    fs: &mut FileService,
    fid: rhodos_file_service::FileId,
    pick: u16,
    model_len: usize,
    silent: bool,
    outstanding: &mut u32,
) -> Result<(), TestCaseError> {
    fs.flush_all().unwrap();
    let Ok(descs) = fs.block_descriptors(fid) else {
        return Ok(());
    };
    if descs.is_empty() {
        return Ok(());
    }
    let addr = if pick % 8 == 7 {
        descs[0].addr - 1
    } else {
        let covered = model_len.div_ceil(BLOCK_SIZE).min(descs.len());
        if covered == 0 {
            return Ok(());
        }
        let b = pick as usize % covered;
        if fs.read(fid, (b * BLOCK_SIZE) as u64, 1).is_err() {
            prop_assert!(*outstanding > 0, "read failed with no latent fault");
            return Ok(());
        }
        descs[b].addr
    };
    let disk = fs.disk_mut(0).disk_mut();
    if silent {
        disk.silently_corrupt_sector(addr).unwrap();
    } else {
        disk.corrupt_sector(addr).unwrap();
    }
    *outstanding += 1;
    Ok(())
}

fn single_service_case(ops: Vec<Op>) -> Result<(), TestCaseError> {
    let mut fs = FileService::single_disk(
        DiskGeometry::medium(),
        LatencyModel::instant(),
        SimClock::new(),
        FileServiceConfig::default(),
    )
    .unwrap();
    let fid = fs.create(ServiceType::Basic).unwrap();
    fs.open(fid).unwrap();
    let mut model: Vec<u8> = Vec::new();
    let mut outstanding = 0u32;

    for op in ops {
        match op {
            Op::Write { offset, data } => {
                let offset = offset as usize;
                // A partial-block write may need to read the block in
                // first, and that read may trip over a latent fault on
                // the same track: an error, never silent corruption, and
                // the file is left unmodified.
                match fs.write(fid, offset as u64, &data) {
                    Ok(()) => {
                        if model.len() < offset + data.len() {
                            model.resize(offset + data.len(), 0);
                        }
                        model[offset..offset + data.len()].copy_from_slice(&data);
                    }
                    Err(_) => {
                        prop_assert!(outstanding > 0, "write failed with no latent fault")
                    }
                }
            }
            Op::Read { offset, len } => {
                let offset = offset as usize;
                let len = len as usize;
                if offset <= model.len() {
                    // Never garbage: a read either matches the model or
                    // the checksum lane turns latent corruption into an
                    // error.
                    match fs.read(fid, offset as u64, len) {
                        Ok(got) => {
                            let want = &model[offset..(offset + len).min(model.len())];
                            prop_assert_eq!(got, want.to_vec());
                        }
                        Err(_) => {
                            prop_assert!(outstanding > 0, "read failed with no latent fault")
                        }
                    }
                }
            }
            Op::Flush => fs.flush_all().unwrap(),
            Op::CrashRecover => {
                fs.flush_all().unwrap();
                // Every fault injected so far still has its redundant
                // copy resident (warmed at injection, and the pool
                // survives flushes), so the pre-crash scrub must heal
                // all of them.
                let r = fs.scrub(None).unwrap();
                prop_assert_eq!(
                    r.stats.unrecoverable,
                    0,
                    "redundant copy existed for every fault"
                );
                outstanding = 0;
                fs.simulate_crash();
                fs.recover().unwrap();
                fs.open(fid).unwrap();
                if !model.is_empty() {
                    let got = fs.read(fid, 0, model.len()).unwrap();
                    prop_assert_eq!(&got, &model);
                }
            }
            Op::InjectSilent { pick } => {
                inject_healable(&mut fs, fid, pick, model.len(), true, &mut outstanding)?
            }
            Op::InjectBad { pick } => {
                inject_healable(&mut fs, fid, pick, model.len(), false, &mut outstanding)?
            }
            Op::LeakExtent { len } => {
                let _ = fs.disk_mut(0).allocate_contiguous(u64::from(len));
            }
            Op::ScrubTick { budget } => {
                let r = fs.scrub(Some(u64::from(budget))).unwrap();
                prop_assert_eq!(r.stats.unrecoverable, 0, "pool copy was resident");
                if r.complete {
                    outstanding = 0;
                }
            }
        }
    }

    // Convergence: scrub heals the platters, fsck_repair reconciles the
    // allocation metadata (including a double-allocation hazard injected
    // here), and the file reads back byte-identical — even cold.
    fs.flush_all().unwrap();
    let r = fs.scrub(None).unwrap();
    prop_assert_eq!(r.stats.unrecoverable, 0);
    prop_assert!(fs.scrub(None).unwrap().is_clean());

    let descs = fs.block_descriptors(fid).unwrap();
    if descs.len() >= 2 {
        fs.disk_mut(0).free(descs[1].block_extent()).unwrap();
    }
    let repair = fs.fsck_repair().unwrap();
    prop_assert!(repair.after.is_clean(), "fsck: {:?}", repair.after.issues);

    if !model.is_empty() {
        prop_assert_eq!(&fs.read(fid, 0, model.len()).unwrap(), &model);
    }

    // A genuinely unrecoverable fault: uncached silent corruption. It
    // must be *reported* (with its owner), then a peer-style
    // `rewrite_block` heals it and the bytes converge again.
    if descs.len() >= 2 {
        fs.evict_caches().unwrap();
        fs.disk_mut(0)
            .disk_mut()
            .silently_corrupt_sector(descs[1].addr)
            .unwrap();
        let r = fs.scrub(None).unwrap();
        prop_assert_eq!(r.unrecoverable().count(), 1, "loss must be reported");
        let finding = *r.unrecoverable().next().unwrap();
        prop_assert!(
            matches!(finding.owner, ScrubOwner::Data { fid: f, block: 1 } if f == fid),
            "owner: {}",
            finding.owner
        );
        let mut block1 = vec![0u8; BLOCK_SIZE];
        let have = model.len().min(2 * BLOCK_SIZE).saturating_sub(BLOCK_SIZE);
        block1[..have].copy_from_slice(&model[BLOCK_SIZE..BLOCK_SIZE + have]);
        fs.rewrite_block(fid, 1, &block1).unwrap();
        prop_assert!(fs.scrub(None).unwrap().is_clean());
    }

    fs.evict_caches().unwrap();
    if !model.is_empty() {
        prop_assert_eq!(&fs.read(fid, 0, model.len()).unwrap(), &model);
    }
    prop_assert!(fs.fsck().unwrap().is_clean());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Fast subset for the normal test job.
    #[test]
    fn faults_with_redundancy_always_heal(ops in ops(24)) {
        single_service_case(ops)?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Full sweep: longer scripts. Run with `--ignored` under a pinned
    /// `PROPTEST_BASE_SEED` matrix in CI's bench-smoke step.
    #[test]
    #[ignore = "full self-healing sweep; CI runs it with --ignored"]
    fn faults_with_redundancy_always_heal_full(ops in ops(64)) {
        single_service_case(ops)?;
    }
}

// ------------------------------------------------------- replicated pair --

#[derive(Debug, Clone)]
struct Round {
    writes: Vec<(u16, Vec<u8>)>,
    victim: u8,
    faults: Vec<u16>,
    evict: bool,
}

fn rounds(max: usize) -> impl Strategy<Value = Vec<Round>> {
    proptest::collection::vec(
        (
            proptest::collection::vec(
                (0u16..16_000, proptest::collection::vec(any::<u8>(), 1..200)),
                1..5,
            ),
            any::<u8>(),
            proptest::collection::vec(0u16..u16::MAX, 0..4),
            any::<bool>(),
        )
            .prop_map(|(writes, victim, faults, evict)| Round {
                writes,
                victim,
                faults,
                evict,
            }),
        1..max,
    )
}

fn replica(clock: &SimClock) -> FileService {
    FileService::single_disk(
        DiskGeometry::medium(),
        LatencyModel::instant(),
        clock.clone(),
        FileServiceConfig {
            write_policy: WritePolicy::WriteThrough,
            ..FileServiceConfig::default()
        },
    )
    .unwrap()
}

/// Faults strike one replica per round and the cluster scrub runs before
/// the next round, so the peer always holds a good copy: zero data loss,
/// byte-identical convergence, fsck-clean replicas.
fn replicated_case(rounds: Vec<Round>) -> Result<(), TestCaseError> {
    let clock = SimClock::new();
    let replicas = (0..2).map(|_| replica(&clock)).collect();
    let mut rf = ReplicatedFiles::new(replicas, ReplicationConfig::default());
    let fid = rf.create(ServiceType::Basic).unwrap();
    rf.open(fid).unwrap();
    let mut model: Vec<u8> = Vec::new();

    for round in rounds {
        for (offset, data) in &round.writes {
            let offset = *offset as usize;
            rf.write(fid, offset as u64, data).unwrap();
            if model.len() < offset + data.len() {
                model.resize(offset + data.len(), 0);
            }
            model[offset..offset + data.len()].copy_from_slice(data);
        }
        for i in 0..rf.replica_count() {
            rf.replica_mut(i).flush_all().unwrap();
        }

        let v = round.victim as usize % rf.replica_count();
        for pick in &round.faults {
            if let Some(addr) = fault_addr(rf.replica_mut(v), fid, *pick) {
                rf.replica_mut(v)
                    .disk_mut(0)
                    .disk_mut()
                    .silently_corrupt_sector(addr)
                    .unwrap();
            }
        }
        if round.evict {
            rf.replica_mut(v).evict_caches().unwrap();
        }

        let report = rf.scrub(None).unwrap();
        prop_assert_eq!(
            report.still_unrecoverable,
            0,
            "the peer held a good copy of every faulted sector"
        );

        if !model.is_empty() {
            prop_assert_eq!(&rf.read(fid, 0, model.len()).unwrap(), &model);
        }
    }

    // Convergence: both replicas clean and byte-identical to the model,
    // even reading cold from the platters.
    prop_assert!(rf.scrub(None).unwrap().is_clean());
    for i in 0..rf.replica_count() {
        rf.replica_mut(i).evict_caches().unwrap();
        if !model.is_empty() {
            let got = rf.replica_mut(i).read(fid, 0, model.len()).unwrap();
            prop_assert_eq!(&got, &model, "replica {} diverged", i);
        }
        let report = rf.replica_mut(i).fsck().unwrap();
        prop_assert!(report.is_clean(), "replica {}: {:?}", i, report.issues);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Fast subset for the normal test job.
    #[test]
    fn replicated_scrub_loses_nothing_while_a_peer_survives(rounds in rounds(5)) {
        replicated_case(rounds)?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Full sweep. Run with `--ignored` under a pinned
    /// `PROPTEST_BASE_SEED` matrix in CI's bench-smoke step.
    #[test]
    #[ignore = "full self-healing sweep; CI runs it with --ignored"]
    fn replicated_scrub_loses_nothing_while_a_peer_survives_full(rounds in rounds(12)) {
        replicated_case(rounds)?;
    }
}

// --------------------------------------------------------- parity group --

/// One erasure-coded chaos script: writes land on a k+m parity group
/// AND a 2-way mirror ablation, up to `m` whole disks are lost, and a
/// budgeted online rebuild runs under foreground traffic — optionally
/// with a *second* disk loss striking mid-rebuild (RAID-6 only, still
/// within the parity budget). At every step the parity group must read
/// back byte-identical to the mirror.
#[derive(Debug, Clone)]
struct ParityScript {
    m: usize,
    writes: Vec<(u32, Vec<u8>)>,
    lose: Vec<u8>,
    mid_writes: Vec<(u32, Vec<u8>)>,
    budget: u8,
    second_loss: u8,
    chaos: bool,
}

fn parity_scripts() -> impl Strategy<Value = ParityScript> {
    (
        1usize..=2,
        proptest::collection::vec(
            (0u32..80_000, proptest::collection::vec(any::<u8>(), 1..400)),
            1..6,
        ),
        proptest::collection::vec(any::<u8>(), 1..=2),
        proptest::collection::vec(
            (0u32..80_000, proptest::collection::vec(any::<u8>(), 1..300)),
            0..3,
        ),
        1u8..16,
        (any::<u8>(), any::<bool>()),
    )
        .prop_map(
            |(m, writes, mut lose, mid_writes, budget, (second_loss, chaos))| {
                lose.truncate(m);
                ParityScript {
                    m,
                    writes,
                    lose,
                    mid_writes,
                    budget,
                    second_loss,
                    chaos,
                }
            },
        )
}

fn parity_case(s: ParityScript) -> Result<(), TestCaseError> {
    const K: usize = 4;
    let ndisks = K + s.m + 1;
    let mut fs = FileService::striped(
        ndisks,
        DiskGeometry::medium(),
        LatencyModel::instant(),
        SimClock::new(),
        FileServiceConfig {
            redundancy: Redundancy::Parity { k: K, m: s.m },
            ..FileServiceConfig::default()
        },
    )
    .unwrap();
    let clock = SimClock::new();
    let replicas = (0..2).map(|_| replica(&clock)).collect();
    let mut rf = ReplicatedFiles::new(replicas, ReplicationConfig::default());
    let pfid = fs.create(ServiceType::Basic).unwrap();
    fs.open(pfid).unwrap();
    let mfid = rf.create(ServiceType::Basic).unwrap();
    rf.open(mfid).unwrap();

    let mut len = 0usize;
    for (offset, data) in &s.writes {
        let offset = *offset as u64;
        fs.write(pfid, offset, data).unwrap();
        rf.write(mfid, offset, data).unwrap();
        len = len.max(offset as usize + data.len());
    }
    fs.flush_all().unwrap();
    for i in 0..rf.replica_count() {
        rf.replica_mut(i).flush_all().unwrap();
    }

    // Lose up to m whole disks (duplicates in the picks collapse).
    let mut failed: Vec<usize> = Vec::new();
    for pick in &s.lose {
        let d = *pick as usize % ndisks;
        if !failed.contains(&d) {
            fs.fail_disk(d).unwrap();
            failed.push(d);
        }
    }

    // Degraded reads reconstruct transparently: byte-identical to the
    // surviving mirror, never an error, while losses stay within m.
    if len > 0 {
        prop_assert_eq!(
            fs.read(pfid, 0, len).unwrap(),
            rf.read(mfid, 0, len).unwrap(),
            "degraded read diverged from the mirror"
        );
    }

    // Foreground writes keep landing while the group is degraded.
    for (offset, data) in &s.mid_writes {
        let offset = *offset as u64;
        fs.write(pfid, offset, data).unwrap();
        rf.write(mfid, offset, data).unwrap();
        len = len.max(offset as usize + data.len());
    }
    fs.flush_all().unwrap();
    for i in 0..rf.replica_count() {
        rf.replica_mut(i).flush_all().unwrap();
    }

    // Budgeted online rebuild under load; for RAID-6 with one disk down
    // a second loss may strike mid-rebuild and must still be absorbed.
    let mut second_pending = s.chaos && s.m == 2 && failed.len() == 1;
    let mut ticks = 0u32;
    loop {
        let r = fs.rebuild(Some(u64::from(s.budget))).unwrap();
        ticks += 1;
        if second_pending && !r.complete {
            second_pending = false;
            let mut d = s.second_loss as usize % ndisks;
            while fs.degraded_disks()[d] {
                d = (d + 1) % ndisks;
            }
            fs.fail_disk(d).unwrap();
        }
        if len > 0 {
            prop_assert_eq!(
                fs.read(pfid, 0, len).unwrap(),
                rf.read(mfid, 0, len).unwrap(),
                "foreground read diverged during rebuild"
            );
        }
        if r.complete {
            break;
        }
        prop_assert!(ticks < 100_000, "rebuild failed to converge");
    }
    prop_assert!(fs.degraded_disks().iter().all(|d| !d));

    // Post-rebuild: cold reads off the rebuilt spare(s) match the
    // mirror, and the allocation metadata is fsck-clean.
    fs.evict_caches().unwrap();
    if len > 0 {
        prop_assert_eq!(
            fs.read(pfid, 0, len).unwrap(),
            rf.read(mfid, 0, len).unwrap(),
            "post-rebuild read diverged from the mirror"
        );
    }
    let report = fs.fsck().unwrap();
    prop_assert!(report.is_clean(), "fsck: {:?}", report.issues);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Fast subset for the normal test job.
    #[test]
    fn parity_group_matches_mirror_through_loss_and_rebuild(s in parity_scripts()) {
        parity_case(s)?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Full sweep. Run with `--ignored` under a pinned
    /// `PROPTEST_BASE_SEED` matrix in CI's bench-smoke step.
    #[test]
    #[ignore = "full self-healing sweep; CI runs it with --ignored"]
    fn parity_group_matches_mirror_through_loss_and_rebuild_full(s in parity_scripts()) {
        parity_case(s)?;
    }
}
