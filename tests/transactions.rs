//! Cross-crate transaction integration: serializability under random
//! interleavings, granularity behaviour, and timeout liveness.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rhodos_file_service::{FileService, FileServiceConfig, LockLevel};
use rhodos_simdisk::{DiskGeometry, LatencyModel, SimClock};
use rhodos_txn::{TransactionService, TxnConfig, TxnError, TxnId};

fn service(level_cfg: TxnConfig) -> TransactionService {
    let fs = FileService::single_disk(
        DiskGeometry::medium(),
        LatencyModel::instant(),
        SimClock::new(),
        FileServiceConfig::default(),
    )
    .unwrap();
    TransactionService::new(fs, level_cfg).unwrap()
}

/// Runs `n_txns` increment transactions over one shared counter with a
/// random interleaving; 2PL must make the outcome equal to the serial one.
fn run_counter_workload(level: LockLevel, seed: u64, n_txns: usize) -> u64 {
    let mut ts = service(TxnConfig {
        lt_us: 10_000,
        max_renewals: 1,
        cross_granularity: false,
        ..Default::default()
    });
    let fid = ts.tcreate(level).unwrap();
    // Seed the counter.
    let t = ts.tbegin();
    ts.topen(t, fid).unwrap();
    ts.twrite(t, fid, 0, &0u64.to_le_bytes()).unwrap();
    ts.tend(t).unwrap();

    let mut rng = StdRng::seed_from_u64(seed);
    let mut committed = 0u64;
    let mut pending: Vec<(TxnId, Option<u64>)> = Vec::new(); // (txn, read value)
    let mut started = 0usize;
    let clock = ts.file_service_mut().clock();
    while committed < n_txns as u64 {
        // Randomly either start a transaction, advance one, or tick.
        let choice = rng.gen_range(0..10);
        if choice < 4 && started < n_txns && pending.len() < 4 {
            let t = ts.tbegin();
            ts.topen(t, fid).unwrap();
            pending.push((t, None));
            started += 1;
        } else if !pending.is_empty() {
            let i = rng.gen_range(0..pending.len());
            let (t, read) = pending[i];
            let step: Result<(), TxnError> = (|| {
                match read {
                    None => {
                        let raw = ts.tread_for_update(t, fid, 0, 8)?;
                        pending[i].1 = Some(u64::from_le_bytes(raw.try_into().unwrap()));
                    }
                    Some(v) => {
                        ts.twrite(t, fid, 0, &(v + 1).to_le_bytes())?;
                        ts.tend(t)?;
                        pending.remove(i);
                        committed += 1;
                    }
                }
                Ok(())
            })();
            match step {
                Ok(()) => {}
                Err(TxnError::WouldBlock { .. }) => {
                    // Stay queued; advance virtual time so timeouts can
                    // eventually fire if we deadlocked.
                    clock.advance(1_000);
                    let aborted = ts.tick();
                    // Restart any of our aborted transactions.
                    pending.retain(|(t, _)| !aborted.contains(t));
                }
                Err(TxnError::NotActive(_)) | Err(TxnError::Aborted(_)) => {
                    pending.remove(i);
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        } else {
            clock.advance(1_000);
            let aborted = ts.tick();
            pending.retain(|(t, _)| !aborted.contains(t));
        }
        // Any aborted-but-started work must be restarted to reach the
        // target count.
        if pending.is_empty() && started >= n_txns && committed < n_txns as u64 {
            started -= 1; // allow another start
        }
    }
    // Read the final value.
    let t = ts.tbegin();
    ts.topen(t, fid).unwrap();
    let raw = ts.tread(t, fid, 0, 8).unwrap();
    ts.tend(t).unwrap();
    u64::from_le_bytes(raw.try_into().unwrap())
}

#[test]
fn interleaved_increments_serialize_page_level() {
    for seed in 0..5 {
        let v = run_counter_workload(LockLevel::Page, seed, 12);
        assert_eq!(v, 12, "seed {seed}: lost update under page locking");
    }
}

#[test]
fn interleaved_increments_serialize_record_level() {
    for seed in 0..5 {
        let v = run_counter_workload(LockLevel::Record, seed, 12);
        assert_eq!(v, 12, "seed {seed}: lost update under record locking");
    }
}

#[test]
fn interleaved_increments_serialize_file_level() {
    for seed in 0..3 {
        let v = run_counter_workload(LockLevel::File, seed, 10);
        assert_eq!(v, 10, "seed {seed}: lost update under file locking");
    }
}

#[test]
fn record_level_allows_disjoint_concurrency_where_file_level_blocks() {
    // The paper's granularity claim in one test: two transactions touching
    // different records proceed under record locking and collide under
    // file locking.
    for (level, expect_conflict) in [(LockLevel::Record, false), (LockLevel::File, true)] {
        let mut ts = service(TxnConfig::default());
        let fid = ts.tcreate(level).unwrap();
        let t0 = ts.tbegin();
        ts.topen(t0, fid).unwrap();
        ts.twrite(t0, fid, 0, &[0u8; 64]).unwrap();
        ts.tend(t0).unwrap();
        let t1 = ts.tbegin();
        let t2 = ts.tbegin();
        ts.topen(t1, fid).unwrap();
        ts.topen(t2, fid).unwrap();
        ts.twrite(t1, fid, 0, b"left").unwrap();
        let r = ts.twrite(t2, fid, 32, b"right");
        if expect_conflict {
            assert!(matches!(r, Err(TxnError::WouldBlock { .. })), "{level:?}");
        } else {
            r.unwrap_or_else(|e| panic!("{level:?} should not conflict: {e}"));
        }
        ts.tabort(t1).unwrap();
        ts.tabort(t2).unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random interleavings never lose increments (serializability), at
    /// any locking granularity.
    #[test]
    fn no_lost_updates_under_random_interleavings(seed in 0u64..1000, level in 0u8..3) {
        let level = match level {
            0 => LockLevel::Record,
            1 => LockLevel::Page,
            _ => LockLevel::File,
        };
        let v = run_counter_workload(level, seed, 8);
        prop_assert_eq!(v, 8);
    }
}

#[test]
fn timeout_guarantees_liveness_under_heavy_conflict() {
    // Many transactions fight over one page; with timeouts, the system
    // always makes progress (no permanent blocking).
    let mut ts = service(TxnConfig {
        lt_us: 5_000,
        max_renewals: 0,
        cross_granularity: false,
        ..Default::default()
    });
    let fid = ts.tcreate(LockLevel::Page).unwrap();
    let t0 = ts.tbegin();
    ts.topen(t0, fid).unwrap();
    ts.twrite(t0, fid, 0, &[1u8; 8]).unwrap();
    ts.tend(t0).unwrap();
    let clock = ts.file_service_mut().clock();
    let mut committed = 0;
    let mut attempts = 0;
    while committed < 20 && attempts < 500 {
        attempts += 1;
        let t = ts.tbegin();
        ts.topen(t, fid).unwrap();
        match ts.twrite(t, fid, 0, &[2u8; 8]) {
            Ok(()) => {
                ts.tend(t).unwrap();
                committed += 1;
            }
            Err(TxnError::WouldBlock { .. }) => {
                clock.advance(6_000);
                ts.tick();
                let _ = ts.tabort(t);
            }
            Err(e) => panic!("{e}"),
        }
    }
    assert_eq!(committed, 20, "system must stay live ({attempts} attempts)");
}

// ---- nested transactions (extension; see DESIGN.md §5b) -----------------

#[derive(Debug, Clone)]
enum NestedOp {
    Write {
        offset: u16,
        byte: u8,
        len: u8,
    },
    ChildWrite {
        offset: u16,
        byte: u8,
        len: u8,
        commit: bool,
    },
}

fn nested_ops() -> impl Strategy<Value = Vec<NestedOp>> {
    proptest::collection::vec(
        prop_oneof![
            (0u16..2000, any::<u8>(), 1u8..64).prop_map(|(offset, byte, len)| NestedOp::Write {
                offset,
                byte,
                len
            }),
            (0u16..2000, any::<u8>(), 1u8..64, any::<bool>()).prop_map(
                |(offset, byte, len, commit)| NestedOp::ChildWrite {
                    offset,
                    byte,
                    len,
                    commit
                }
            ),
        ],
        1..24,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// A parent transaction interleaved with nested children behaves, after
    /// top-level commit, exactly like the equivalent flat sequence where
    /// committed children's writes happen inline and aborted children's
    /// writes never happen.
    #[test]
    fn nested_equals_flat_model(ops in nested_ops(), level in 0u8..2) {
        let level = if level == 0 { LockLevel::Page } else { LockLevel::Record };
        let mut ts = service(TxnConfig::default());
        let fid = ts.tcreate(level).unwrap();
        let parent = ts.tbegin();
        ts.topen(parent, fid).unwrap();
        let mut model: Vec<u8> = Vec::new();
        let apply_model = |offset: u16, byte: u8, len: u8, model: &mut Vec<u8>| {
            let (o, l) = (offset as usize, len as usize);
            if model.len() < o + l {
                model.resize(o + l, 0);
            }
            model[o..o + l].fill(byte);
        };
        for op in ops {
            match op {
                NestedOp::Write { offset, byte, len } => {
                    ts.twrite(parent, fid, offset as u64, &vec![byte; len as usize]).unwrap();
                    apply_model(offset, byte, len, &mut model);
                }
                NestedOp::ChildWrite { offset, byte, len, commit } => {
                    let child = ts.tbegin_nested(parent).unwrap();
                    ts.twrite(child, fid, offset as u64, &vec![byte; len as usize]).unwrap();
                    if commit {
                        ts.tend(child).unwrap();
                        apply_model(offset, byte, len, &mut model);
                    } else {
                        ts.tabort(child).unwrap();
                    }
                }
            }
            // The parent's view always matches the model mid-flight.
            if !model.is_empty() {
                let got = ts.tread(parent, fid, 0, model.len()).unwrap();
                prop_assert_eq!(&got, &model);
            }
        }
        ts.tend(parent).unwrap();
        // Durable state matches the flat model.
        let t = ts.tbegin();
        ts.topen(t, fid).unwrap();
        if !model.is_empty() {
            let got = ts.tread(t, fid, 0, model.len()).unwrap();
            prop_assert_eq!(got, model);
        }
        ts.tend(t).unwrap();
        // And the on-disk structures survived the churn of tentative
        // blocks being allocated, merged and freed.
        let report = ts.file_service_mut().fsck().unwrap();
        prop_assert!(report.is_clean(), "fsck: {:?}", report.issues);
    }
}
