//! Chaos sweep for the cross-shard atomic-commit tentpole: scripted
//! two-file transactions through the cluster's 2PC coordinator,
//! interleaved with deterministic crashes at every protocol step —
//! participant before/after its prepare force, lost prepare acks,
//! coordinator before/torn-during/after its decision force, participant
//! before its decide — plus file migration striking mid-prepare and
//! spontaneous data-server crashes, with three invariants checked:
//!
//! 1. **atomicity** — after healing, every file's bytes match a model
//!    that applied a transaction iff its commit decision became durable
//!    (presumed abort everywhere else): no crash point leaves half a
//!    transaction;
//! 2. **byte-identity vs the single-shard ablation** — replaying
//!    exactly the decided-commit sequence through the same 2PC path on
//!    a 1-server cluster produces an identical content fingerprint;
//! 3. **no participant blocks forever** — the coordinator-recovery
//!    orphan sweep resolves every in-doubt prepared transaction, and a
//!    second sweep finds nothing.
//!
//! The fast subsets run in the normal test job; the full sweeps are
//! `#[ignore]`d and driven with `--ignored` (pinned `PROPTEST_BASE_SEED`
//! matrix) in the CI bench-smoke step.

use proptest::prelude::*;
use rhodos_cluster::{Cluster, ClusterConfig, CommitChaos, CommitOutcome, CrossOp};
use std::collections::HashMap;

const SERVERS: usize = 3;
const FILES: usize = 6;
const FILE_BYTES: usize = 4 * 512;

/// A fresh cluster with `FILES` seeded, synced files (gids 1..=FILES).
fn seeded(servers: usize) -> Cluster {
    let mut c = Cluster::new(servers, ClusterConfig::default());
    for k in 0..FILES {
        let gid = c.create().expect("create");
        c.open(gid).expect("open");
        c.write(gid, 0, &vec![k as u8 + 1; FILE_BYTES])
            .expect("seed");
    }
    c.sync_all();
    c
}

fn model_of() -> HashMap<u64, Vec<u8>> {
    (0..FILES)
        .map(|k| (k as u64 + 1, vec![k as u8 + 1; FILE_BYTES]))
        .collect()
}

/// The two-file op-set of scripted transaction `generation`.
fn txn_ops(a: u8, b: u8, pick: u16, generation: u64) -> Vec<CrossOp> {
    let gid_a = u64::from(a) % FILES as u64 + 1;
    let gid_b = u64::from(b) % FILES as u64 + 1;
    let offset = (u64::from(pick) % 31) * 64;
    let payload: Vec<u8> = (0..64)
        .map(|i| (generation.wrapping_mul(131) ^ i as u64) as u8)
        .collect();
    vec![
        (gid_a, offset, payload.clone()),
        (gid_b, offset + 17, payload),
    ]
}

fn apply_to_model(model: &mut HashMap<u64, Vec<u8>>, ops: &[CrossOp]) {
    for (gid, offset, data) in ops {
        let file = model.get_mut(gid).expect("modelled file");
        file[*offset as usize..*offset as usize + data.len()].copy_from_slice(data);
    }
}

/// One scripted chaos case. Returns via `prop_assert!` failures.
#[allow(clippy::too_many_lines)]
fn chaos_case(script: &[(u8, u8, u8, u16)], seed: u64) -> Result<(), TestCaseError> {
    let mut c = seeded(SERVERS);
    let mut model = model_of();
    // The decided-commit sequence, for the single-shard ablation replay.
    let mut committed: Vec<Vec<CrossOp>> = Vec::new();
    let mut generation = seed;
    // A coordinator crash leaves the protocol down until the next use
    // recovers it (replaying the decision log + orphan sweep).
    let mut coordinator_down = false;

    for &(action, a, b, pick) in script {
        generation = generation.wrapping_add(1);
        match action % 8 {
            // Clean transactions (three slots: the common case).
            0..=2 => {
                if coordinator_down {
                    c.recover_coordinator();
                    coordinator_down = false;
                }
                let ops = txn_ops(a, b, pick, generation);
                let out = c.commit_cross_shard(&ops).expect("mapped gids");
                prop_assert!(
                    !matches!(out, CommitOutcome::CoordinatorCrashed { .. }),
                    "no chaos was armed"
                );
                if out == CommitOutcome::Committed {
                    apply_to_model(&mut model, &ops);
                    committed.push(ops);
                }
            }
            // A transaction with one armed crash point.
            3 => {
                if coordinator_down {
                    c.recover_coordinator();
                    coordinator_down = false;
                }
                let ops = txn_ops(a, b, pick, generation);
                let victim = c.placement_of(ops[0].0).expect("placed").0;
                let mut chaos = CommitChaos::default();
                match pick % 8 {
                    0 => chaos.crash_participant_before_prepare = Some(victim),
                    1 => chaos.crash_participant_after_prepare = Some(victim),
                    2 => chaos.lose_prepare_ack = Some(victim),
                    3 => {
                        chaos.migrate_mid_prepare = Some((ops[0].0, usize::from(b) % SERVERS));
                    }
                    4 => chaos.crash_coordinator_before_decision = true,
                    5 => chaos.torn_decision = true,
                    6 => chaos.crash_coordinator_after_decision = true,
                    _ => chaos.crash_participant_before_decide = Some(victim),
                }
                let out = c
                    .commit_cross_shard_chaos(&ops, &chaos)
                    .expect("mapped gids");
                // The transaction happened iff its decision is durable —
                // immediately (Committed) or at recovery (crashed
                // coordinator with a forced decision record).
                let decided = match out {
                    CommitOutcome::Committed => true,
                    CommitOutcome::Aborted => false,
                    CommitOutcome::CoordinatorCrashed {
                        decision_durable, ..
                    } => {
                        coordinator_down = true;
                        decision_durable
                    }
                };
                if decided {
                    apply_to_model(&mut model, &ops);
                    committed.push(ops);
                }
            }
            // Coordinator restart: decision-log replay + orphan sweep.
            4 => {
                c.recover_coordinator();
                coordinator_down = false;
            }
            // Migration outside any transaction. May fail (in-doubt
            // participants hold the file open); must never corrupt.
            5 => {
                let gid = u64::from(a) % FILES as u64 + 1;
                let _ = c.migrate(gid, usize::from(b) % SERVERS);
            }
            // Spontaneous data-server crash: volatile state (including
            // any unflushed prepare tail and the replay cache) vanishes;
            // local recovery must rebuild durable in-doubt state.
            6 => c.crash_server(usize::from(b) % SERVERS),
            // Byte check mid-script — only meaningful when no decided
            // commit is still waiting on the orphan sweep.
            _ => {
                if !coordinator_down && c.in_doubt_gtids().is_empty() {
                    let gid = u64::from(a) % FILES as u64 + 1;
                    let want = &model[&gid];
                    let got = c.read(gid, 0, want.len()).expect("read");
                    prop_assert_eq!(&got, want, "file {} diverged mid-script", gid);
                }
            }
        }
    }

    // Heal: one coordinator recovery resolves every surviving orphan.
    c.recover_coordinator();
    prop_assert!(
        c.in_doubt_gtids().is_empty(),
        "a prepared participant is still blocked after the sweep"
    );
    // Idempotence: a second sweep finds nothing to resolve.
    prop_assert_eq!(c.recover_coordinator(), (0, 0));

    // Atomicity: every byte matches the decided-commit model.
    for (gid, want) in &model {
        let got = c.read(*gid, 0, want.len()).expect("healed read");
        prop_assert_eq!(&got, want, "file {} lost atomicity", gid);
    }

    // Byte-identity: the same decided sequence, replayed through the
    // same full-2PC path on one server, fingerprints identically.
    let mut ablation = seeded(1);
    for ops in &committed {
        let out = ablation.commit_cross_shard(ops).expect("ablation commit");
        prop_assert_eq!(out, CommitOutcome::Committed, "ablation must not abort");
    }
    prop_assert_eq!(
        c.content_fingerprint(),
        ablation.content_fingerprint(),
        "sharded 2PC diverged from the single-shard ablation"
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Fast chaos subset for the normal test job.
    #[test]
    fn cross_shard_commit_is_atomic_under_chaos(
        script in proptest::collection::vec(
            (0u8..16, 0u8..8, 0u8..8, 0u16..256), 8..24),
        seed: u64,
    ) {
        chaos_case(&script, seed)?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Full sweep: longer scripts. Run with `--ignored` under a pinned
    /// `PROPTEST_BASE_SEED` matrix in CI's bench-smoke step.
    #[test]
    #[ignore = "full cross-shard chaos sweep; CI runs it with --ignored"]
    fn cross_shard_chaos_full_sweep(
        script in proptest::collection::vec(
            (0u8..16, 0u8..8, 0u8..8, 0u16..256), 24..64),
        seed: u64,
    ) {
        chaos_case(&script, seed)?;
    }
}

/// The acceptance scenario spelled out in the issue: a participant's
/// file migrates mid-prepare while the coordinator crashes after its
/// decision on the next transaction — both transactions stay atomic,
/// recovery is byte-identical to the ablation, and nobody blocks.
#[test]
fn migration_mid_prepare_then_coordinator_crash_stays_atomic() {
    let mut c = seeded(SERVERS);
    let mut model = model_of();

    let ops1 = txn_ops(0, 3, 5, 1);
    let target = (c.placement_of(ops1[0].0).unwrap().0 + 1) % SERVERS;
    let out1 = c
        .commit_cross_shard_chaos(
            &ops1,
            &CommitChaos {
                migrate_mid_prepare: Some((ops1[0].0, target)),
                ..CommitChaos::default()
            },
        )
        .unwrap();
    assert_eq!(out1, CommitOutcome::Committed, "re-target must commit");
    assert!(c.stats().retargets >= 1);
    apply_to_model(&mut model, &ops1);

    let ops2 = txn_ops(1, 4, 9, 2);
    let out2 = c
        .commit_cross_shard_chaos(
            &ops2,
            &CommitChaos {
                crash_coordinator_after_decision: true,
                ..CommitChaos::default()
            },
        )
        .unwrap();
    assert!(matches!(
        out2,
        CommitOutcome::CoordinatorCrashed {
            decision_durable: true,
            ..
        }
    ));
    apply_to_model(&mut model, &ops2);

    let (commits, _) = c.recover_coordinator();
    assert!(commits >= 1, "durable decision must be re-delivered");
    assert!(c.in_doubt_gtids().is_empty());
    for (gid, want) in &model {
        assert_eq!(&c.read(*gid, 0, want.len()).unwrap(), want);
    }

    let mut ablation = seeded(1);
    ablation.commit_cross_shard(&ops1).unwrap();
    ablation.commit_cross_shard(&ops2).unwrap();
    assert_eq!(c.content_fingerprint(), ablation.content_fingerprint());
}
