//! Equivalence tests for the per-spindle I/O scheduler.
//!
//! The scheduler changes *how* striped windows and coalesced flushes reach
//! the disks — elevator ordering, cross-file merging, concurrent fan-out —
//! but must never change *what* ends up on them. These tests pit the three
//! [`ParallelIo`] modes against each other on identical workloads and
//! require byte-identical disk images, identical read results, and clean
//! fsck walks.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rhodos_disk_service::{DiskService, DiskServiceConfig, BLOCK_SIZE};
use rhodos_file_service::{FileService, FileServiceConfig, ParallelIo, ServiceType, StripePolicy};
use rhodos_simdisk::{DiskGeometry, LatencyModel, SimClock};

/// A striped service over small instant-latency disks. The instant model
/// keeps the simulated clock at zero in every mode, so FIT timestamps —
/// which land on disk — cannot differ between serial and batched issue.
fn build(ndisks: usize, chunk_blocks: u64, mode: ParallelIo) -> FileService {
    let clock = SimClock::new();
    let disks = (0..ndisks)
        .map(|_| {
            DiskService::with_stable(
                DiskGeometry::small(),
                LatencyModel::instant(),
                clock.clone(),
                DiskServiceConfig::default(),
            )
        })
        .collect();
    FileService::format(
        disks,
        FileServiceConfig {
            stripe: StripePolicy::RoundRobin { chunk_blocks },
            cache_blocks: 64,
            parallel_io: mode,
            ..Default::default()
        },
    )
    .expect("format")
}

#[derive(Debug, Clone)]
enum Op {
    /// Rewrite one whole block of one file with a fill byte.
    Write { file: usize, block: usize, fill: u8 },
    /// Read a whole file back (exercises the windowed fetch path).
    Read { file: usize },
    /// Flush all dirty blocks (exercises the coalesced write-back).
    Flush,
}

#[derive(Debug, Clone)]
struct Workload {
    ndisks: usize,
    chunk_blocks: u64,
    /// Size of each file in blocks.
    files: Vec<usize>,
    ops: Vec<Op>,
}

fn workloads() -> impl Strategy<Value = Workload> {
    (
        1usize..=4,
        1u64..=4,
        proptest::collection::vec(1usize..=10, 1..=4),
        proptest::collection::vec(
            prop_oneof![
                (any::<usize>(), any::<usize>(), any::<u8>())
                    .prop_map(|(file, block, fill)| Op::Write { file, block, fill }),
                any::<usize>().prop_map(|file| Op::Read { file }),
                Just(Op::Flush),
            ],
            0..48,
        ),
    )
        .prop_map(|(ndisks, chunk_blocks, files, ops)| Workload {
            ndisks,
            chunk_blocks,
            files,
            ops,
        })
}

struct Outcome {
    /// Full image of every disk, concatenated sector by sector.
    images: Vec<Vec<u8>>,
    /// Every byte returned by the workload's reads, in order.
    reads: Vec<Vec<u8>>,
    fsck_clean: bool,
}

fn run_workload(w: &Workload, mode: ParallelIo) -> Outcome {
    let mut fs = build(w.ndisks, w.chunk_blocks, mode);
    let fids: Vec<_> = w
        .files
        .iter()
        .enumerate()
        .map(|(i, &blocks)| {
            let fid = fs.create(ServiceType::Basic).unwrap();
            fs.open(fid).unwrap();
            fs.write(
                fid,
                0,
                vec![(i as u8).wrapping_mul(17); blocks * BLOCK_SIZE],
            )
            .unwrap();
            fid
        })
        .collect();
    fs.flush_all().unwrap();
    let mut reads = Vec::new();
    for op in &w.ops {
        match *op {
            Op::Write { file, block, fill } => {
                let f = file % fids.len();
                let b = (block % w.files[f]) as u64;
                fs.write(fids[f], b * BLOCK_SIZE as u64, vec![fill; BLOCK_SIZE])
                    .unwrap();
            }
            Op::Read { file } => {
                let f = file % fids.len();
                reads.push(fs.read(fids[f], 0, w.files[f] * BLOCK_SIZE).unwrap());
            }
            Op::Flush => fs.flush_all().unwrap(),
        }
    }
    fs.flush_all().unwrap();
    let fsck_clean = fs.fsck().unwrap().is_clean();
    let geometry = fs.disk_mut(0).geometry();
    let images = (0..w.ndisks)
        .map(|d| {
            let disk = fs.disk_mut(d).disk_mut();
            let mut image = Vec::new();
            for s in 0..geometry.total_sectors() {
                image.extend_from_slice(disk.peek_sector(s).unwrap());
            }
            image
        })
        .collect();
    Outcome {
        images,
        reads,
        fsck_clean,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The coalesced, elevator-ordered, (optionally threaded) flush and
    /// the windowed batch read leave every disk byte-identical to the
    /// pre-scheduler serial paths, return identical read results, and
    /// keep the file system fsck-clean.
    #[test]
    fn scheduler_modes_produce_identical_disks(w in workloads()) {
        let serial = run_workload(&w, ParallelIo::Never);
        let auto = run_workload(&w, ParallelIo::Auto);
        let threaded = run_workload(&w, ParallelIo::Always);
        prop_assert!(serial.fsck_clean);
        prop_assert!(auto.fsck_clean);
        prop_assert!(threaded.fsck_clean);
        prop_assert_eq!(&serial.reads, &auto.reads);
        prop_assert_eq!(&serial.reads, &threaded.reads);
        for d in 0..w.ndisks {
            prop_assert_eq!(
                &serial.images[d], &auto.images[d],
                "disk {} differs between serial and auto issue", d
            );
            prop_assert_eq!(
                &serial.images[d], &threaded.images[d],
                "disk {} differs between serial and threaded issue", d
            );
        }
    }
}

/// Stress the threaded fan-out: many random windows read through the
/// scoped-worker path (`ParallelIo::Always` forces threads even on one
/// CPU) must match the serial baseline byte for byte, cold and warm.
#[test]
fn concurrent_striped_reads_match_serial_reads() {
    let mut threaded = build(4, 2, ParallelIo::Always);
    let mut serial = build(4, 2, ParallelIo::Never);
    let len = 256 * BLOCK_SIZE; // 2 MiB over 4 spindles
    let data: Vec<u8> = (0..len).map(|i| (i / 7 % 251) as u8).collect();
    let mut fids = Vec::new();
    for fs in [&mut threaded, &mut serial] {
        let fid = fs.create(ServiceType::Basic).unwrap();
        fs.open(fid).unwrap();
        fs.write(fid, 0, data.clone()).unwrap();
        fs.flush_all().unwrap();
        fids.push(fid);
    }
    let mut rng = StdRng::seed_from_u64(0xD15C);
    for round in 0..200 {
        if round % 16 == 0 {
            threaded.evict_caches().unwrap();
            serial.evict_caches().unwrap();
        }
        let off = rng.gen_range(0..len as u64 - 1);
        let n = rng.gen_range(1..=(len as u64 - off)) as usize;
        let a = threaded.read(fids[0], off, n).unwrap();
        let b = serial.read(fids[1], off, n).unwrap();
        assert_eq!(a, b, "window {off}+{n} diverged on round {round}");
        assert_eq!(&a[..], &data[off as usize..off as usize + n]);
    }
}
