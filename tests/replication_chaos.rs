//! Deterministic chaos sweep for the replication tentpole: replica
//! crashes mid-write, torn sectors, message loss/duplication, and
//! crash-then-resync-then-rejoin cycles, with three invariants checked
//! throughout —
//!
//! 1. no committed write is ever lost while at least one replica lives;
//! 2. live replicas never diverge (and a resynchronised replica comes
//!    back byte-identical);
//! 3. every replica's on-disk structures stay fsck-clean.
//!
//! The fast subset runs in the normal test job; the full sweep is
//! `#[ignore]`d and driven with `--ignored` (pinned `PROPTEST_BASE_SEED`
//! matrix) in the CI bench-smoke step.

use proptest::prelude::*;
use rhodos_file_service::{FileService, FileServiceConfig, ServiceType, WritePolicy};
use rhodos_net::NetConfig;
use rhodos_replication::{ReplicatedFiles, ReplicatedRpcFiles, ReplicationConfig};
use rhodos_simdisk::{DiskGeometry, LatencyModel, SimClock};

/// A write-through replica: mutations reach the platters inside the call,
/// so injected device faults surface at the faulting operation instead of
/// at some later flush.
fn write_through_replica(clock: &SimClock) -> FileService {
    FileService::single_disk(
        DiskGeometry::medium(),
        LatencyModel::instant(),
        clock.clone(),
        FileServiceConfig {
            write_policy: WritePolicy::WriteThrough,
            ..FileServiceConfig::default()
        },
    )
    .unwrap()
}

fn direct_cluster(n: usize) -> ReplicatedFiles {
    let clock = SimClock::new();
    let replicas = (0..n).map(|_| write_through_replica(&clock)).collect();
    ReplicatedFiles::new(replicas, ReplicationConfig::default())
}

fn rpc_cluster(n: usize, drop: f64, dup: f64, seed: u64) -> ReplicatedRpcFiles {
    let clock = SimClock::new();
    let replicas = (0..n).map(|_| write_through_replica(&clock)).collect();
    ReplicatedRpcFiles::new(
        replicas,
        ReplicationConfig::default(),
        NetConfig::lossy(drop, dup, seed),
    )
}

/// Fingerprints of every platter image a replica owns: its disks plus
/// both stable-storage mirrors.
fn image_fingerprints(fs: &mut FileService) -> Vec<u64> {
    let mut prints = Vec::new();
    for d in 0..fs.disk_count() {
        prints.push(fs.disk_mut(d).disk_mut().image_fingerprint());
        if let Some(stable) = fs.disk_mut(d).stable_mut() {
            prints.push(stable.mirror_a_mut().image_fingerprint());
            prints.push(stable.mirror_b_mut().image_fingerprint());
        }
    }
    prints
}

/// The acceptance scenario from the issue: a disk fault on replica 1 of 3
/// mid-`write` must not abort the fan-out (the pre-fix bug) — the write
/// succeeds on the remaining replicas, the failover is counted, and a
/// subsequent `resync(1)` makes all three replicas' disk images
/// byte-identical again, fsck-clean on each.
#[test]
fn torn_write_fails_over_and_resync_restores_byte_identity() {
    let mut rf = direct_cluster(3);
    let fid = rf.create(ServiceType::Basic).unwrap();
    rf.open(fid).unwrap();
    rf.write(fid, 0, b"committed before the fault").unwrap();

    // Replica 1's disk crashes at its next sector write: the write-all
    // fan-out tears on that replica only, leaving it with the old data.
    rf.replica_mut(1)
        .disk_mut(0)
        .disk_mut()
        .faults_mut()
        .crash_after_sector_writes(0);
    rf.write(fid, 0, b"committed during the fault").unwrap();
    assert_eq!(rf.stats().failovers, 1, "the fault must be a failover");
    assert_eq!(rf.live_replicas(), 2);

    // The committed write survives on the live replicas.
    assert_eq!(rf.read(fid, 0, 26).unwrap(), b"committed during the fault");

    // Repair crew: resync replica 1 from a live source.
    rf.resync(1).unwrap();
    assert_eq!(rf.live_replicas(), 3);
    assert_eq!(rf.stats().resyncs, 1);
    assert!(rf.stats().resync_sectors_copied > 0);

    // All three replicas are byte-identical on every platter, and clean.
    for i in 0..3 {
        rf.replica_mut(i).flush_all().unwrap();
    }
    let reference = image_fingerprints(rf.replica_mut(0));
    for i in 1..3 {
        assert_eq!(
            image_fingerprints(rf.replica_mut(i)),
            reference,
            "replica {i} diverges after resync"
        );
    }
    for i in 0..3 {
        let report = rf.replica_mut(i).fsck().unwrap();
        assert!(report.is_clean(), "replica {i}: {:?}", report.issues);
    }

    // The rejoined replica serves reads again.
    for _ in 0..3 {
        assert_eq!(rf.read(fid, 0, 26).unwrap(), b"committed during the fault");
    }
    let spread = rf.stats().reads_per_replica.clone();
    assert!(spread[1] > 0, "rejoined replica serves reads: {spread:?}");
}

/// One chaos case: a scripted operation mix over a 3-replica RPC cluster
/// with lossy, duplicating channels. At most one replica is "the victim"
/// at any time; the repair crew (resync) brings it back before the next
/// fault is injected, so the no-lost-writes invariant is always
/// checkable against ≥ 1 live replica.
fn chaos_case(ops: &[(u8, u16, u8)], drop: f64, dup: f64, seed: u64) -> Result<(), TestCaseError> {
    let mut rf = rpc_cluster(3, drop, dup, seed);
    rf.set_max_attempts(64);
    let fid = rf.create(ServiceType::Basic).unwrap();
    rf.open(fid).unwrap();

    let mut model: Vec<u8> = Vec::new();
    let mut victim: Option<usize> = None;

    let repair = |rf: &mut ReplicatedRpcFiles, victim: &mut Option<usize>| {
        if let Some(v) = victim.take() {
            if rf.is_failed(v) {
                rf.resync(v).unwrap();
            } else {
                // The pending fault never triggered; disarm it.
                rf.replica_mut(v).disk_mut(0).disk_mut().repair();
            }
        }
    };

    for &(action, off, byte) in ops {
        match action {
            // Writes: must succeed (≥ 1 replica always lives) and enter
            // the model of committed data.
            0..=4 => {
                let data = vec![byte ^ action; 1 + (byte as usize % 48)];
                let off = off as u64 % 1500;
                rf.write(fid, off, &data).unwrap();
                let end = off as usize + data.len();
                if model.len() < end {
                    model.resize(end, 0);
                }
                model[off as usize..end].copy_from_slice(&data);
            }
            // Reads: a committed prefix must come back intact whichever
            // replica round-robin lands on.
            5 | 6 => {
                if !model.is_empty() {
                    let len = 1 + (off as usize) % model.len();
                    let got = rf.read(fid, 0, len).unwrap();
                    prop_assert_eq!(&got[..], &model[..len], "lost committed data");
                }
            }
            // Torn write: the victim's disk crashes after a few more
            // sector writes, tearing some later operation mid-write.
            7 => {
                if victim.is_none() {
                    let v = byte as usize % 3;
                    rf.replica_mut(v)
                        .disk_mut(0)
                        .disk_mut()
                        .faults_mut()
                        .crash_after_sector_writes(u64::from(byte) % 3);
                    victim = Some(v);
                }
            }
            // Machine crash: mask the replica, scar its platter, and drop
            // its volatile state — resync must undo all of it.
            8 => {
                if victim.is_none() {
                    let v = byte as usize % 3;
                    rf.mark_failed(v).unwrap();
                    let total = rf
                        .replica_mut(v)
                        .disk_mut(0)
                        .disk_mut()
                        .geometry()
                        .total_sectors();
                    let addr = (u64::from(byte) * 37) % total;
                    rf.replica_mut(v)
                        .disk_mut(0)
                        .disk_mut()
                        .corrupt_sector(addr)
                        .unwrap();
                    rf.replica_mut(v).simulate_crash();
                    victim = Some(v);
                }
            }
            // Repair crew arrives.
            _ => repair(&mut rf, &mut victim),
        }
    }
    repair(&mut rf, &mut victim);

    // Convergence: every replica is live again, serves the full committed
    // contents, and is structurally clean.
    prop_assert_eq!(rf.live_replicas(), 3);
    for i in 0..3 {
        rf.replica_mut(i).flush_all().unwrap();
        let got = rf.replica_mut(i).read(fid, 0, model.len()).unwrap();
        prop_assert_eq!(&got[..], &model[..], "replica {} diverged", i);
        let report = rf.replica_mut(i).fsck().unwrap();
        prop_assert!(report.is_clean(), "replica {}: {:?}", i, report.issues);
    }
    // Bounded server state: one synchronous client per channel.
    prop_assert!(
        rf.rpc_stats().peak_entries <= 1,
        "replay state unbounded: {}",
        rf.rpc_stats().peak_entries
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Fast chaos subset for the normal test job.
    #[test]
    fn chaos_writes_survive_faults_and_replicas_converge(
        ops in proptest::collection::vec((0u8..10, 0u16..1500, any::<u8>()), 8..24),
        drop_pm in 0u16..250,
        dup_pm in 0u16..250,
        seed: u64,
    ) {
        chaos_case(&ops, f64::from(drop_pm) / 1000.0, f64::from(dup_pm) / 1000.0, seed)?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Full sweep: longer scripts, harsher loss. Run with `--ignored`
    /// under a pinned `PROPTEST_BASE_SEED` matrix in CI's bench-smoke
    /// step.
    #[test]
    #[ignore = "full chaos sweep; CI runs it with --ignored"]
    fn chaos_full_sweep(
        ops in proptest::collection::vec((0u8..10, 0u16..1500, any::<u8>()), 24..64),
        drop_pm in 0u16..400,
        dup_pm in 0u16..400,
        seed: u64,
    ) {
        chaos_case(&ops, f64::from(drop_pm) / 1000.0, f64::from(dup_pm) / 1000.0, seed)?;
    }
}

/// The "nearly stateless" acceptance bound: across a 1 000-operation run
/// over lossy, duplicating channels, no replica's replay cache ever holds
/// more than the in-flight window (one synchronous request per client).
#[test]
fn replay_cache_stays_bounded_across_a_thousand_lossy_operations() {
    let mut rf = rpc_cluster(3, 0.2, 0.2, 42);
    rf.set_max_attempts(64);
    let fid = rf.create(ServiceType::Basic).unwrap();
    rf.open(fid).unwrap();
    for i in 0..1_000u64 {
        match i % 4 {
            0 | 1 => rf.write(fid, (i % 64) * 8, &i.to_le_bytes()).unwrap(),
            2 => {
                let _ = rf.read(fid, 0, 8).unwrap();
            }
            _ => {
                let _ = rf.get_attribute(fid).unwrap();
            }
        }
        for r in 0..3 {
            assert!(
                rf.replay_entries(r) <= 1,
                "op {i}: replica {r} holds {} replies",
                rf.replay_entries(r)
            );
        }
    }
    let s = rf.rpc_stats();
    assert!(s.retries > 0, "seed 42 must lose messages");
    assert!(s.replayed > 0, "seed 42 must duplicate messages");
    assert!(s.peak_entries <= 1, "peak {}", s.peak_entries);
    assert_eq!(rf.live_replicas(), 3, "no replica should be exhausted");
}
