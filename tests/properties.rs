//! Property-based tests on the core data structures and invariants.

use proptest::prelude::*;
use rhodos_disk_service::codec::{Decoder, Encoder};
use rhodos_disk_service::{Bitmap, Extent, FreeExtentArray};
use rhodos_file_service::{
    FileAttributes, FileId, FileIndexTable, FileService, FileServiceConfig, ServiceType,
};
use rhodos_simdisk::{DiskGeometry, LatencyModel, SimClock, SimDisk, StableStore, StableWriteMode};
use rhodos_txn::{DataItem, LockMode, LockTable};
use std::collections::HashMap;

// ---------------------------------------------------------------- codec --

proptest! {
    #[test]
    fn codec_round_trips(a: u8, b: u16, c: u32, d: u64, s in ".{0,64}", v in proptest::collection::vec(any::<u8>(), 0..256)) {
        let mut e = Encoder::new();
        e.u8(a).u16(b).u32(c).u64(d).str(&s).bytes(&v);
        let buf = e.finish();
        let mut dec = Decoder::new(&buf);
        prop_assert_eq!(dec.u8().unwrap(), a);
        prop_assert_eq!(dec.u16().unwrap(), b);
        prop_assert_eq!(dec.u32().unwrap(), c);
        prop_assert_eq!(dec.u64().unwrap(), d);
        prop_assert_eq!(dec.str().unwrap(), s);
        prop_assert_eq!(dec.bytes().unwrap(), v);
        prop_assert!(dec.is_empty());
    }

    #[test]
    fn codec_never_panics_on_garbage(garbage in proptest::collection::vec(any::<u8>(), 0..128)) {
        let mut d = Decoder::new(&garbage);
        // Any decode sequence either succeeds or reports DecodeError; it
        // must never panic.
        let _ = d.u64();
        let _ = d.bytes();
        let _ = d.str();
    }
}

// ---------------------------------------------------- free-space manager --

#[derive(Debug, Clone)]
enum AllocOp {
    Alloc(u64),
    AllocTop(u64),
    FreeNth(usize),
}

fn alloc_ops() -> impl Strategy<Value = Vec<AllocOp>> {
    proptest::collection::vec(
        prop_oneof![
            (1u64..20).prop_map(AllocOp::Alloc),
            (1u64..20).prop_map(AllocOp::AllocTop),
            (0usize..32).prop_map(AllocOp::FreeNth),
        ],
        1..80,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn allocator_never_double_allocates_and_conserves_space(ops in alloc_ops()) {
        const TOTAL: u64 = 512;
        let mut bm = Bitmap::new_all_free(TOTAL);
        let mut idx = FreeExtentArray::new();
        idx.rebuild_from(&bm);
        let mut live: Vec<Extent> = Vec::new();
        for op in ops {
            match op {
                AllocOp::Alloc(n) => {
                    if let Some(e) = idx.allocate(&mut bm, n) {
                        prop_assert_eq!(e.len, n);
                        // No overlap with any live extent.
                        for l in &live {
                            prop_assert!(!e.overlaps(l), "overlap {} with {}", e, l);
                        }
                        live.push(e);
                    }
                }
                AllocOp::AllocTop(n) => {
                    if let Some(e) = idx.allocate_top(&mut bm, n) {
                        prop_assert_eq!(e.len, n);
                        for l in &live {
                            prop_assert!(!e.overlaps(l), "overlap {} with {}", e, l);
                        }
                        live.push(e);
                    }
                }
                AllocOp::FreeNth(k) => {
                    if !live.is_empty() {
                        let e = live.remove(k % live.len());
                        idx.free(&mut bm, e);
                    }
                }
            }
            // Conservation: free + allocated == total.
            let allocated: u64 = live.iter().map(|e| e.len).sum();
            prop_assert_eq!(bm.free_fragments() + allocated, TOTAL);
        }
        // Free everything: the disk must coalesce back to one run.
        for e in live.drain(..) {
            idx.free(&mut bm, e);
        }
        prop_assert_eq!(bm.free_fragments(), TOTAL);
        prop_assert_eq!(bm.largest_free_run(), TOTAL);
    }
}

// -------------------------------------------------------------- lock table --

#[derive(Debug, Clone)]
enum LockOp {
    Acquire { txn: u64, page: u64, mode: u8 },
    Release { txn: u64 },
}

fn lock_ops() -> impl Strategy<Value = Vec<LockOp>> {
    proptest::collection::vec(
        prop_oneof![
            (1u64..6, 0u64..4, 0u8..3).prop_map(|(txn, page, mode)| LockOp::Acquire {
                txn,
                page,
                mode
            }),
            (1u64..6).prop_map(|txn| LockOp::Release { txn }),
        ],
        1..120,
    )
}

fn mode_of(m: u8) -> LockMode {
    match m {
        0 => LockMode::ReadOnly,
        1 => LockMode::Iread,
        _ => LockMode::Iwrite,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Safety invariant of Table 1: at no point do two *different*
    /// transactions hold incompatible granted locks on overlapping items —
    /// in particular at most one IW (exclusive), at most one IR, and
    /// never IW together with anything else.
    #[test]
    fn lock_table_never_grants_incompatible_locks(ops in lock_ops()) {
        let mut table = LockTable::new(1_000_000, 3);
        let mut now = 0u64;
        for op in ops {
            now += 1;
            match op {
                LockOp::Acquire { txn, page, mode } => {
                    let _ = table.set_lock(txn, txn, DataItem::Page(FileId(1), page), mode_of(mode), now);
                }
                LockOp::Release { txn } => {
                    table.release_all(txn, now);
                }
            }
            // Check the invariant over every page.
            for page in 0..4u64 {
                let item = DataItem::Page(FileId(1), page);
                let mut holders: HashMap<u64, LockMode> = HashMap::new();
                for txn in 1..6u64 {
                    for (it, m) in table.granted_items(txn) {
                        if it == item {
                            holders.insert(txn, m);
                        }
                    }
                }
                let iw = holders.values().filter(|m| **m == LockMode::Iwrite).count();
                let ir = holders.values().filter(|m| **m == LockMode::Iread).count();
                prop_assert!(iw <= 1, "two Iwrite holders on {item:?}");
                prop_assert!(ir <= 1, "two Iread holders on {item:?}");
                if iw == 1 {
                    prop_assert_eq!(holders.len(), 1, "Iwrite shared on {:?}: {:?}", item, holders);
                }
            }
        }
    }
}

// ------------------------------------------------------------ file service --

#[derive(Debug, Clone)]
enum FileOp {
    Write { offset: u16, data: Vec<u8> },
    Read { offset: u16, len: u16 },
    Flush,
    CrashRecover,
}

fn file_ops() -> impl Strategy<Value = Vec<FileOp>> {
    proptest::collection::vec(
        prop_oneof![
            4 => (0u16..20_000, proptest::collection::vec(any::<u8>(), 1..400))
                .prop_map(|(offset, data)| FileOp::Write { offset, data }),
            4 => (0u16..22_000, 0u16..600).prop_map(|(offset, len)| FileOp::Read { offset, len }),
            1 => Just(FileOp::Flush),
            1 => Just(FileOp::CrashRecover),
        ],
        1..40,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The file service behaves like a simple byte array (the model),
    /// with the caveat that a crash loses unflushed delayed writes — so
    /// the model is only compared when all writes are flushed.
    #[test]
    fn file_service_matches_byte_array_model(ops in file_ops()) {
        let mut fs = FileService::single_disk(
            DiskGeometry::medium(),
            LatencyModel::instant(),
            SimClock::new(),
            FileServiceConfig::default(),
        ).unwrap();
        let fid = fs.create(ServiceType::Basic).unwrap();
        fs.open(fid).unwrap();
        let mut model: Vec<u8> = Vec::new();
        for op in ops {
            match op {
                FileOp::Write { offset, data } => {
                    if data.is_empty() {
                        continue; // empty writes are no-ops in both worlds
                    }
                    let offset = offset as usize;
                    fs.write(fid, offset as u64, &data).unwrap();
                    if model.len() < offset + data.len() {
                        model.resize(offset + data.len(), 0);
                    }
                    model[offset..offset + data.len()].copy_from_slice(&data);
                }
                FileOp::Read { offset, len } => {
                    let offset = offset as usize;
                    let len = len as usize;
                    if offset > model.len() {
                        prop_assert!(fs.read(fid, offset as u64, len).is_err());
                    } else {
                        let got = fs.read(fid, offset as u64, len).unwrap();
                        let want = &model[offset..(offset + len).min(model.len())];
                        prop_assert_eq!(got, want.to_vec());
                    }
                }
                FileOp::Flush => {
                    fs.flush_all().unwrap();
                }
                FileOp::CrashRecover => {
                    fs.flush_all().unwrap(); // make the model comparable
                    fs.simulate_crash();
                    fs.recover().unwrap();
                    fs.open(fid).unwrap();
                    // After recovery the whole file matches the model.
                    if !model.is_empty() {
                        let got = fs.read(fid, 0, model.len()).unwrap();
                        prop_assert_eq!(&got, &model);
                    }
                }
            }
            prop_assert_eq!(fs.get_attribute(fid).unwrap().size, model.len() as u64);
        }
        // Final full comparison.
        if !model.is_empty() {
            let got = fs.read(fid, 0, model.len()).unwrap();
            prop_assert_eq!(got, model);
        }
        // And the on-disk structures are internally consistent.
        let report = fs.fsck().unwrap();
        prop_assert!(report.is_clean(), "fsck: {:?}", report.issues);
    }
}

// ------------------------------------------------------------ FIT layout --

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Contiguity counts always describe physically contiguous runs, and
    /// `runs()` covers every requested block exactly once.
    #[test]
    fn fit_contiguity_counts_are_sound(
        runs in proptest::collection::vec((0u16..3, 0u64..1000, 1u64..8), 1..20)
    ) {
        let mut fit = FileIndexTable::new(FileAttributes::new(0, ServiceType::Basic));
        for (disk, start_block, nblocks) in runs {
            // Block addresses spaced so appended runs may or may not abut.
            fit.append_run(disk, start_block * 4, nblocks);
        }
        let n = fit.block_count();
        for i in 0..n {
            let d = fit.descriptor(i).unwrap();
            // Every block the count promises is physically adjacent.
            for j in 1..d.contig as u64 {
                let next = fit.descriptor(i + j).unwrap();
                prop_assert_eq!(next.disk, d.disk);
                prop_assert_eq!(next.addr, d.addr + j * 4);
            }
        }
        // runs() partitions any range exactly.
        if n > 0 {
            let covered: u64 = fit.runs(0, n).iter().map(|r| r.blocks).sum();
            prop_assert_eq!(covered, n);
        }
    }
}

// --------------------------------------------------------- stable storage --

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// After arbitrary single-mirror corruption, recovery either restores
    /// every record or reports it lost — data is never silently wrong.
    #[test]
    fn stable_storage_never_serves_garbage(
        writes in proptest::collection::vec((0u64..16, proptest::collection::vec(any::<u8>(), 1..64)), 1..24),
        corrupt_a in proptest::collection::vec(0u64..16, 0..6),
        corrupt_b in proptest::collection::vec(0u64..16, 0..6),
    ) {
        let clock = SimClock::new();
        let mk = || SimDisk::new(DiskGeometry::new(2, 8), LatencyModel::instant(), clock.clone());
        let mut stable = StableStore::new(mk(), mk());
        let mut model: HashMap<u64, Vec<u8>> = HashMap::new();
        for (slot, data) in writes {
            stable.write(slot, &data, StableWriteMode::Sync).unwrap();
            model.insert(slot, data);
        }
        for s in &corrupt_a {
            stable.mirror_a_mut().corrupt_sector(*s).unwrap();
        }
        for s in &corrupt_b {
            stable.mirror_b_mut().corrupt_sector(*s).unwrap();
        }
        let lost = stable.recover().unwrap();
        for (slot, data) in &model {
            if lost.contains(slot) {
                // Only slots corrupted on BOTH mirrors may be lost.
                prop_assert!(corrupt_a.contains(slot) && corrupt_b.contains(slot));
            } else {
                let got = stable.read(*slot).unwrap();
                prop_assert_eq!(got.as_ref(), Some(data));
            }
        }
    }
}
