//! # rhodos — reproduction of the RHODOS distributed file facility
//!
//! Umbrella crate re-exporting every layer of the facility described in
//! Panadiwal & Goscinski, *"A High Performance and Reliable Distributed
//! File Facility"*, ICDCS 1994. See `DESIGN.md` for the system inventory
//! and `EXPERIMENTS.md` for the paper-claim experiment index.

pub use rhodos_agent as agent;
pub use rhodos_core as core;
pub use rhodos_disk_service as disk_service;
pub use rhodos_file_service as file_service;
pub use rhodos_naming as naming;
pub use rhodos_net as net;
pub use rhodos_replication as replication;
pub use rhodos_simdisk as simdisk;
pub use rhodos_txn as txn;

/// Commonly used items, re-exported for `use rhodos::prelude::*`.
pub mod prelude {
    pub use rhodos_core::Cluster;
    pub use rhodos_simdisk::{DiskGeometry, LatencyModel, SimClock};
}
