//! Offline stand-in for the `rand` crate.
//!
//! Implements exactly the surface this workspace uses: a deterministic
//! [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`], with
//! [`Rng::gen_range`] over half-open and inclusive integer ranges and
//! [`Rng::gen_bool`]. The generator is xoshiro256** seeded by SplitMix64 —
//! a different stream than upstream `rand`, but everything in this repo
//! only relies on determinism for a fixed seed, not on specific values.

use std::ops::{Range, RangeInclusive};

/// Seedable construction (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a deterministic generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling interface (subset of `rand::Rng`).
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from an integer range (`lo..hi` or `lo..=hi`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli sample: `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of [0,1]");
        // 53 uniform mantissa bits, same construction as rand's f64 sampling.
        let f = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        f < p
    }
}

/// Integer types `gen_range` can sample (subset of `rand::distributions`).
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform sample from `[lo, hi)`.
    fn sample_half_open<R: Rng>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform sample from `[lo, hi]`.
    fn sample_inclusive<R: Rng>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Ranges that can be sampled uniformly. The single blanket impl per
/// range shape is what lets integer-literal inference flow from the use
/// site into the range (mirrors upstream rand's design).
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128).wrapping_sub(lo as i128) as u128;
                let v = uniform_u128(rng, span);
                (lo as i128).wrapping_add(v as i128) as $t
            }
            fn sample_inclusive<R: Rng>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = ((hi as i128).wrapping_sub(lo as i128) as u128) + 1;
                let v = uniform_u128(rng, span);
                (lo as i128).wrapping_add(v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform value in `[0, span)` via rejection sampling (`span` ≤ 2^64;
/// `span == 0` means the full 2^64 span of an inclusive u64 range).
fn uniform_u128<R: Rng>(rng: &mut R, span: u128) -> u64 {
    if span == 0 || span == 1 << 64 {
        return rng.next_u64();
    }
    let span = span as u64;
    // Rejection zone keeps the distribution exactly uniform.
    let zone = u64::MAX - (u64::MAX % span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic generator (xoshiro256** seeded via SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the standard way to seed xoshiro.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(17);
        let mut b = StdRng::seed_from_u64(17);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: u64 = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: usize = rng.gen_range(0..=5);
            assert!(w <= 5);
            let s: i32 = rng.gen_range(-10..10);
            assert!((-10..10).contains(&s));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((1_500..3_500).contains(&hits), "p=0.25 gave {hits}/10000");
    }
}
