//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API shape this workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `Bencher::{iter, iter_batched}`,
//! `BatchSize`, and the `criterion_group!`/`criterion_main!` macros — with
//! a simple median-of-samples timing harness instead of criterion's full
//! statistical machinery. Results print as `name  time: [median ns]` and
//! are also collected on the `Criterion` value so callers (e.g. the
//! `bench_json` binary) can serialize them.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box`, criterion-style.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// How `iter_batched` amortizes setup cost (shape-compatible subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// One finished measurement.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// `group/function` id.
    pub id: String,
    /// Median nanoseconds per iteration.
    pub ns_per_iter: f64,
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    sample_size: Option<usize>,
    measurements: Vec<Measurement>,
}

impl Criterion {
    /// Parses CLI args (accepted and ignored — harness flags like
    /// `--bench` don't change behaviour here).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
        }
    }

    /// Benchmarks a single function outside a group.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let sample_size = self.sample_size.unwrap_or(DEFAULT_SAMPLES);
        let m = run_bench(id, sample_size, f);
        self.measurements.push(m);
        self
    }

    /// All measurements taken so far (used by `bench_json`).
    pub fn measurements(&self) -> &[Measurement] {
        &self.measurements
    }

    /// Prints the classic criterion closing line.
    pub fn final_summary(&self) {}
}

/// A named group sharing configuration (subset: `sample_size`).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Benchmarks `f` under `group/id`.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        let samples = self.sample_size.unwrap_or(DEFAULT_SAMPLES);
        let m = run_bench(&full, samples, f);
        self.criterion.measurements.push(m);
        self
    }

    /// Ends the group (drop would do; kept for API parity).
    pub fn finish(self) {}
}

const DEFAULT_SAMPLES: usize = 30;
/// Target wall-clock spent per sample; keeps total runtime bounded.
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(8);

/// Timing context handed to each benchmark closure.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<f64>,
    calibrating: bool,
}

impl Bencher {
    /// Times `routine` back-to-back; the measured quantity is one call.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let n = self.iters_per_sample.max(1);
        let start = Instant::now();
        for _ in 0..n {
            std_black_box(routine());
        }
        let elapsed = start.elapsed();
        self.record(elapsed, n);
    }

    /// Times `routine` on inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let n = self.iters_per_sample.max(1);
        let inputs: Vec<I> = (0..n).map(|_| setup()).collect();
        let start = Instant::now();
        for input in inputs {
            std_black_box(routine(input));
        }
        let elapsed = start.elapsed();
        self.record(elapsed, n);
    }

    fn record(&mut self, elapsed: Duration, iters: u64) {
        let ns = elapsed.as_nanos() as f64 / iters as f64;
        if self.calibrating {
            // Scale the per-sample iteration count to hit the target time.
            let per_iter = ns.max(1.0);
            let want = TARGET_SAMPLE_TIME.as_nanos() as f64 / per_iter;
            self.iters_per_sample = (want.ceil() as u64).clamp(1, 10_000_000);
        } else {
            self.samples.push(ns);
        }
    }
}

fn run_bench(id: &str, samples: usize, mut f: impl FnMut(&mut Bencher)) -> Measurement {
    let mut b = Bencher {
        iters_per_sample: 1,
        samples: Vec::new(),
        calibrating: true,
    };
    // One calibration pass (also serves as warm-up), then timed samples.
    f(&mut b);
    b.calibrating = false;
    for _ in 0..samples.max(3) {
        f(&mut b);
    }
    let mut xs = b.samples.clone();
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = if xs.is_empty() { 0.0 } else { xs[xs.len() / 2] };
    println!("{id:<50} time: [{median:>12.1} ns/iter]");
    Measurement {
        id: id.to_string(),
        ns_per_iter: median,
    }
}

/// Declares a group function calling each benchmark fn in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            let _ = &$config;
            $( $target(c); )+
        }
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $( $group(&mut c); )+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(5);
        g.bench_function("busy", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
        });
        g.finish();
        assert_eq!(c.measurements().len(), 1);
        assert!(c.measurements()[0].ns_per_iter > 0.0);
        assert_eq!(c.measurements()[0].id, "g/busy");
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut c = Criterion::default();
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![0u8; 64], |v| v.len(), BatchSize::SmallInput);
        });
        assert!(c.measurements()[0].ns_per_iter >= 0.0);
    }
}
