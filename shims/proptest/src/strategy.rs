//! Value-generation strategies (generate-only; no shrinking).

use crate::test_runner::TestRng;
use rand::Rng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// Something that can generate values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.generate(rng)))
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Type-erased strategy handle.
#[derive(Clone)]
pub struct BoxedStrategy<V>(Rc<dyn Fn(&mut TestRng) -> V>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

impl<V> std::fmt::Debug for BoxedStrategy<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

/// Weighted choice among strategies — what `prop_oneof!` builds.
pub struct Union<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total: u64,
}

impl<V> Union<V> {
    /// Builds from `(weight, strategy)` arms.
    ///
    /// # Panics
    ///
    /// Panics if there are no arms or all weights are zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs a positive total weight");
        Self { arms, total }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.rng.gen_range(0..self.total);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights summed to total")
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// `&str` as a strategy: a tiny regex subset. `.{lo,hi}` generates a
/// string of `lo..=hi` random chars (mostly printable ASCII, with
/// occasional multi-byte chars to exercise UTF-8 paths); anything without
/// regex metacharacters generates itself literally.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        if let Some((lo, hi)) = parse_dot_repeat(self) {
            let len = rng.usize_in(lo, hi + 1);
            (0..len).map(|_| random_char(rng)).collect()
        } else if !self.contains(['.', '*', '+', '?', '[', '(', '{', '\\', '|']) {
            (*self).to_string()
        } else {
            panic!("proptest shim: unsupported string pattern {self:?}");
        }
    }
}

/// Parses the `.{lo,hi}` pattern, returning `(lo, hi)`.
fn parse_dot_repeat(pattern: &str) -> Option<(usize, usize)> {
    let body = pattern.strip_prefix(".{")?.strip_suffix('}')?;
    let (lo, hi) = body.split_once(',')?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

fn random_char(rng: &mut TestRng) -> char {
    if rng.rng.gen_bool(0.85) {
        // Printable ASCII.
        rng.rng.gen_range(0x20u32..0x7F) as u8 as char
    } else {
        loop {
            if let Some(c) = char::from_u32(rng.rng.gen_range(0u32..0x11_0000)) {
                return c;
            }
        }
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident),+)),+ $(,)?) => {$(
        #[allow(non_snake_case)]
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A),
    (A, B),
    (A, B, C),
    (A, B, C, D),
    (A, B, C, D, E),
    (A, B, C, D, E, F)
);

/// Marker for `any::<T>()` (see [`crate::arbitrary`]).
pub struct Any<T>(pub(crate) PhantomData<T>);

impl<T: crate::arbitrary::Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl<T> std::fmt::Debug for Any<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Any")
    }
}
