//! Collection strategies (subset: `vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// Size specification for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    /// Inclusive upper bound.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        Self {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Generates `Vec`s whose elements come from `element`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = rng.usize_in(self.size.lo, self.size.hi + 1);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `proptest::collection::vec(element, size)`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
