//! `any::<T>()` support: default strategies per type.

use crate::strategy::Any;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.bits() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.bits() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        loop {
            if let Some(c) = char::from_u32((rng.bits() % 0x11_0000) as u32) {
                return c;
            }
        }
    }
}
