//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so this
//! vendors the slice of proptest the workspace's property tests use:
//! the `proptest!` macro (with `#![proptest_config(..)]`, `ident: ty`
//! and `pat in strategy` parameters), `prop_assert!`/`prop_assert_eq!`/
//! `prop_assert_ne!`/`prop_assume!`, `prop_oneof!` (weighted and
//! unweighted), `Just`, `any::<T>()`, integer-range / tuple / `&str`
//! pattern strategies, `proptest::collection::vec`, and
//! `Strategy::prop_map`.
//!
//! Differences from upstream, deliberately accepted:
//! * **No shrinking** — a failing case panics with the generated seed and
//!   the assertion message (which in this repo's tests always embeds the
//!   interesting values).
//! * **Deterministic** — cases derive from a fixed base seed (override
//!   with `PROPTEST_BASE_SEED`), so runs are reproducible by default.
//! * `.proptest-regressions` files are ignored.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use arbitrary::{any, Arbitrary};
pub use strategy::{Just, Strategy};
pub use test_runner::{ProptestConfig, TestCaseError, TestRng, TestRunner};

/// One-stop import, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Declares property tests. Each `fn` inside becomes a `#[test]` (the
/// attribute is written by the caller and passed through) that runs the
/// body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
        $(#[$meta:meta])*
        fn $name:ident($($params:tt)*) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let mut runner = $crate::test_runner::TestRunner::new($cfg);
            runner.run_cases(|__proptest_rng| {
                $crate::__proptest_bind!(__proptest_rng, $($params)*);
                let __proptest_case = || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                };
                __proptest_case()
            });
        }
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident $(,)?) => {};
    ($rng:ident, $($params:tt)+) => { $crate::__proptest_bind!(@munch $rng, $($params)+); };
    (@munch $rng:ident, $p:pat in $s:expr, $($rest:tt)*) => {
        let $p = $crate::Strategy::generate(&($s), $rng);
        $crate::__proptest_bind!(@munch $rng, $($rest)*);
    };
    (@munch $rng:ident, $p:pat in $s:expr) => {
        let $p = $crate::Strategy::generate(&($s), $rng);
    };
    (@munch $rng:ident, $i:ident : $t:ty, $($rest:tt)*) => {
        let $i: $t = <$t as $crate::Arbitrary>::arbitrary($rng);
        $crate::__proptest_bind!(@munch $rng, $($rest)*);
    };
    (@munch $rng:ident, $i:ident : $t:ty) => {
        let $i: $t = <$t as $crate::Arbitrary>::arbitrary($rng);
    };
    (@munch $rng:ident $(,)?) => {};
}

/// `assert!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// `assert_eq!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, $($fmt)*);
    }};
}

/// `assert_ne!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assume failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Chooses among strategies, optionally weighted (`w => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( (($weight) as u32, $crate::Strategy::boxed($strat)) ),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( (1u32, $crate::Strategy::boxed($strat)) ),+
        ])
    };
}
