//! The case runner: configuration, RNG, and failure plumbing.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// Runner configuration (subset: `cases`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Why a case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// Assertion failure — the property is violated.
    Fail(String),
    /// Precondition not met — the case is skipped, not failed.
    Reject(String),
}

impl TestCaseError {
    /// A failing case.
    pub fn fail(msg: impl Into<String>) -> Self {
        Self::Fail(msg.into())
    }

    /// A rejected (skipped) case.
    pub fn reject(msg: impl Into<String>) -> Self {
        Self::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Fail(m) => write!(f, "{m}"),
            Self::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// Source of randomness handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    pub(crate) rng: StdRng,
}

impl TestRng {
    fn from_seed(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        if hi <= lo + 1 {
            lo
        } else {
            self.rng.gen_range(lo..hi)
        }
    }

    /// Next raw 64 random bits.
    pub fn bits(&mut self) -> u64 {
        self.rng.next_u64()
    }
}

/// Drives a test body over many generated cases.
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
    base_seed: u64,
}

impl TestRunner {
    /// Creates a runner. The base seed is fixed (reproducible) unless the
    /// `PROPTEST_BASE_SEED` environment variable overrides it.
    pub fn new(config: ProptestConfig) -> Self {
        let base_seed = std::env::var("PROPTEST_BASE_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0x9E37_79B9_7F4A_7C15);
        Self { config, base_seed }
    }

    /// Runs `f` once per case, panicking on the first failure with enough
    /// context to reproduce (case index and seed).
    pub fn run_cases(&mut self, mut f: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>) {
        let mut rejected = 0u64;
        for case in 0..self.config.cases as u64 {
            let seed = self
                .base_seed
                .wrapping_add(case.wrapping_mul(0xD1B5_4A32_D192_ED03));
            let mut rng = TestRng::from_seed(seed);
            match f(&mut rng) {
                Ok(()) => {}
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    // Mirror upstream's "too many global rejects" guard.
                    assert!(
                        rejected <= 1024,
                        "proptest: too many rejected cases ({rejected})"
                    );
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest case {case} failed (base seed {:#x}, case seed {seed:#x}):\n{msg}",
                        self.base_seed
                    );
                }
            }
        }
    }
}
