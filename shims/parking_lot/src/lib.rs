//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the tiny slice of `parking_lot` it actually uses:
//! [`Mutex`] and [`MutexGuard`] with the non-poisoning `lock()` API.
//! Behaviour matches `parking_lot` semantics (a panicking holder does not
//! poison the lock for later users).

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutual-exclusion lock whose `lock()` never returns a poison error.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`]; releases the lock on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available. Unlike
    /// `std::sync::Mutex`, recovers from poisoning transparently.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard { inner: guard }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Self::new(value)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() = 7;
        assert_eq!(*m.lock(), 7);
    }
}
